"""Service-level fault tolerance: retries, resume, degradation, drain.

Every recovery path of the job engine is exercised by injecting the
exact failure it exists for (:mod:`repro.resilience.chaos`) and then
asserting the strongest available contract — usually that the recovered
result is **bit-identical** to an undisturbed run's.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api.config import ProtestConfig
from repro.api.engine import AnalysisEngine
from repro.api.results import canonical_payload
from repro.api.sweep import run_sweep
from repro.circuits.library import build
from repro.errors import QueueFull
from repro.resilience import ChaosPlan, JobJournal, RetryPolicy, inject
from repro.resilience.chaos import uninstall
from repro.service import ArtifactCache, JobManager, make_server

#: Four blocks on c432, fast, never converges before the pattern cap.
SAMPLED = ProtestConfig(
    method="sampled", max_patterns=4096, target_halfwidth=0.01,
    fault_sample=48, name="resil-test",
)

#: A sampled config that cannot finish within a test's patience.
SLOW = ProtestConfig(
    method="sampled", max_patterns=1 << 18, target_halfwidth=0.002,
    fault_sample=128, name="resil-slow",
)

#: Fast backoff so retry tests spend microseconds, not seconds.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.001, max_delay=0.01)


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    uninstall()


@pytest.fixture
def make_manager():
    managers = []

    def factory(**kwargs):
        kwargs.setdefault("retry", FAST_RETRY)
        mgr = JobManager(**kwargs)
        managers.append(mgr)
        return mgr

    yield factory
    # Chaos plans match on job ids that restart at j000000 per manager,
    # so leftover workers must be fully stopped before the next test
    # installs its plan.
    for mgr in managers:
        for job in list(mgr._jobs.values()):
            job.cancel_event.set()
        mgr.shutdown(wait=True)


def wait_for(predicate, timeout=30.0, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.005)
    raise AssertionError(f"timed out waiting for {message}")


# ---------------------------------------------------------------------------
# Worker crash -> retry -> resume
# ---------------------------------------------------------------------------

def test_worker_kill_retries_and_resumes_bit_identically(make_manager):
    manager = make_manager(workers=1)
    plan = ChaosPlan().kill("service.checkpoint", job="j000000", block=1)
    with inject(plan):
        job = manager.submit(circuit="c432", config=SAMPLED)
        job = manager.wait(job.id, timeout=120)
    assert plan.fired() == 1
    assert job.state == "done", job.error

    # The crash was retried with the taxonomy's structured payload...
    assert job.attempts == 2
    assert len(job.retries) == 1
    crash = job.retries[0]["error"]
    assert crash["type"] == "WorkerCrashed"
    assert crash["transient"] is True
    assert crash["attempts"] == 1
    assert "ChaosKill" in crash["cause"]
    # ...the retry resumed from the journal instead of restarting...
    assert job.resumed is True
    assert job.result["n_patterns"] == 4096
    # ...and the recovered result is exactly an uninterrupted run's.
    direct = AnalysisEngine(build("c432"), SAMPLED).sampled_analyze()
    assert canonical_payload(job.result) == canonical_payload(
        direct.to_dict()
    )

    # The journal entry is retired on completion; the crash shows up in
    # the counters and in /healthz (truthfully degraded, still serving).
    assert len(manager.journal) == 0
    stats = manager.stats()["resilience"]
    assert stats["worker_crashes"] == 1
    assert stats["retries"] == 1
    assert stats["resumes"] == 1
    health = manager.health()
    assert health["status"] == "degraded"
    assert health["worker_crashes"] == 1


def test_retry_budget_exhaustion_fails_with_structured_cause(make_manager):
    manager = make_manager(
        workers=1, retry=RetryPolicy(max_attempts=2, base_delay=0.001)
    )
    plan = ChaosPlan().kill("service.worker", times=None, job="j000000")
    with inject(plan):
        job = manager.submit(circuit="c17", config="fast")
        job = manager.wait(job.id, timeout=60)
    assert job.state == "failed"
    assert job.attempts == 2
    assert job.error["type"] == "WorkerCrashed"
    assert job.error["transient"] is True       # transient, budget spent
    assert job.error["attempts"] == 2
    assert "ChaosKill" in job.error["cause"]
    assert manager.stats()["resilience"]["worker_crashes"] == 2


# ---------------------------------------------------------------------------
# Failure taxonomy: every failed job carries the same payload shape
# ---------------------------------------------------------------------------

PAYLOAD_KEYS = {"type", "message", "transient", "attempts", "cause"}


def test_parse_error_is_permanent(make_manager):
    manager = make_manager(workers=1)
    job = manager.wait(
        manager.submit(bench="INPUT(a)\ngarbage((\n").id, timeout=60
    )
    assert job.state == "failed"
    assert set(job.error) == PAYLOAD_KEYS
    assert job.error["type"] == "ParseError"
    assert job.error["transient"] is False
    assert job.error["attempts"] == 1           # never retried
    assert job.retries == []


def test_timeout_is_permanent(make_manager):
    manager = make_manager(workers=1)
    job = manager.wait(
        manager.submit(circuit="c880", config=SLOW, timeout=0.05).id,
        timeout=120,
    )
    assert job.state == "failed"
    assert set(job.error) == PAYLOAD_KEYS
    assert job.error["type"] == "JobTimeout"
    assert job.error["transient"] is False
    assert job.error["attempts"] == 1
    assert job.retries == []


def test_backend_failure_is_permanent_with_cause(make_manager):
    # The python engine has nowhere to fall back to, so an injected
    # backend fault surfaces as a permanent BackendFailure.
    manager = make_manager(workers=1)
    config = ProtestConfig(
        method="sampled", max_patterns=2048, target_halfwidth=0.01,
        fault_sample=32, backend="python", name="resil-backend",
    )
    plan = ChaosPlan().fail(
        "sampling.block", block=1, backend="python", message="injected"
    )
    with inject(plan):
        job = manager.submit(circuit="c432", config=config)
        job = manager.wait(job.id, timeout=60)
    assert job.state == "failed"
    assert set(job.error) == PAYLOAD_KEYS
    assert job.error["type"] == "BackendFailure"
    assert job.error["transient"] is False
    assert job.error["cause"] == "InjectedFault: injected"


def test_transient_injected_fault_is_retried_to_success(make_manager):
    manager = make_manager(workers=1)
    plan = ChaosPlan().fail(
        "service.worker", job="j000000", transient=True, message="flaky"
    )
    with inject(plan):
        job = manager.submit(circuit="c17", config="fast")
        job = manager.wait(job.id, timeout=60)
    assert job.state == "done"
    assert job.attempts == 2
    assert job.retries[0]["error"]["type"] == "InjectedFault"
    assert job.retries[0]["error"]["transient"] is True


# ---------------------------------------------------------------------------
# Admission control: bounded queue -> QueueFull -> HTTP 429
# ---------------------------------------------------------------------------

def test_bounded_queue_rejects_with_retry_after(make_manager):
    manager = make_manager(workers=1, max_queue=1)
    running = manager.submit(circuit="c880", config=SLOW)
    wait_for(lambda: manager.get(running.id).state == "running",
             message="first job running")
    manager.submit(circuit="c432", config=SLOW)     # fills the queue
    with pytest.raises(QueueFull) as exc:
        manager.submit(circuit="c17", config=SLOW)
    assert exc.value.retry_after >= 1.0
    assert exc.value.transient is True
    assert manager.stats()["resilience"]["rejected"] == 1


def test_http_429_with_retry_after_header(make_manager):
    manager = make_manager(workers=1, max_queue=1)
    server = make_server(manager, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"

    def post(payload):
        req = urllib.request.Request(
            base + "/jobs", data=json.dumps(payload).encode("utf-8"),
            method="POST", headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, dict(resp.headers), json.loads(
                    resp.read().decode("utf-8")
                )
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), json.loads(
                error.read().decode("utf-8")
            )

    try:
        slow = {"method": "sampled", "max_patterns": 1 << 18,
                "target_halfwidth": 0.002, "fault_sample": 128}
        code, _, first = post({"circuit": "c880", "config": slow})
        assert code == 201
        wait_for(lambda: manager.get(first["id"]).state == "running",
                 message="first job running")
        code, _, _ = post({"circuit": "c432", "config": slow})
        assert code == 201
        code, headers, body = post({"circuit": "c17", "config": slow})
        assert code == 429
        assert body["error"]["type"] == "QueueFull"
        assert body["retry_after"] >= 1.0
        assert int(headers["Retry-After"]) >= 1
    finally:
        server.shutdown()
        server.server_close()


# ---------------------------------------------------------------------------
# Health states
# ---------------------------------------------------------------------------

def test_health_ok_then_draining(make_manager):
    manager = make_manager(workers=1)
    health = manager.health()
    assert health["status"] == "ok"
    assert health["worker_crashes"] == 0
    summary = manager.drain(grace=0.5)
    assert manager.health()["status"] == "draining"
    assert summary == {"revoked": 0, "aborted": [], "journal_entries": 0}
    with pytest.raises(Exception, match="shutting down"):
        manager.submit(circuit="c17", config="fast")


# ---------------------------------------------------------------------------
# Drain + file-backed journal: resume across service restarts
# ---------------------------------------------------------------------------

def test_drain_then_restart_resumes_from_journal(tmp_path, make_manager):
    path = tmp_path / "journal.json"
    config = ProtestConfig(
        method="sampled", max_patterns=16 * 1024, target_halfwidth=0.002,
        fault_sample=48, name="resil-journal",
    )
    # First service lifetime: slow the checkpoints down so the drain
    # reliably lands mid-run, then stop with zero grace.
    first = make_manager(workers=1, journal=JobJournal(path))
    plan = ChaosPlan().sleep(
        "service.checkpoint", seconds=0.05, times=None, job="j000000"
    )
    with inject(plan):
        job = first.submit(circuit="c432", config=config)
        wait_for(lambda: len(first.status(job.id)["snapshots"]) >= 2,
                 message="two snapshots before drain")
        summary = first.drain(grace=0.0)
    assert summary["aborted"] == [job.id]
    assert summary["journal_entries"] == 1
    assert first.get(job.id).state == "cancelled"

    # Second lifetime: a fresh manager on the same journal file picks
    # the checkpoint up and finishes the job seed-exactly.
    second = make_manager(workers=1, journal=JobJournal(path))
    resumed = second.wait(
        second.submit(circuit="c432", config=config).id, timeout=120
    )
    assert resumed.state == "done", resumed.error
    assert resumed.resumed is True
    assert second.stats()["resilience"]["resumes"] == 1
    direct = AnalysisEngine(build("c432"), config).sampled_analyze()
    assert canonical_payload(resumed.result) == canonical_payload(
        direct.to_dict()
    )
    assert len(second.journal) == 0         # retired on completion
    assert json.loads(path.read_text(encoding="utf-8")) == {}


# ---------------------------------------------------------------------------
# Artifact-cache concurrency (satellite: lock guard stress)
# ---------------------------------------------------------------------------

def test_cache_concurrent_get_put_evict_stress():
    cache = ArtifactCache(max_circuits=4, max_reports=8)
    keys = [("hash%d" % i, "cfg", "sampled", (0.5,)) for i in range(16)]
    gets = []
    errors = []
    # Widen the race windows: every get/put yields at the chaos seam
    # (deliberately outside the cache lock).
    plan = ChaosPlan().sleep("cache.get", seconds=0.0002, times=None)
    plan.sleep("cache.put", seconds=0.0002, times=None)

    def hammer(worker):
        rng = random.Random(worker)
        hits = 0
        for i in range(150):
            key = keys[rng.randrange(len(keys))]
            op = rng.random()
            try:
                if op < 0.4:
                    cache.put_report(key, {"payload": key[0], "i": i})
                elif op < 0.8:
                    payload = cache.get_report(key)
                    if payload is not None:
                        # Never a torn entry: the payload is complete.
                        assert payload["payload"] == key[0]
                        hits += 1
                else:
                    cache.evict_report(key)
            except Exception as error:  # noqa: BLE001 - collected below
                errors.append(error)
        gets.append(hits)

    with inject(plan):
        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    assert errors == []
    info = cache.cache_info()
    assert info["reports"] <= 8
    assert len(cache.report_keys()) == info["reports"]
    assert info["report_hits"] == sum(gets)


# ---------------------------------------------------------------------------
# Sweep retries
# ---------------------------------------------------------------------------

def test_sweep_cell_retry_recovers_from_kill():
    plan = ChaosPlan().kill("sweep.cell", circuit="c17", attempt=0)
    with inject(plan):
        result = run_sweep(["c17"], ["fast"], executor="inline", retries=1)
    assert plan.fired() == 1
    (run,) = result.runs
    assert run.error is None
    assert run.report is not None


def test_sweep_cell_retry_exhaustion_is_recorded():
    plan = ChaosPlan().kill("sweep.cell", times=None, circuit="c17")
    with inject(plan):
        result = run_sweep(["c17"], ["fast"], executor="inline", retries=1)
    assert plan.fired() == 2                    # both attempts consumed
    (run,) = result.runs
    assert run.report is None
    assert "worker crashed after 2 attempts" in run.error
    assert "ChaosKill" in run.error
