"""Tests for repro.api.sweep: batch analysis over circuits × configs."""

from __future__ import annotations

import pytest

from repro.api import ProtestConfig, SweepResult, run_sweep
from repro.backends import get_backend
from repro.circuits import c17

needs_numpy = pytest.mark.skipif(
    not get_backend("numpy").is_available(), reason="numpy not installed"
)


def test_sweep_three_circuits_two_configs_one_call():
    """The acceptance-criterion workload: 3 circuits x 2 configs."""
    result = run_sweep(
        ["c17", "maj5", "comp8"],
        ["paper", "fast"],
        workers=2,
        confidences=(0.95,),
        fractions=(0.98,),
    )
    assert len(result.runs) == 6
    assert all(run.ok for run in result.runs)
    # Deterministic circuit-major ordering.
    assert [run.circuit for run in result.runs] == [
        "c17", "c17", "maj5", "maj5", "comp8", "comp8",
    ]
    assert [run.config.name for run in result.runs] == [
        "paper", "fast"] * 3
    # Every run carries a serializable report with provenance.
    for run in result.runs:
        assert run.report.test_lengths[(0.98, 0.95)] > 0
        assert run.report.provenance.config_name == run.config.name
        assert run.elapsed > 0


def test_sweep_round_trip_and_table():
    result = run_sweep(["c17"], ["paper", "fast"], workers=1,
                       confidences=(0.95,), fractions=(1.0,))
    again = SweepResult.from_json(result.to_json())
    assert len(again) == 2
    assert again.runs[0].report.test_lengths == \
        result.runs[0].report.test_lengths
    table = result.to_table()
    assert "c17" in table and "paper" in table and "fast" in table


def test_sweep_accepts_circuit_objects_and_config_objects():
    config = ProtestConfig(maxvers=1, name="cheap")
    result = run_sweep([c17()], [config], workers=1,
                       confidences=(0.95,), fractions=(1.0,))
    run = result.runs[0]
    assert run.circuit == "c17"
    assert run.config.name == "cheap"
    assert run.ok


def test_sweep_captures_per_run_failures():
    result = run_sweep(["c17", "nonesuch-circuit"], ["paper"], workers=1,
                       confidences=(0.95,), fractions=(1.0,))
    ok, bad = result.runs
    assert ok.ok and not bad.ok
    assert "nonesuch" in bad.error
    assert bad.report is None
    assert len(result.ok) == 1 and len(result.failed) == 1
    # Failed runs serialize too (nightly sweeps archive everything).
    again = SweepResult.from_json(result.to_json())
    assert again.runs[1].error == bad.error


def test_sweep_workers_zero_runs_inline():
    result = run_sweep(["c17", "maj5"], ["paper"], workers=0,
                       confidences=(0.95,), fractions=(1.0,))
    assert len(result.runs) == 2
    assert all(run.ok for run in result.runs)


def test_sweep_parallel_matches_serial():
    serial = run_sweep(["c17", "maj5"], ["paper"], workers=1,
                       confidences=(0.95,), fractions=(1.0,))
    parallel = run_sweep(["c17", "maj5"], ["paper"], workers=4,
                         confidences=(0.95,), fractions=(1.0,))
    for a, b in zip(serial.runs, parallel.runs):
        assert a.circuit == b.circuit
        assert a.report.test_lengths == b.report.test_lengths


def test_sweep_executor_knob_modes_agree():
    inline = run_sweep(["c17", "maj5"], ["paper"], executor="inline",
                       confidences=(0.95,), fractions=(1.0,))
    threads = run_sweep(["c17", "maj5"], ["paper"], executor="thread",
                        workers=2, confidences=(0.95,), fractions=(1.0,))
    procs = run_sweep(["c17", "maj5"], ["paper"], executor="process",
                      workers=2, confidences=(0.95,), fractions=(1.0,))
    for variant in (threads, procs):
        for a, b in zip(inline.runs, variant.runs):
            assert a.circuit == b.circuit
            assert a.report.test_lengths == b.report.test_lengths


def test_sweep_rejects_unknown_executor():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        run_sweep(["c17"], ["paper"], executor="fiber")


# -- backend selection across executors ----------------------------------------


def test_sweep_records_resolved_backend_in_provenance():
    result = run_sweep(
        ["c17"], [ProtestConfig(backend="python", name="py")],
        executor="inline", confidences=(0.95,), fractions=(1.0,),
    )
    assert result.runs[0].report.provenance.backend == "python"


@needs_numpy
def test_sweep_process_executor_serializes_numpy_backend():
    """The backend knob survives pickling into process workers; each
    cell's provenance records the backend that actually ran there
    (sampled cells grade on the configured engine; analytic stages
    always run on the python kernel), and the numbers match the inline
    python-backend run exactly — backends are seed-identical."""
    config = ProtestConfig(
        backend="numpy", method="sampled", max_patterns=2048, name="np-sweep"
    )
    procs = run_sweep(
        ["c17", "comp8"], [config], executor="process", workers=2,
        confidences=(0.95,), fractions=(1.0,),
    )
    inline = run_sweep(
        ["c17", "comp8"],
        [config.replace(backend="python", name="py")],
        executor="inline", confidences=(0.95,), fractions=(1.0,),
    )
    assert all(run.ok for run in procs.runs), [run.error for run in procs.runs]
    for run in procs.runs:
        assert run.config.backend == "numpy"
        assert run.report.provenance.backend == "numpy"
    for a, b in zip(procs.runs, inline.runs):
        assert b.report.provenance.backend == "python"
        assert a.report.test_lengths == b.report.test_lengths
        assert a.report.n_faults == b.report.n_faults


def test_sweep_unknown_backend_is_captured_per_cell():
    result = run_sweep(
        ["c17"], [ProtestConfig(backend="definitely-not-registered")],
        executor="inline", confidences=(0.95,), fractions=(1.0,),
    )
    run = result.runs[0]
    assert not run.ok
    assert "backend" in run.error
