"""Unit tests for structural analysis (levels, cones, joining points)."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder, Topology
from repro.circuits import c17


def build_diamond():
    """x fans out into two paths that reconverge at k."""
    b = CircuitBuilder("diamond")
    x, y, z = b.inputs("x", "y", "z")
    a = b.and_("a", x, y)
    c = b.and_("c", x, z)
    k = b.or_("k", a, c)
    b.output(k)
    return b.build()


def test_levels():
    circuit = build_diamond()
    topo = Topology(circuit)
    assert topo.level["x"] == 0
    assert topo.level["a"] == 1
    assert topo.level["k"] == 2
    assert topo.depth == 2


def test_branches_and_fanout_degree():
    circuit = build_diamond()
    topo = Topology(circuit)
    assert set(topo.branches["x"]) == {("a", 0), ("c", 0)}
    assert topo.fanout_degree("x") == 2
    assert topo.fanout_degree("k") == 1  # primary output only
    assert topo.is_stem("x")
    assert not topo.is_stem("y")


def test_tfo():
    circuit = build_diamond()
    topo = Topology(circuit)
    assert set(topo.tfo("x")) == {"a", "c", "k"}
    assert set(topo.tfo("y")) == {"a", "k"}
    assert topo.tfo("k") == ()


def test_tfi():
    circuit = build_diamond()
    topo = Topology(circuit)
    assert topo.tfi("k") == frozenset({"k", "a", "c", "x", "y", "z"})
    assert topo.tfi("a") == frozenset({"a", "x", "y"})


def test_bounded_tfi_depth():
    circuit = build_diamond()
    topo = Topology(circuit)
    assert topo.bounded_tfi("k", 0) == {"k"}
    assert topo.bounded_tfi("k", 1) == {"k", "a", "c"}
    assert topo.bounded_tfi("k", 2) == {"k", "a", "c", "x", "y", "z"}
    assert topo.bounded_tfi("k", None) == set(topo.tfi("k"))


def test_joining_points_diamond():
    circuit = build_diamond()
    topo = Topology(circuit)
    gate = circuit.gates["k"]
    assert topo.joining_points(gate.inputs) == ["x"]
    # Depth counts edges back from the gate *inputs*: 1 step reaches x,
    # 0 steps sees only the inputs themselves.
    assert topo.joining_points(gate.inputs, max_depth=1) == ["x"]
    assert topo.joining_points(gate.inputs, max_depth=0) == []


def test_joining_points_repeated_signal():
    b = CircuitBuilder("dup")
    a = b.input("a")
    k = b.and_("k", a, a)
    b.output(k)
    circuit = b.build()
    topo = Topology(circuit)
    assert topo.joining_points(circuit.gates["k"].inputs) == ["a"]


def test_no_joining_points_in_tree(tree_circuit):
    topo = Topology(tree_circuit)
    for gate in tree_circuit.gates.values():
        assert topo.joining_points(gate.inputs) == []


def test_reconvergent_gates_c17():
    circuit = c17()
    topo = Topology(circuit)
    reconv = set(topo.reconvergent_gates())
    # G16 and G19 share stem G11; G22/G23 reconverge through G11 and G16.
    assert "G22" in reconv
    assert "G23" in reconv
    assert "G10" not in reconv


def test_forward_cone_within():
    circuit = build_diamond()
    topo = Topology(circuit)
    allowed = {"x", "a", "c", "k"}
    cone = topo.forward_cone_within(["x"], allowed)
    assert set(cone) == {"a", "c", "k"}
    assert cone[-1] == "k"  # topological: the reconvergence comes last
    # Restricting the region prunes the cone.
    cone = topo.forward_cone_within(["x"], {"x", "a"})
    assert cone == ["a"]
    assert topo.forward_cone_within(["k"], allowed) == []


def test_bounded_tfi_is_cached_per_node_and_depth():
    circuit = c17()
    topo = Topology(circuit)
    first = topo.bounded_tfi("G22", 2)
    assert topo.bounded_tfi("G22", 2) is first  # memoized
    assert isinstance(first, frozenset)
    assert topo.bounded_tfi("G22", 1) is not first  # distinct depth key
    # Unbounded queries are cached under the None key too.
    assert topo.bounded_tfi("G22", None) is topo.bounded_tfi("G22", None)
    assert topo.bounded_tfi("G22", None) == topo.tfi("G22")


def test_bounded_tfi_cache_flag_preserves_legacy_behaviour():
    circuit = c17()
    cached = Topology(circuit)
    uncached = Topology(circuit, cache=False)
    for depth in (1, 2, None):
        assert set(cached.bounded_tfi("G22", depth)) == \
            set(uncached.bounded_tfi("G22", depth))
    # The uncached variant returns a fresh mutable set every call.
    first = uncached.bounded_tfi("G22", 2)
    assert first is not uncached.bounded_tfi("G22", 2)
    first.add("sentinel")  # mutating a copy must not poison later calls
    assert "sentinel" not in uncached.bounded_tfi("G22", 2)
