"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.backends import get_backend
from repro.cli import main

needs_numpy = pytest.mark.skipif(
    not get_backend("numpy").is_available(), reason="numpy not installed"
)


def test_analyze_builtin(capsys):
    assert main(["analyze", "c17"]) == 0
    out = capsys.readouterr().out
    assert "PROTEST analysis of c17" in out
    assert "transistors" in out


def test_testlen_builtin(capsys):
    assert main(["testlen", "c17", "-e", "0.95", "-d", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "required test lengths" in out


def test_testlen_scalar_probs(capsys):
    assert main(["testlen", "c17", "--probs", "0.75"]) == 0


def test_optimize_writes_json(tmp_path, capsys):
    out_file = str(tmp_path / "probs.json")
    assert main([
        "optimize", "c17", "--rounds", "2", "--n-ref", "128",
        "-o", out_file,
    ]) == 0
    data = json.loads(open(out_file).read())
    assert set(data) == {"G1", "G2", "G3", "G6", "G7"}


def test_optimize_then_testlen_with_probs_file(tmp_path, capsys):
    out_file = str(tmp_path / "probs.json")
    main(["optimize", "c17", "--rounds", "1", "-o", out_file])
    capsys.readouterr()
    assert main(["testlen", "c17", "--probs", out_file]) == 0


def test_generate_patterns(capsys):
    assert main(["generate", "c17", "-n", "5", "--seed", "1"]) == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 5
    assert all(set(line) <= {"0", "1"} and len(line) == 5 for line in lines)


def test_fsim_coverage_table(capsys):
    assert main(["fsim", "c17", "-n", "200", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "coverage %" in out
    assert "200" in out


def test_circuits_listing(capsys):
    assert main(["circuits"]) == 0
    out = capsys.readouterr().out
    for name in ("alu", "mult", "div", "comp"):
        assert name in out


def test_convert_roundtrip(tmp_path, capsys):
    bench = str(tmp_path / "c17.bench")
    sdl = str(tmp_path / "c17.sdl")
    assert main(["convert", "c17", bench]) == 0
    assert main(["convert", bench, sdl]) == 0
    assert main(["analyze", sdl]) == 0


def test_unknown_circuit_reports_error(capsys):
    assert main(["analyze", "nonesuch"]) == 1
    assert "error:" in capsys.readouterr().err


def test_convert_bad_extension(tmp_path, capsys):
    assert main(["convert", "c17", str(tmp_path / "out.v")]) == 1


def test_model_flags(capsys):
    assert main([
        "analyze", "c17", "--stem-model", "multi_output",
        "--pin-model", "independent", "--maxvers", "1", "--maxlist", "4",
    ]) == 0


def test_preset_flag(capsys):
    assert main(["analyze", "c17", "--preset", "fast"]) == 0
    assert "PROTEST analysis of c17" in capsys.readouterr().out


def test_analyze_json(capsys):
    assert main(["analyze", "c17", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "testability_report"
    assert payload["circuit"] == "c17"
    assert payload["transistors"] > 0
    assert payload["provenance"]["config_name"] == "paper"
    assert all(rec["n_patterns"] > 0 for rec in payload["test_lengths"])


def test_testlen_json(capsys):
    assert main(["testlen", "c17", "-e", "0.95", "-d", "1.0", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["circuit"] == "c17"
    assert len(payload["results"]) == 1
    assert payload["results"][0]["kind"] == "test_length"
    assert payload["results"][0]["n_patterns"] > 0


def test_optimize_json(capsys):
    assert main([
        "optimize", "c17", "--rounds", "1", "--n-ref", "128", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["circuit"] == "c17"
    assert set(payload["probabilities"]) == {"G1", "G2", "G3", "G6", "G7"}
    assert payload["score"] >= payload["initial_score"]


def test_fsim_json(capsys):
    assert main(["fsim", "c17", "-n", "100", "--seed", "1", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "fault_simulation"
    assert payload["n_patterns"] == 100
    assert payload["coverage"] > 0.8
    assert payload["curve"]["100"] == payload["coverage"]


def test_sweep_table(capsys):
    assert main([
        "sweep", "c17", "maj5", "--preset", "fast", "-e", "0.95",
        "-d", "1.0", "--workers", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "sweep results" in out
    assert "c17" in out and "maj5" in out


def test_sweep_json(capsys):
    assert main([
        "sweep", "c17", "--preset", "fast", "--preset", "paper",
        "-e", "0.95", "-d", "1.0", "--json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "sweep"
    assert len(payload["runs"]) == 2
    names = {run["config"]["name"] for run in payload["runs"]}
    assert names == {"fast", "paper"}
    assert all(run["error"] is None for run in payload["runs"])


def test_backend_flag_analyze_json(capsys):
    assert main(["analyze", "c17", "--backend", "python", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["provenance"]["backend"] == "python"


def test_backend_flag_rejects_unknown(capsys):
    with pytest.raises(SystemExit):
        main(["analyze", "c17", "--backend", "gpu"])


@needs_numpy
def test_backend_flag_numpy_end_to_end(capsys):
    assert main(["fsim", "c17", "-n", "64", "--backend", "numpy",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["provenance"]["backend"] == "numpy"
    # Sampled sweep cells grade on the requested engine and say so;
    # analytic cells would truthfully record "python".
    assert main(["sweep", "c17", "--preset", "fast", "--method", "sampled",
                 "-e", "0.95", "-d", "1.0", "--backend", "numpy",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["config"]["backend"] == "numpy"
    assert payload["runs"][0]["report"]["provenance"]["backend"] == "numpy"


def test_analyze_bench_netlist_path(tmp_path, capsys):
    from repro.circuits.library import build
    from repro.circuit.writer import save_bench

    path = str(tmp_path / "my_c17.bench")
    save_bench(build("c17"), path)
    assert main(["analyze", path, "--preset", "fast"]) == 0
    assert "PROTEST analysis of my_c17" in capsys.readouterr().out


def test_analyze_verilog_netlist_path(tmp_path, capsys):
    path = tmp_path / "tiny.v"
    path.write_text(
        "module tiny (a, b, y);\ninput a, b;\noutput y;\n"
        "nand (y, a, b);\nendmodule\n"
    )
    assert main(["analyze", str(path), "--preset", "fast", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["circuit"] == "tiny"


def test_analyze_netlist_parse_error_reported(tmp_path, capsys):
    path = tmp_path / "broken.bench"
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")
    assert main(["analyze", str(path)]) == 1
    err = capsys.readouterr().err
    assert "error:" in err and "line 3" in err
