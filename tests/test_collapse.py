"""Unit tests for fault-equivalence collapsing.

The key check is semantic: every fault in a collapsed class must have an
identical detection word over the exhaustive pattern set.
"""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17, sn7485
from repro.faults import FaultSimulator, collapse, fault_universe
from repro.logicsim import PatternSet, simulate


def test_collapse_reduces_c17():
    result = collapse(c17())
    assert result.n_total == len(fault_universe(c17()))
    # The classic figure for c17 with pin faults: far fewer classes.
    assert result.n_collapsed < result.n_total
    assert result.n_collapsed >= 11  # at least one class per node pair


@pytest.mark.parametrize("factory", [c17, sn7485])
def test_collapsed_classes_are_behaviourally_equivalent(factory):
    circuit = factory()
    result = collapse(circuit)
    ps = PatternSet.exhaustive(circuit.inputs)
    good = simulate(circuit, ps)
    simulator = FaultSimulator(circuit, fault_universe(circuit))
    for representative in result.representatives:
        words = {
            simulator.detection_word(member, good, ps.mask)
            for member in result.class_of(representative)
        }
        assert len(words) == 1, (
            f"class of {representative} not equivalent: {words}"
        )


def test_not_gate_collapsing():
    b = CircuitBuilder("inv")
    a = b.input("a")
    b.output(b.not_("y", a))
    circuit = b.build()
    result = collapse(circuit)
    # a s-a-0 == y.in0 s-a-0 == y s-a-1; dually for the other polarity:
    # 6 faults in 2 classes.
    assert result.n_total == 6
    assert result.n_collapsed == 2


def test_and_gate_collapsing():
    b = CircuitBuilder("and2")
    x, y = b.inputs("x", "y")
    b.output(b.and_("z", x, y))
    circuit = b.build()
    result = collapse(circuit)
    # 10 faults: inputs s-a-0 (2, plus their stems) and z s-a-0 merge into
    # one class; the s-a-1 faults stay separate.
    universe = fault_universe(circuit)
    assert result.n_total == len(universe)
    sizes = sorted(len(result.class_of(r)) for r in result.representatives)
    assert sizes[-1] == 5  # {x, x.pin, y, y.pin, z} all s-a-0
    assert result.n_collapsed == 4


def test_representatives_prefer_stems():
    result = collapse(c17())
    for representative in result.representatives:
        members = result.class_of(representative)
        if any(m.is_stem for m in members):
            assert representative.is_stem


def test_collapse_custom_fault_list():
    circuit = c17()
    subset = fault_universe(circuit)[:10]
    result = collapse(circuit, subset)
    assert result.n_total == 10
