"""Unit tests for gate semantics (packed eval, probabilities, differences)."""

from __future__ import annotations

import itertools

import pytest

from repro.circuit.types import (
    GateType,
    arity_range,
    boolean_difference_probability,
    cofactor_probability,
    controlling_value,
    eval_bool,
    eval_packed,
    gate_probability,
    inversion_parity,
    lut_table,
)
from repro.errors import CircuitError

TWO_INPUT = [
    (GateType.AND, lambda a, b: a & b),
    (GateType.OR, lambda a, b: a | b),
    (GateType.NAND, lambda a, b: 1 - (a & b)),
    (GateType.NOR, lambda a, b: 1 - (a | b)),
    (GateType.XOR, lambda a, b: a ^ b),
    (GateType.XNOR, lambda a, b: 1 - (a ^ b)),
]


@pytest.mark.parametrize("gtype,func", TWO_INPUT)
def test_eval_bool_two_input_truth_tables(gtype, func):
    for a, b in itertools.product((0, 1), repeat=2):
        assert eval_bool(gtype, [a, b]) == func(a, b)


@pytest.mark.parametrize("gtype,func", TWO_INPUT)
def test_eval_packed_matches_bitwise(gtype, func):
    mask = (1 << 4) - 1
    a_word = 0b0101  # pattern j: a = j & 1
    b_word = 0b0011  # pattern j: b = (j >> 1) & 1
    word = eval_packed(gtype, [a_word, b_word], mask)
    for j in range(4):
        expected = func((a_word >> j) & 1, (b_word >> j) & 1)
        assert (word >> j) & 1 == expected


def test_eval_not_buf_const():
    mask = 0b111
    assert eval_packed(GateType.NOT, [0b010], mask) == 0b101
    assert eval_packed(GateType.BUF, [0b010], mask) == 0b010
    assert eval_packed(GateType.CONST0, [], mask) == 0
    assert eval_packed(GateType.CONST1, [], mask) == mask


def test_eval_wide_gates():
    mask = (1 << 8) - 1
    ops = [0b11110000, 0b11001100, 0b10101010]
    anded = eval_packed(GateType.AND, ops, mask)
    assert anded == 0b11110000 & 0b11001100 & 0b10101010
    xored = eval_packed(GateType.XOR, ops, mask)
    assert xored == 0b11110000 ^ 0b11001100 ^ 0b10101010


def test_lut_eval_matches_table():
    # 2-input LUT implementing a -> b (implication): table rows m0..m3.
    table = 0b1101  # 00->1, 01->0, 10->1, 11->1  (input0 = a, input1 = b)
    for a, b in itertools.product((0, 1), repeat=2):
        m = a | (b << 1)
        assert eval_bool(GateType.LUT, [a, b], table) == (table >> m) & 1


def test_lut_table_validation():
    with pytest.raises(CircuitError):
        lut_table(GateType.LUT, 2, None)
    with pytest.raises(CircuitError):
        lut_table(GateType.LUT, 2, 1 << 4)  # out of range for 4 rows
    assert lut_table(GateType.LUT, 2, 0b1010) == 0b1010
    with pytest.raises(CircuitError):
        lut_table(GateType.AND, 2, 3)


def test_arity_ranges():
    assert arity_range(GateType.AND) == (2, None)
    assert arity_range(GateType.NOT) == (1, 1)
    assert arity_range(GateType.CONST0) == (0, 0)
    lo, hi = arity_range(GateType.LUT)
    assert lo == 1 and hi == 16


@pytest.mark.parametrize("gtype,func", TWO_INPUT)
def test_gate_probability_matches_enumeration(gtype, func):
    pa, pb = 0.3, 0.8
    expected = sum(
        (pa if a else 1 - pa) * (pb if b else 1 - pb)
        for a, b in itertools.product((0, 1), repeat=2)
        if func(a, b)
    )
    assert gate_probability(gtype, [pa, pb]) == pytest.approx(expected)


def test_gate_probability_wide_xor():
    # XOR of n independent p=0.5 signals is exactly 0.5.
    assert gate_probability(GateType.XOR, [0.5] * 5) == pytest.approx(0.5)
    # XOR of biased inputs: closed form (1 - prod(1-2p))/2.
    probs = [0.1, 0.3, 0.7]
    prod = 1.0
    for p in probs:
        prod *= 1.0 - 2.0 * p
    assert gate_probability(GateType.XOR, probs) == pytest.approx(
        (1.0 - prod) / 2.0
    )


def test_lut_probability_matches_enumeration():
    table = 0b0110  # XOR as a LUT
    probs = [0.25, 0.6]
    assert gate_probability(GateType.LUT, probs, table) == pytest.approx(
        gate_probability(GateType.XOR, probs)
    )


def test_cofactor_probability():
    # AND with a forced to 1 has probability p_b.
    assert cofactor_probability(GateType.AND, [0.3, 0.8], 0, 1) == pytest.approx(0.8)
    assert cofactor_probability(GateType.AND, [0.3, 0.8], 0, 0) == 0.0


def test_boolean_difference_and_gate_both_models_agree():
    # For unate gates the independent model equals the exact difference.
    probs = [0.3, 0.8, 0.6]
    for gtype in (GateType.AND, GateType.OR, GateType.NAND, GateType.NOR):
        for pin in range(3):
            approx = boolean_difference_probability(gtype, probs, pin)
            exact = boolean_difference_probability(
                gtype, probs, pin, exact=True
            )
            assert approx == pytest.approx(exact)


def test_boolean_difference_xor_models_differ():
    probs = [0.5, 0.5]
    exact = boolean_difference_probability(GateType.XOR, probs, 0, exact=True)
    approx = boolean_difference_probability(GateType.XOR, probs, 0)
    assert exact == pytest.approx(1.0)  # XOR always propagates
    assert approx == pytest.approx(0.5)  # the paper's independence artefact


def test_controlling_values_and_parity():
    assert controlling_value(GateType.AND) == 0
    assert controlling_value(GateType.NOR) == 1
    assert controlling_value(GateType.XOR) is None
    assert inversion_parity(GateType.NAND) is True
    assert inversion_parity(GateType.OR) is False
    assert inversion_parity(GateType.LUT) is None


def test_unknown_gate_type_rejected():
    with pytest.raises(CircuitError):
        eval_packed("MYSTERY", [1], 1)  # type: ignore[arg-type]
