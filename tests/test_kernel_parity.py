"""Parity suite: compiled kernel vs. legacy interpreters vs. backends.

The compiled flat-array kernel (:mod:`repro.kernel`) must be *bit-identical*
to the legacy per-gate interpreters for packed simulation and fault
simulation, and numerically identical (well below 1e-12) for the
estimator pipeline.  Every test here runs both paths on the same inputs —
randomized DAGs (with LUTs) plus the paper's bundled circuits — and
compares exhaustively.

The same contract extends to the evaluation backends
(:mod:`repro.backends`): the numpy word engine must produce bit-identical
simulation words, fault-detection words and sampled block counts to the
pure-python engine on **every** library circuit (the two largest grade a
deterministic fault slice to keep the suite seconds-scale).
"""

from __future__ import annotations

import pytest

from repro.api import AnalysisEngine
from repro.backends import get_backend
from repro.circuit.types import (
    GateType,
    PACKED_DISPATCH,
    eval_bool,
    eval_packed,
)
from repro.circuits.generators import random_dag
from repro.circuits.library import LARGE_NAMES, build, names as library_names
from repro.errors import CircuitError
from repro.faults.simulator import FaultSimulator
from repro.kernel import CompiledCircuit, compile_circuit
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate

BUNDLED = ("alu", "mult", "comp")

RANDOM_SEEDS = (1, 7, 42)

needs_numpy = pytest.mark.skipif(
    not get_backend("numpy").is_available(), reason="numpy not installed"
)

#: Circuits whose full fault universe is too large for per-test grading
#: (library.LARGE_NAMES) get a deterministic fault slice; stride 13 still
#: covers every site family, the 13.9k-gate s15850 takes a harder stride
#: to keep the suite seconds-scale.
FAULT_SLICE_STRIDE = {"s15850": 223}


def _fault_slice(name, faults):
    if name in LARGE_NAMES:
        return faults[::FAULT_SLICE_STRIDE.get(name, 13)]
    return faults


def _random_circuits():
    for seed in RANDOM_SEEDS:
        yield random_dag(6, 40, seed=seed, lut_fraction=0.2)


# -- compiled artifact ---------------------------------------------------------


def test_compile_cache_returns_same_artifact():
    circuit = build("alu")
    first = compile_circuit(circuit)
    assert compile_circuit(circuit) is first
    assert isinstance(first, CompiledCircuit)
    # Flat arrays are structurally consistent.
    assert len(first.names) == first.n_nodes == len(first.opcodes)
    assert len(first.arg_start) == first.n_nodes + 1
    assert first.arg_start[-1] == len(first.arg_flat)
    assert len(first.plan) == circuit.n_gates


def test_engine_shares_one_compiled_artifact():
    engine = AnalysisEngine("alu", "fast")
    assert engine.compiled is compile_circuit(engine.circuit)


# -- eval_packed dispatch table (all gate types, incl. table-driven) -----------


@pytest.mark.parametrize("gtype", list(GateType))
def test_dispatch_table_matches_truth_semantics(gtype):
    arities = {
        GateType.NOT: [1], GateType.BUF: [1],
        GateType.CONST0: [0], GateType.CONST1: [0],
        GateType.LUT: [1, 2, 3],
    }.get(gtype, [2, 3])
    assert gtype in PACKED_DISPATCH
    for arity in arities:
        tables = range(1 << (1 << arity)) if gtype is GateType.LUT else (0,)
        for table in tables:
            for minterm in range(1 << arity):
                operands = [(minterm >> i) & 1 for i in range(arity)]
                got = eval_bool(gtype, operands, table)
                # Packed evaluation over a 2-pattern word must agree
                # per-bit with the scalar result.
                packed = eval_packed(
                    gtype, [op * 0b11 for op in operands], 0b11, table
                )
                assert packed in (0, 0b11)
                assert (packed & 1) == got


def test_eval_packed_rejects_unknown_gate_type():
    with pytest.raises(CircuitError):
        eval_packed("NOPE", [1], 1)


# -- true-value simulation -----------------------------------------------------


@pytest.mark.parametrize("name", BUNDLED)
def test_simulate_parity_bundled(name):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 257, seed=11)
    kernel = simulate(circuit, patterns, use_kernel=True)
    legacy = simulate(circuit, patterns, use_kernel=False)
    assert kernel == legacy


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_simulate_parity_random_dags(seed):
    circuit = random_dag(6, 40, seed=seed, lut_fraction=0.2)
    patterns = PatternSet.exhaustive(circuit.inputs)
    kernel = simulate(circuit, patterns, use_kernel=True)
    legacy = simulate(circuit, patterns, use_kernel=False)
    assert kernel == legacy


def test_simulate_parity_with_overrides():
    circuit = build("alu")
    patterns = PatternSet.random(circuit.inputs, 64, seed=5)
    gate = next(iter(circuit.gates))
    overrides = {gate: 0x5A5A, circuit.inputs[0]: 0}
    kernel = simulate(circuit, patterns, overrides, use_kernel=True)
    legacy = simulate(circuit, patterns, overrides, use_kernel=False)
    assert kernel == legacy


# -- fault simulation ----------------------------------------------------------


def _assert_fault_parity(circuit, patterns, block_size, drop):
    kernel = FaultSimulator(circuit, use_kernel=True).run(
        patterns, block_size=block_size, drop_detected=drop
    )
    legacy = FaultSimulator(circuit, use_kernel=False).run(
        patterns, block_size=block_size, drop_detected=drop
    )
    assert kernel.records.keys() == legacy.records.keys()
    for fault, krec in kernel.records.items():
        lrec = legacy.records[fault]
        assert krec.detect_count == lrec.detect_count, fault
        assert krec.first_detect == lrec.first_detect, fault
        assert krec.simulated_patterns == lrec.simulated_patterns, fault


@pytest.mark.parametrize("name", BUNDLED)
@pytest.mark.parametrize("drop", [False, True])
def test_fault_sim_parity_bundled(name, drop):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 96, seed=23)
    # Odd block size exercises partial lane groups in the last block.
    _assert_fault_parity(circuit, patterns, block_size=40, drop=drop)


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
@pytest.mark.parametrize("drop", [False, True])
def test_fault_sim_parity_random_dags(seed, drop):
    circuit = random_dag(6, 40, seed=seed, lut_fraction=0.2)
    patterns = PatternSet.exhaustive(circuit.inputs)
    _assert_fault_parity(circuit, patterns, block_size=17, drop=drop)


def test_detection_word_parity_single_faults():
    circuit = build("alu")
    patterns = PatternSet.random(circuit.inputs, 48, seed=3)
    good = simulate(circuit, patterns)
    kernel_sim = FaultSimulator(circuit, use_kernel=True)
    legacy_sim = FaultSimulator(circuit, use_kernel=False)
    for fault in kernel_sim.faults:
        assert kernel_sim.detection_word(fault, good, patterns.mask) == \
            legacy_sim.detection_word(fault, good, patterns.mask), fault


# -- estimator / analyze() end-to-end ------------------------------------------


@pytest.mark.parametrize("name", BUNDLED)
def test_analyze_parity_bundled(name):
    kernel_engine = AnalysisEngine(name, "paper", use_kernel=True)
    legacy_engine = AnalysisEngine(name, "paper", use_kernel=False)
    kernel_report = kernel_engine.analyze()
    legacy_report = legacy_engine.analyze()
    # Signal probabilities: identical within 1e-12.
    kernel_signal = kernel_engine.raw_signal_probabilities()
    legacy_signal = legacy_engine.raw_signal_probabilities()
    for node in kernel_signal:
        assert kernel_signal[node] == pytest.approx(
            legacy_signal[node], abs=1e-12
        ), node
    # Detection probabilities: identical within 1e-12.
    kernel_det = kernel_engine.raw_detection_probabilities()
    legacy_det = legacy_engine.raw_detection_probabilities()
    assert kernel_det.keys() == legacy_det.keys()
    for fault in kernel_det:
        assert kernel_det[fault] == pytest.approx(
            legacy_det[fault], abs=1e-12
        ), fault
    # And the derived report quantities agree exactly.
    assert kernel_report.test_lengths == legacy_report.test_lengths
    assert kernel_report.n_faults == legacy_report.n_faults
    assert kernel_report.min_detection == pytest.approx(
        legacy_report.min_detection, abs=1e-12
    )


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_signal_probability_parity_random_dags(seed):
    circuit = random_dag(6, 40, seed=seed, lut_fraction=0.2)
    kernel_engine = AnalysisEngine(circuit, "paper", use_kernel=True)
    legacy_engine = AnalysisEngine(circuit, "paper", use_kernel=False)
    kernel_signal = kernel_engine.raw_signal_probabilities()
    legacy_signal = legacy_engine.raw_signal_probabilities()
    for node in kernel_signal:
        assert kernel_signal[node] == pytest.approx(
            legacy_signal[node], abs=1e-12
        ), node


def test_kernel_engine_cache_contract_still_holds():
    engine = AnalysisEngine("alu", "paper")
    engine.analyze()
    engine.test_length(0.98)
    engine.expected_coverage(500)
    info = engine.cache_info()
    assert info["signal_runs"] == 1
    assert info["observability_runs"] == 1
    assert info["detection_runs"] == 1


# -- cross-backend parity (python vs numpy word engine) ------------------------


def _backend_fault_records(circuit, faults, patterns, backend, drop=False):
    simulator = FaultSimulator(circuit, faults, backend=backend)
    result = simulator.run(patterns, block_size=33, drop_detected=drop)
    return {
        fault: (r.detect_count, r.first_detect, r.simulated_patterns)
        for fault, r in result.records.items()
    }


@needs_numpy
@pytest.mark.parametrize("name", sorted(library_names()))
def test_numpy_backend_simulate_parity_library(name):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 193, seed=13)
    python = simulate(circuit, patterns, backend="python")
    numpy = simulate(circuit, patterns, backend="numpy")
    assert python == numpy


@needs_numpy
@pytest.mark.parametrize("name", sorted(library_names()))
def test_numpy_backend_fault_sim_parity_library(name):
    circuit = build(name)
    simulator = FaultSimulator(circuit)
    faults = _fault_slice(name, simulator.faults)
    patterns = PatternSet.random(circuit.inputs, 77, seed=29)
    python = _backend_fault_records(circuit, faults, patterns, "python")
    numpy = _backend_fault_records(circuit, faults, patterns, "numpy")
    assert python == numpy


@needs_numpy
@pytest.mark.parametrize("name", sorted(library_names()))
def test_numpy_backend_sample_block_parity_library(name):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 321, seed=17)
    python_backend = get_backend("python")
    numpy_backend = get_backend("numpy")
    python_counts = python_backend.sample_block(
        compile_circuit(circuit, python_backend), patterns
    )
    numpy_counts = numpy_backend.sample_block(
        compile_circuit(circuit, numpy_backend), patterns
    )
    assert list(python_counts) == list(numpy_counts)


@needs_numpy
@pytest.mark.parametrize("seed", RANDOM_SEEDS)
@pytest.mark.parametrize("drop", [False, True])
def test_numpy_backend_fault_sim_parity_random_luts(seed, drop):
    circuit = random_dag(6, 40, seed=seed, lut_fraction=0.3)
    patterns = PatternSet.exhaustive(circuit.inputs)
    faults = FaultSimulator(circuit).faults
    python = _backend_fault_records(circuit, faults, patterns, "python", drop)
    numpy = _backend_fault_records(circuit, faults, patterns, "numpy", drop)
    assert python == numpy


@needs_numpy
def test_numpy_backend_detection_words_bitexact():
    """Raw per-fault detection *words* (not just counts) are identical."""
    circuit = build("alu")
    simulator = FaultSimulator(circuit)
    patterns = PatternSet.random(circuit.inputs, 100, seed=5)
    python_backend = get_backend("python")
    numpy_backend = get_backend("numpy")
    py_compiled = compile_circuit(circuit, python_backend)
    np_compiled = compile_circuit(circuit, numpy_backend)
    py_words = python_backend.fault_sim_words(
        py_compiled, python_backend.make_scratch(py_compiled),
        simulator.faults, patterns.words, patterns.mask, patterns.n_patterns,
    )
    np_words = numpy_backend.fault_sim_words(
        np_compiled,
        numpy_backend.make_scratch(np_compiled, simulator.faults),
        simulator.faults, patterns.words, patterns.mask, patterns.n_patterns,
    )
    assert py_words == np_words


@needs_numpy
def test_numpy_backend_simulate_with_overrides_matches():
    circuit = build("alu")
    patterns = PatternSet.random(circuit.inputs, 64, seed=5)
    gate = next(iter(circuit.gates))
    overrides = {gate: 0x5A5A, circuit.inputs[0]: 0}
    python = simulate(circuit, patterns, overrides, backend="python")
    numpy = simulate(circuit, patterns, overrides, backend="numpy")
    assert python == numpy


@needs_numpy
def test_numpy_backend_partial_and_growing_blocks():
    """Session padding (narrow blocks) and rebuilds (wider blocks) agree."""
    circuit = build("mult")
    faults = FaultSimulator(circuit).faults
    patterns = PatternSet.random(circuit.inputs, 150, seed=3)
    python_sim = FaultSimulator(circuit, faults, backend="python")
    numpy_sim = FaultSimulator(circuit, faults, backend="numpy")
    for block_size in (70, 150, 9):  # shrink, grow, shrink again
        py = python_sim.run(patterns, block_size=block_size)
        np_ = numpy_sim.run(patterns, block_size=block_size)
        for fault, record in py.records.items():
            other = np_.records[fault]
            assert record.detect_count == other.detect_count, (block_size, fault)
            assert record.first_detect == other.first_detect, (block_size, fault)


# -- dispatch-family drift guard -----------------------------------------------
#
# The kernel re-implements the packed/tree-rule gate semantics over flat
# arrays (kernel/ops.py) next to the value-sequence family in
# circuit/types.py.  Compare the families directly, per gate type, arity,
# table and minterm, so a semantics fix in one cannot silently diverge
# the other.


@pytest.mark.parametrize("gtype", list(GateType))
def test_kernel_ops_match_types_dispatch(gtype):
    from repro.circuit.types import gate_probability
    from repro.kernel.ops import float_op, overlay_op, packed_op

    arities = {
        GateType.NOT: [1], GateType.BUF: [1],
        GateType.CONST0: [0], GateType.CONST1: [0],
        GateType.LUT: [1, 2],
    }.get(gtype, [2, 3])
    mask = 0b11
    for arity in arities:
        tables = range(1 << (1 << arity)) if gtype is GateType.LUT else (0,)
        args = tuple(range(arity))
        for table in tables:
            for minterm in range(1 << arity):
                bits = [(minterm >> i) & 1 for i in range(arity)]
                values = [b * mask for b in bits]
                want = PACKED_DISPATCH[gtype](values, mask, table)
                assert packed_op(gtype, arity)(values, args, mask, table) \
                    == want
                # Overlay gather: all operands stamped -> read the overlay.
                stamp = [1] * arity
                assert overlay_op(gtype, arity)(
                    values, stamp, 1, [0] * arity, args, mask, table
                ) == want
                # Overlay gather: nothing stamped -> read the good array.
                assert overlay_op(gtype, arity)(
                    [0] * arity, stamp, 2, values, args, mask, table
                ) == want
                # Float family vs. the tree rule on 0/1 probabilities.
                probs = [float(b) for b in bits]
                got = float_op(gtype, arity)(
                    probs, stamp, 1, {}, (), args, table
                )
                assert got == pytest.approx(
                    gate_probability(gtype, probs, table), abs=0.0
                )
