"""Parity suite: compiled kernel vs. legacy interpreters.

The compiled flat-array kernel (:mod:`repro.kernel`) must be *bit-identical*
to the legacy per-gate interpreters for packed simulation and fault
simulation, and numerically identical (well below 1e-12) for the
estimator pipeline.  Every test here runs both paths on the same inputs —
randomized DAGs (with LUTs) plus the paper's bundled circuits — and
compares exhaustively.
"""

from __future__ import annotations

import pytest

from repro.api import AnalysisEngine
from repro.circuit.types import (
    GateType,
    PACKED_DISPATCH,
    eval_bool,
    eval_packed,
)
from repro.circuits.generators import random_dag
from repro.circuits.library import build
from repro.errors import CircuitError
from repro.faults.simulator import FaultSimulator
from repro.kernel import CompiledCircuit, compile_circuit
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate

BUNDLED = ("alu", "mult", "comp")

RANDOM_SEEDS = (1, 7, 42)


def _random_circuits():
    for seed in RANDOM_SEEDS:
        yield random_dag(6, 40, seed=seed, lut_fraction=0.2)


# -- compiled artifact ---------------------------------------------------------


def test_compile_cache_returns_same_artifact():
    circuit = build("alu")
    first = compile_circuit(circuit)
    assert compile_circuit(circuit) is first
    assert isinstance(first, CompiledCircuit)
    # Flat arrays are structurally consistent.
    assert len(first.names) == first.n_nodes == len(first.opcodes)
    assert len(first.arg_start) == first.n_nodes + 1
    assert first.arg_start[-1] == len(first.arg_flat)
    assert len(first.plan) == circuit.n_gates


def test_engine_shares_one_compiled_artifact():
    engine = AnalysisEngine("alu", "fast")
    assert engine.compiled is compile_circuit(engine.circuit)


# -- eval_packed dispatch table (all gate types, incl. table-driven) -----------


@pytest.mark.parametrize("gtype", list(GateType))
def test_dispatch_table_matches_truth_semantics(gtype):
    arities = {
        GateType.NOT: [1], GateType.BUF: [1],
        GateType.CONST0: [0], GateType.CONST1: [0],
        GateType.LUT: [1, 2, 3],
    }.get(gtype, [2, 3])
    assert gtype in PACKED_DISPATCH
    for arity in arities:
        tables = range(1 << (1 << arity)) if gtype is GateType.LUT else (0,)
        for table in tables:
            for minterm in range(1 << arity):
                operands = [(minterm >> i) & 1 for i in range(arity)]
                got = eval_bool(gtype, operands, table)
                # Packed evaluation over a 2-pattern word must agree
                # per-bit with the scalar result.
                packed = eval_packed(
                    gtype, [op * 0b11 for op in operands], 0b11, table
                )
                assert packed in (0, 0b11)
                assert (packed & 1) == got


def test_eval_packed_rejects_unknown_gate_type():
    with pytest.raises(CircuitError):
        eval_packed("NOPE", [1], 1)


# -- true-value simulation -----------------------------------------------------


@pytest.mark.parametrize("name", BUNDLED)
def test_simulate_parity_bundled(name):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 257, seed=11)
    kernel = simulate(circuit, patterns, use_kernel=True)
    legacy = simulate(circuit, patterns, use_kernel=False)
    assert kernel == legacy


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_simulate_parity_random_dags(seed):
    circuit = random_dag(6, 40, seed=seed, lut_fraction=0.2)
    patterns = PatternSet.exhaustive(circuit.inputs)
    kernel = simulate(circuit, patterns, use_kernel=True)
    legacy = simulate(circuit, patterns, use_kernel=False)
    assert kernel == legacy


def test_simulate_parity_with_overrides():
    circuit = build("alu")
    patterns = PatternSet.random(circuit.inputs, 64, seed=5)
    gate = next(iter(circuit.gates))
    overrides = {gate: 0x5A5A, circuit.inputs[0]: 0}
    kernel = simulate(circuit, patterns, overrides, use_kernel=True)
    legacy = simulate(circuit, patterns, overrides, use_kernel=False)
    assert kernel == legacy


# -- fault simulation ----------------------------------------------------------


def _assert_fault_parity(circuit, patterns, block_size, drop):
    kernel = FaultSimulator(circuit, use_kernel=True).run(
        patterns, block_size=block_size, drop_detected=drop
    )
    legacy = FaultSimulator(circuit, use_kernel=False).run(
        patterns, block_size=block_size, drop_detected=drop
    )
    assert kernel.records.keys() == legacy.records.keys()
    for fault, krec in kernel.records.items():
        lrec = legacy.records[fault]
        assert krec.detect_count == lrec.detect_count, fault
        assert krec.first_detect == lrec.first_detect, fault
        assert krec.simulated_patterns == lrec.simulated_patterns, fault


@pytest.mark.parametrize("name", BUNDLED)
@pytest.mark.parametrize("drop", [False, True])
def test_fault_sim_parity_bundled(name, drop):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 96, seed=23)
    # Odd block size exercises partial lane groups in the last block.
    _assert_fault_parity(circuit, patterns, block_size=40, drop=drop)


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
@pytest.mark.parametrize("drop", [False, True])
def test_fault_sim_parity_random_dags(seed, drop):
    circuit = random_dag(6, 40, seed=seed, lut_fraction=0.2)
    patterns = PatternSet.exhaustive(circuit.inputs)
    _assert_fault_parity(circuit, patterns, block_size=17, drop=drop)


def test_detection_word_parity_single_faults():
    circuit = build("alu")
    patterns = PatternSet.random(circuit.inputs, 48, seed=3)
    good = simulate(circuit, patterns)
    kernel_sim = FaultSimulator(circuit, use_kernel=True)
    legacy_sim = FaultSimulator(circuit, use_kernel=False)
    for fault in kernel_sim.faults:
        assert kernel_sim.detection_word(fault, good, patterns.mask) == \
            legacy_sim.detection_word(fault, good, patterns.mask), fault


# -- estimator / analyze() end-to-end ------------------------------------------


@pytest.mark.parametrize("name", BUNDLED)
def test_analyze_parity_bundled(name):
    kernel_engine = AnalysisEngine(name, "paper", use_kernel=True)
    legacy_engine = AnalysisEngine(name, "paper", use_kernel=False)
    kernel_report = kernel_engine.analyze()
    legacy_report = legacy_engine.analyze()
    # Signal probabilities: identical within 1e-12.
    kernel_signal = kernel_engine.raw_signal_probabilities()
    legacy_signal = legacy_engine.raw_signal_probabilities()
    for node in kernel_signal:
        assert kernel_signal[node] == pytest.approx(
            legacy_signal[node], abs=1e-12
        ), node
    # Detection probabilities: identical within 1e-12.
    kernel_det = kernel_engine.raw_detection_probabilities()
    legacy_det = legacy_engine.raw_detection_probabilities()
    assert kernel_det.keys() == legacy_det.keys()
    for fault in kernel_det:
        assert kernel_det[fault] == pytest.approx(
            legacy_det[fault], abs=1e-12
        ), fault
    # And the derived report quantities agree exactly.
    assert kernel_report.test_lengths == legacy_report.test_lengths
    assert kernel_report.n_faults == legacy_report.n_faults
    assert kernel_report.min_detection == pytest.approx(
        legacy_report.min_detection, abs=1e-12
    )


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_signal_probability_parity_random_dags(seed):
    circuit = random_dag(6, 40, seed=seed, lut_fraction=0.2)
    kernel_engine = AnalysisEngine(circuit, "paper", use_kernel=True)
    legacy_engine = AnalysisEngine(circuit, "paper", use_kernel=False)
    kernel_signal = kernel_engine.raw_signal_probabilities()
    legacy_signal = legacy_engine.raw_signal_probabilities()
    for node in kernel_signal:
        assert kernel_signal[node] == pytest.approx(
            legacy_signal[node], abs=1e-12
        ), node


def test_kernel_engine_cache_contract_still_holds():
    engine = AnalysisEngine("alu", "paper")
    engine.analyze()
    engine.test_length(0.98)
    engine.expected_coverage(500)
    info = engine.cache_info()
    assert info["signal_runs"] == 1
    assert info["observability_runs"] == 1
    assert info["detection_runs"] == 1


# -- dispatch-family drift guard -----------------------------------------------
#
# The kernel re-implements the packed/tree-rule gate semantics over flat
# arrays (kernel/ops.py) next to the value-sequence family in
# circuit/types.py.  Compare the families directly, per gate type, arity,
# table and minterm, so a semantics fix in one cannot silently diverge
# the other.


@pytest.mark.parametrize("gtype", list(GateType))
def test_kernel_ops_match_types_dispatch(gtype):
    from repro.circuit.types import gate_probability
    from repro.kernel.ops import float_op, overlay_op, packed_op

    arities = {
        GateType.NOT: [1], GateType.BUF: [1],
        GateType.CONST0: [0], GateType.CONST1: [0],
        GateType.LUT: [1, 2],
    }.get(gtype, [2, 3])
    mask = 0b11
    for arity in arities:
        tables = range(1 << (1 << arity)) if gtype is GateType.LUT else (0,)
        args = tuple(range(arity))
        for table in tables:
            for minterm in range(1 << arity):
                bits = [(minterm >> i) & 1 for i in range(arity)]
                values = [b * mask for b in bits]
                want = PACKED_DISPATCH[gtype](values, mask, table)
                assert packed_op(gtype, arity)(values, args, mask, table) \
                    == want
                # Overlay gather: all operands stamped -> read the overlay.
                stamp = [1] * arity
                assert overlay_op(gtype, arity)(
                    values, stamp, 1, [0] * arity, args, mask, table
                ) == want
                # Overlay gather: nothing stamped -> read the good array.
                assert overlay_op(gtype, arity)(
                    [0] * arity, stamp, 2, values, args, mask, table
                ) == want
                # Float family vs. the tree rule on 0/1 probabilities.
                probs = [float(b) for b in bits]
                got = float_op(gtype, arity)(
                    probs, stamp, 1, {}, (), args, table
                )
                assert got == pytest.approx(
                    gate_probability(gtype, probs, table), abs=0.0
                )
