"""benchmarks/bench_compare.py: the perf-history regression gate.

Exercises the comparison core and the CLI exit codes against synthetic
history directories — the acceptance contract is that the gate passes
an unmodified re-run and exits non-zero on an injected 25% regression.
"""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import bench_compare  # noqa: E402
from bench_compare import (  # noqa: E402
    compare,
    inject_regression,
    judge,
    latest_per_series,
    load_fixture,
)
from common import append_history, load_history  # noqa: E402


def _seed(history_dir, series, values, kind="throughput", bench="b",
          unit="u"):
    for value in values:
        append_history(bench, series, value, unit, kind=kind,
                       history_dir=history_dir)


def _row(series, value, kind="throughput", bench="b", unit="u"):
    return {"bench": bench, "series": series, "value": value,
            "unit": unit, "kind": kind}


# -- judge thresholds --------------------------------------------------------


class TestJudge:
    def test_throughput_fails_past_20pct_drop(self):
        assert judge("throughput", 81.0, 100.0)[0] is True
        assert judge("throughput", 79.0, 100.0)[0] is False
        assert judge("throughput", 150.0, 100.0)[0] is True  # faster is fine

    def test_rss_fails_past_15pct_growth(self):
        assert judge("rss", 114.0, 100.0)[0] is True
        assert judge("rss", 116.0, 100.0)[0] is False
        assert judge("rss", 50.0, 100.0)[0] is True  # shrinking is fine

    def test_latency_fails_past_20pct_growth(self):
        assert judge("latency", 119.0, 100.0)[0] is True
        assert judge("latency", 121.0, 100.0)[0] is False

    def test_overhead_fails_past_2_points_absolute(self):
        assert judge("overhead_pct", 2.9, 1.0)[0] is True
        assert judge("overhead_pct", 3.1, 1.0)[0] is False


# -- comparison core ---------------------------------------------------------


class TestCompare:
    def test_no_baseline_passes_and_seeds(self, tmp_path):
        verdicts, ok = compare([_row("s", 1.0)], [], window=5)
        assert ok is True
        assert verdicts[0]["status"] == "no-baseline"

    def test_median_baseline_shrugs_off_one_outlier(self, tmp_path):
        _seed(tmp_path, "s", [100.0, 101.0, 5.0, 99.0, 100.0])
        history = load_history(tmp_path)
        verdicts, ok = compare([_row("s", 95.0)], history, window=5,
                               ignore_fingerprint=True)
        assert ok is True  # median 100, not dragged down by the 5.0
        assert verdicts[0]["baseline"] == pytest.approx(100.0)

    def test_fingerprint_filter_excludes_other_machines(self, tmp_path):
        _seed(tmp_path, "s", [100.0])
        history = load_history(tmp_path)
        for entry in history:
            entry["fingerprint"] = "someone-elses-box"
        verdicts, ok = compare([_row("s", 10.0)], history, window=5)
        assert ok is True
        assert verdicts[0]["status"] == "no-baseline"

    def test_window_limits_the_baseline(self, tmp_path):
        _seed(tmp_path, "s", [10.0, 10.0, 10.0, 100.0, 100.0, 100.0])
        history = load_history(tmp_path)
        verdicts, _ = compare([_row("s", 100.0)], history, window=3,
                              ignore_fingerprint=True)
        assert verdicts[0]["baseline"] == pytest.approx(100.0)

    def test_inject_regression_worsens_every_kind(self):
        rows = [_row("t", 100.0, kind="throughput"),
                _row("r", 100.0, kind="rss"),
                _row("l", 100.0, kind="latency"),
                _row("o", 1.0, kind="overhead_pct")]
        injected = {r["series"]: r["value"]
                    for r in inject_regression(rows, 25.0)}
        assert injected["t"] == pytest.approx(75.0)
        assert injected["r"] == pytest.approx(125.0)
        assert injected["l"] == pytest.approx(125.0)
        assert injected["o"] == pytest.approx(3.5)


# -- CLI exit codes (the acceptance contract) --------------------------------


class TestCli:
    def _gate(self, tmp_path, fresh, extra_args=()):
        payload = tmp_path / "fresh.json"
        payload.write_text(json.dumps(fresh), encoding="utf-8")
        return bench_compare.main([
            "--from-json", str(payload),
            "--history-dir", str(tmp_path / "hist"),
            "--ignore-fingerprint", "--no-append", *extra_args,
        ])

    def test_unmodified_rerun_passes(self, tmp_path):
        _seed(tmp_path / "hist", "faultsim.x.kernel", [1e6, 1e6, 1e6])
        assert self._gate(tmp_path, [_row("faultsim.x.kernel", 1e6)]) == 0

    def test_injected_25pct_regression_fails(self, tmp_path):
        _seed(tmp_path / "hist", "faultsim.x.kernel", [1e6, 1e6, 1e6])
        assert self._gate(
            tmp_path, [_row("faultsim.x.kernel", 1e6)],
            extra_args=("--inject-regression", "25"),
        ) == 1

    def test_rss_growth_fails(self, tmp_path):
        _seed(tmp_path / "hist", "rss.x", [100e6] * 3, kind="rss")
        assert self._gate(
            tmp_path, [_row("rss.x", 120e6, kind="rss")]
        ) == 1
        assert self._gate(
            tmp_path, [_row("rss.x", 110e6, kind="rss")]
        ) == 0

    def test_gate_appends_after_comparing(self, tmp_path):
        hist = tmp_path / "hist"
        _seed(hist, "s", [1e6] * 3)
        payload = tmp_path / "fresh.json"
        payload.write_text(json.dumps([_row("s", 1e6)]), encoding="utf-8")
        assert bench_compare.main([
            "--from-json", str(payload), "--history-dir", str(hist),
            "--ignore-fingerprint",
        ]) == 0
        values = [e["value"] for e in load_history(hist)
                  if e["series"] == "s"]
        assert len(values) == 4  # the fresh row landed in the history

    def test_json_verdicts_export(self, tmp_path):
        _seed(tmp_path / "hist", "s", [1e6] * 3)
        out = tmp_path / "verdicts.json"
        assert self._gate(tmp_path, [_row("s", 1e6)],
                          extra_args=("--json", str(out))) == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["ok"] is True
        assert doc["verdicts"][0]["status"] == "ok"


# -- the committed smoke fixture ---------------------------------------------


class TestFixture:
    def test_committed_fixture_parses_and_covers_all_kinds(self):
        fixture = load_fixture(BENCHMARKS / "history")
        assert fixture is not None
        kinds = {entry["kind"] for entry in fixture}
        assert kinds >= {"throughput", "rss", "latency", "overhead_pct"}

    def test_fixture_passes_clean_and_trips_injected(self):
        fixture = load_fixture(BENCHMARKS / "history")
        fresh = latest_per_series(fixture)
        _, clean_ok = compare(fresh, fixture, window=5,
                              ignore_fingerprint=True)
        assert clean_ok is True
        injected = inject_regression(fresh, 25.0)
        verdicts, injected_ok = compare(injected, fixture, window=5,
                                        ignore_fingerprint=True)
        assert injected_ok is False
        assert all(v["status"] == "REGRESSION" for v in verdicts)
