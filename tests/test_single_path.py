"""Tests for the single-path sensitization estimator (paper §3 option)."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17
from repro.detection import SinglePathEstimator
from repro.errors import EstimationError
from repro.faults import Fault, fault_universe
from repro.probability import SignalProbabilityEstimator


def test_chain_circuit_single_path_equals_flow_model():
    """With exactly one path the two models coincide."""
    b = CircuitBuilder("chain")
    x, y, z = b.inputs("x", "y", "z")
    n1 = b.and_("n1", x, y)
    n2 = b.or_("n2", n1, z)
    b.output(n2)
    circuit = b.build()
    probs = SignalProbabilityEstimator(circuit).run()
    single = SinglePathEstimator(circuit, exact_pin=True)
    # x -> n1 -> n2: P(sens) = p_y * (1 - p_z) = 0.5 * 0.5.
    assert single.observability("x", probs) == pytest.approx(0.25)
    from repro.detection import ObservabilityAnalyzer

    flow = ObservabilityAnalyzer(
        circuit, pin_model="boolean_difference"
    ).run(probs)
    assert flow.stem("x") == pytest.approx(0.25)


def test_multi_path_combination():
    circuit = c17()
    probs = SignalProbabilityEstimator(circuit).run()
    single = SinglePathEstimator(circuit, exact_pin=True)
    # G11 reaches both outputs via G16 and G19: combined with (+).
    value = single.observability("G11", probs)
    assert 0.0 < value < 1.0


def test_detection_probabilities_from_paths():
    circuit = c17()
    faults = fault_universe(circuit, include_branches=False)
    probs = SignalProbabilityEstimator(circuit).run()
    single = SinglePathEstimator(circuit, exact_pin=True)
    det = single.run(faults, probs)
    assert set(det) == set(faults)
    for fault, p in det.items():
        assert 0.0 <= p <= 1.0, str(fault)
    # Output stem faults: P = signal prob (excitation) directly.
    assert det[Fault("G22", None, 0)] == pytest.approx(probs["G22"])


def test_branch_fault_paths():
    circuit = c17()
    probs = SignalProbabilityEstimator(circuit).run()
    single = SinglePathEstimator(circuit, exact_pin=True)
    det = single.run([Fault("G16", 0, 0)], probs)
    assert 0.0 < det[Fault("G16", 0, 0)] <= 1.0


def test_max_paths_bound():
    with pytest.raises(EstimationError):
        SinglePathEstimator(c17(), max_paths=0)
    # A tiny bound still yields a sane (under-) estimate.
    circuit = c17()
    probs = SignalProbabilityEstimator(circuit).run()
    bounded = SinglePathEstimator(circuit, max_paths=1, exact_pin=True)
    full = SinglePathEstimator(circuit, max_paths=64, exact_pin=True)
    assert bounded.observability("G11", probs) <= (
        full.observability("G11", probs) + 1e-9
    )
