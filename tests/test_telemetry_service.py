"""Telemetry wired through the service: /metrics, /stats, job traces.

The unit-level registry/tracing behaviour lives in test_telemetry.py;
here the counters are driven by the real JobManager + HTTP front-end
and read back over the wire.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import __version__
from repro.api.config import ProtestConfig
from repro.service import JobManager, make_server
from repro.telemetry.tracing import clear_spans

#: Small but multi-block sampled config (same shape as test_service_jobs).
SAMPLED = ProtestConfig(
    method="sampled", max_patterns=2048, target_halfwidth=0.01,
    fault_sample=48, name="tel-test",
)


@pytest.fixture(autouse=True)
def _span_isolation():
    clear_spans()
    yield
    clear_spans()


@pytest.fixture
def manager(tmp_path):
    mgr = JobManager(workers=2, trace_dir=str(tmp_path / "traces"))
    yield mgr
    mgr.shutdown(wait=False)


@pytest.fixture
def server(manager):
    srv = make_server(manager)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    yield f"http://{host}:{port}", manager
    srv.shutdown()
    srv.server_close()


def _wait_for_file(path, timeout=30.0):
    """The trace file is written by the worker just *after* the job
    turns terminal, so a fresh ``wait()`` can race it by a tick."""
    deadline = time.monotonic() + timeout
    while not path.exists() and time.monotonic() < deadline:
        time.sleep(0.02)
    return path.exists()


def _get(url):
    with urllib.request.urlopen(url) as response:
        return response.status, dict(response.headers), response.read()


def _post_json(url, payload):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


# -- job storm: registry totals reconcile with job states --------------------


def test_job_storm_counters_reconcile(manager):
    jobs, lock = [], threading.Lock()
    per_thread = 4

    def storm(i):
        for j in range(per_thread):
            # Distinct input probs defeat the report cache so every job
            # does real work; a couple of bad names exercise "failed".
            if (i, j) == (0, 0):
                job = manager.submit(circuit="definitely-not-a-circuit")
            else:
                job = manager.submit(
                    circuit="c17", config="fast",
                    input_probs=0.05 + 0.01 * (i * per_thread + j),
                )
            with lock:
                jobs.append(job)

    pool = [threading.Thread(target=storm, args=(i,)) for i in range(8)]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    states = [manager.wait(job.id, timeout=120).state for job in jobs]

    submitted = manager.metrics.counter("protest_jobs_submitted_total").value()
    assert submitted == 8 * per_thread == len(jobs)
    finished = manager.metrics.counter(
        "protest_jobs_finished_total", labelnames=("state",)
    )
    by_state = {labels["state"]: value for labels, value in finished.samples()}
    assert by_state.get("done", 0) == states.count("done")
    assert by_state.get("failed", 0) == states.count("failed") == 1
    assert sum(by_state.values()) == len(jobs)
    # Histogram observation counts match finished jobs, and the bucket
    # cumulative totals are internally consistent.
    hist = manager.metrics.histogram(
        "protest_job_seconds", labelnames=("kind",)
    ).labels(kind="analyze").histogram
    assert hist["count"] == len(jobs)
    assert hist["buckets"]["+Inf"] == hist["count"]
    assert manager.metrics.gauge("protest_job_queue_depth").value() == 0


# -- /metrics over the wire --------------------------------------------------


def test_metrics_endpoint_serves_core_series(server):
    base, manager = server
    status, body = _post_json(
        f"{base}/jobs", {"circuit": "c17", "config": "sampled"}
    )
    assert status == 201
    manager.wait(body["id"], timeout=120)
    # An analytic job exercises the signal/observability/detection
    # stages (the sampled one only runs "sampling").
    _, body = _post_json(f"{base}/jobs", {"circuit": "c17", "config": "fast"})
    manager.wait(body["id"], timeout=120)

    status, headers, raw = _get(f"{base}/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    text = raw.decode("utf-8")
    lines = text.splitlines()
    # queue / job / cache / engine-stage / sampling / backend / HTTP
    # series all present, plus build info and computed uptime.
    for needle in (
        "protest_job_queue_depth ",
        "protest_jobs_submitted_total 2",
        'protest_jobs_finished_total{state="done"} 2',
        'protest_cache_requests_total{cache="report",outcome="miss"}',
        'protest_engine_stage_events_total{stage="signal",event="run"}',
        'protest_sampling_blocks_total{kind="detection"}',
        "protest_backend_fault_patterns_total{",
        'protest_http_requests_total{method="POST",route="/jobs",status="201"} 2',
        f'protest_build_info{{version="{__version__}"}} 1',
        "protest_uptime_seconds ",
    ):
        assert any(line.startswith(needle) for line in lines), needle
    # Well-formed exposition: every series line's family has a TYPE.
    typed = {line.split()[2] for line in lines if line.startswith("# TYPE")}
    for line in lines:
        if line.startswith("#") or not line:
            continue
        family = line.split("{")[0].split(" ")[0]
        base_name = family
        for suffix in ("_bucket", "_sum", "_count"):
            if family.endswith(suffix) and family[: -len(suffix)] in typed:
                base_name = family[: -len(suffix)]
        assert base_name in typed, line


def test_stats_and_healthz_carry_uptime_version_telemetry(server):
    base, manager = server
    status, body = _post_json(f"{base}/jobs", {"circuit": "c17"})
    manager.wait(body["id"], timeout=120)

    _, _, raw = _get(f"{base}/stats")
    stats = json.loads(raw)
    assert stats["version"] == __version__
    assert stats["uptime_seconds"] >= 0
    telemetry = stats["telemetry"]
    assert telemetry["protest_jobs_submitted_total"]["samples"][0]["value"] == 1
    assert "protest_job_queue_depth" in telemetry

    _, _, raw = _get(f"{base}/healthz")
    health = json.loads(raw)
    assert health["version"] == __version__
    assert health["uptime_seconds"] >= 0


def test_stats_and_build_info_pin_the_same_version(server):
    """``/stats`` and the ``protest_build_info`` gauge must both report
    ``repro.__version__`` — one source of truth for what's deployed."""
    base, _manager = server
    _, _, raw = _get(f"{base}/stats")
    stats = json.loads(raw)
    _, _, raw = _get(f"{base}/metrics")
    build_lines = [
        line for line in raw.decode("utf-8").splitlines()
        if line.startswith("protest_build_info{")
    ]
    assert len(build_lines) == 1, build_lines
    assert stats["version"] == __version__
    assert build_lines[0] == (
        f'protest_build_info{{version="{__version__}"}} 1'
    )


# -- per-job chrome traces ---------------------------------------------------


def test_job_trace_file_nests_request_job_stage_block(server, tmp_path):
    base, manager = server
    status, body = _post_json(
        f"{base}/jobs", {"circuit": "c17", "config": "sampled"}
    )
    job = manager.wait(body["id"], timeout=120)
    assert job.state == "done"
    assert job.trace_id is not None

    trace_path = tmp_path / "traces" / f"trace-{job.id}.json"
    assert _wait_for_file(trace_path)
    doc = json.loads(trace_path.read_text())
    events = doc["traceEvents"]
    assert events, "trace must not be empty"
    by_id = {e["args"]["span_id"]: e for e in events}
    by_name = {}
    for event in events:
        by_name.setdefault(event["name"], []).append(event)

    def ancestors(event):
        names = []
        parent = event["args"]["parent_id"]
        while parent is not None and parent in by_id:
            names.append(by_id[parent]["name"])
            parent = by_id[parent]["args"]["parent_id"]
        return names

    # One trace id throughout.
    assert len({e["args"]["trace_id"] for e in events}) == 1
    assert events[0]["args"]["trace_id"] == job.trace_id
    # http.request -> service.job -> engine.sampling -> sampling.block
    job_span = by_name["service.job"][0]
    assert "http.request" in ancestors(job_span)
    stage = by_name["engine.sampling"][0]
    assert "service.job" in ancestors(stage)
    for block in by_name["sampling.block"]:
        chain = ancestors(block)
        assert "engine.sampling" in chain
        assert "http.request" in chain


def test_cancelled_submit_carries_no_trace_file(manager, tmp_path):
    # A job that never ran to "done" still exports (terminal states all
    # do) — but only once a worker stamped a trace id on it.
    job = manager.submit(circuit="no-such-circuit")
    job = manager.wait(job.id, timeout=120)
    assert job.state == "failed"
    trace_path = tmp_path / "traces" / f"trace-{job.id}.json"
    assert _wait_for_file(trace_path)
    names = {e["name"] for e in
             json.loads(trace_path.read_text())["traceEvents"]}
    assert "service.job" in names
