"""Tests for PODEM and the hybrid random-first ATPG flow (paper §8)."""

from __future__ import annotations

import pytest

from repro.atpg import PodemGenerator, hybrid_atpg
from repro.circuit import CircuitBuilder
from repro.circuits import c17, mux_tree, parity_tree, sn74181
from repro.faults import Fault, FaultSimulator, fault_universe
from repro.logicsim import PatternSet, simulate


def verify_test(circuit, fault, pattern) -> bool:
    """Does the produced pattern actually detect the fault?"""
    ps = PatternSet.from_vectors(circuit.inputs, [pattern])
    good = simulate(circuit, ps)
    simulator = FaultSimulator(circuit, [fault])
    return bool(simulator.detection_word(fault, good, ps.mask))


@pytest.mark.parametrize(
    "factory", [c17, lambda: parity_tree(5), lambda: mux_tree(2)]
)
def test_all_faults_get_verified_tests(factory):
    """These circuits have no redundant faults: PODEM must test them all."""
    circuit = factory()
    generator = PodemGenerator(circuit)
    for fault in fault_universe(circuit):
        result = generator.generate(fault)
        assert result.detected, str(fault)
        assert verify_test(circuit, fault, result.pattern), str(fault)
        assert not result.aborted


def test_alu_sampled_faults():
    """Every PODEM verdict on the ALU must agree with exhaustive truth.

    The SN74181 contains genuinely redundant faults (e.g. the carry AOI
    side pin ``C2B.in2 s-a-1`` requires ``Y0 = 0`` and ``X0 = 1``
    simultaneously, which contradict through A0) — PODEM must prove those
    and test everything else.
    """
    from repro.detection import exact_detection_probabilities

    circuit = sn74181()
    generator = PodemGenerator(circuit)
    faults = fault_universe(circuit)[::7]  # sampled for speed
    exact = exact_detection_probabilities(circuit, faults, max_inputs=14)
    redundant_found = 0
    for fault in faults:
        result = generator.generate(fault)
        if result.proven_redundant:
            assert exact[fault] == 0.0, str(fault)
            redundant_found += 1
        else:
            assert result.detected, str(fault)
            assert verify_test(circuit, fault, result.pattern), str(fault)
            assert exact[fault] > 0.0, str(fault)
    assert redundant_found >= 1  # the ALU's known redundancies show up


def test_redundant_fault_proven():
    b = CircuitBuilder("red")
    a = b.input("a")
    one = b.const1("one")
    b.output(b.and_("y", a, one))
    circuit = b.build()
    generator = PodemGenerator(circuit)
    result = generator.generate(Fault("one", None, 1))
    assert result.proven_redundant
    assert not result.detected
    # The excitable polarity is testable.
    result = generator.generate(Fault("one", None, 0))
    assert result.detected
    assert result.pattern == {"a": 1}


def test_masked_redundancy():
    """y = OR(AND(x, z), x): AND-output s-a-0 is undetectable."""
    b = CircuitBuilder("masked")
    x, z = b.inputs("x", "z")
    n1 = b.and_("n1", x, z)
    b.output(b.or_("y", n1, x))
    circuit = b.build()
    generator = PodemGenerator(circuit)
    result = generator.generate(Fault("n1", None, 0))
    assert result.proven_redundant
    # ... while n1 s-a-1 is testable (x=0, z arbitrary... needs y flip).
    result = generator.generate(Fault("n1", None, 1))
    assert result.detected
    assert verify_test(circuit, Fault("n1", None, 1), result.pattern)


def test_branch_fault_tests():
    circuit = c17()
    generator = PodemGenerator(circuit)
    fault = Fault("G16", 1, 1)  # branch of the G11 stem
    result = generator.generate(fault)
    assert result.detected
    assert verify_test(circuit, fault, result.pattern)


def test_backtrack_limit_reports_abort():
    circuit = sn74181()
    generator = PodemGenerator(circuit, max_backtracks=0)
    # A fault needing at least one backtrack may abort; it must never
    # produce a wrong answer.
    outcomes = [
        generator.generate(f) for f in fault_universe(circuit)[:40]
    ]
    for result in outcomes:
        if result.detected:
            assert verify_test(circuit, result.fault, result.pattern)
        else:
            assert result.aborted or result.proven_redundant


def test_hybrid_flow_random_then_podem():
    circuit = c17()
    result = hybrid_atpg(circuit, n_random=64, seed=3)
    assert result.n_faults == len(fault_universe(circuit))
    assert result.coverage == 1.0
    assert result.detected_by_random + result.detected_by_podem == (
        result.n_faults
    )
    # With a decent random phase, PODEM sees only the stragglers.
    assert result.podem_workload < result.n_faults / 2


def test_hybrid_flow_no_random_phase():
    circuit = c17()
    result = hybrid_atpg(circuit, n_random=0)
    assert result.detected_by_random == 0
    assert result.detected_by_podem == result.n_faults
    assert len(result.deterministic_patterns) == result.n_faults


def test_hybrid_flow_weighted_random_reduces_podem_workload():
    """The §8 claim in miniature on an AND tree: biased-high patterns
    detect the hard s-a-0 faults that uniform ones hand to PODEM."""
    b = CircuitBuilder("and8")
    bits = b.bus("I", 8)
    b.output(b.and_("y", *bits))
    circuit = b.build()
    uniform = hybrid_atpg(circuit, n_random=40, seed=5)
    weighted = hybrid_atpg(
        circuit, n_random=40, input_probs=0.9375, seed=5
    )
    assert weighted.podem_workload < uniform.podem_workload
