"""Unit tests for packed-bit helpers and pattern sets."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.logicsim import (
    PatternSet,
    bit_slice,
    lowest_set_bit,
    mask_for,
    pack_bits,
    popcount,
    resolve_input_probs,
    unpack_bits,
)


def test_mask_for():
    assert mask_for(0) == 0
    assert mask_for(3) == 0b111
    with pytest.raises(ValueError):
        mask_for(-1)


def test_pack_unpack_roundtrip():
    bits = [1, 0, 0, 1, 1, 0, 1]
    word = pack_bits(bits)
    assert unpack_bits(word, len(bits)) == bits


def test_pack_rejects_non_bits():
    with pytest.raises(ValueError):
        pack_bits([0, 2, 1])


def test_popcount_lowest_bit_slice():
    assert popcount(0b101101) == 4
    assert lowest_set_bit(0b101000) == 3
    assert lowest_set_bit(0) is None
    assert bit_slice(0b110110, 1, 4) == 0b011
    with pytest.raises(ValueError):
        bit_slice(1, 3, 2)


def test_resolve_input_probs_forms():
    inputs = ["a", "b"]
    assert resolve_input_probs(inputs, None) == {"a": 0.5, "b": 0.5}
    assert resolve_input_probs(inputs, 0.25) == {"a": 0.25, "b": 0.25}
    assert resolve_input_probs(inputs, {"a": 0.1, "b": 1.0}) == {
        "a": 0.1,
        "b": 1.0,
    }
    with pytest.raises(SimulationError, match="no probability"):
        resolve_input_probs(inputs, {"a": 0.1})
    with pytest.raises(SimulationError, match="outside"):
        resolve_input_probs(inputs, 1.5)


def test_exhaustive_encoding():
    ps = PatternSet.exhaustive(["a", "b", "c"])
    assert ps.n_patterns == 8
    for j in range(8):
        vec = ps.vector(j)
        assert vec["a"] == (j >> 0) & 1
        assert vec["b"] == (j >> 1) & 1
        assert vec["c"] == (j >> 2) & 1


def test_exhaustive_rejects_wide():
    with pytest.raises(SimulationError, match="2\\^25"):
        PatternSet.exhaustive([f"i{k}" for k in range(25)])


def test_random_deterministic_by_seed():
    a = PatternSet.random(["x", "y"], 256, seed=42)
    b = PatternSet.random(["x", "y"], 256, seed=42)
    c = PatternSet.random(["x", "y"], 256, seed=43)
    assert a.words == b.words
    assert a.words != c.words


def test_random_weighted_statistics():
    probs = {"a": 0.0625, "b": 0.5, "c": 0.9375, "d": 0.0, "e": 1.0}
    ps = PatternSet.random(list(probs), 200_000, probs, seed=7)
    observed = ps.observed_probabilities()
    assert observed["d"] == 0.0
    assert observed["e"] == 1.0
    for name in ("a", "b", "c"):
        assert observed[name] == pytest.approx(probs[name], abs=0.01)


def test_from_vectors_and_vector_access():
    rows = [{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}]
    ps = PatternSet.from_vectors(["a", "b"], rows)
    assert ps.n_patterns == 3
    assert ps.vectors() == rows
    with pytest.raises(SimulationError):
        ps.vector(3)


def test_from_vectors_validation():
    with pytest.raises(SimulationError, match="does not assign"):
        PatternSet.from_vectors(["a", "b"], [{"a": 1}])
    with pytest.raises(SimulationError, match="assigns"):
        PatternSet.from_vectors(["a"], [{"a": 2}])


def test_slice_and_concat():
    ps = PatternSet.random(["a", "b"], 100, seed=1)
    head = ps.slice(0, 40)
    tail = ps.slice(40, 100)
    assert head.n_patterns == 40
    whole = head.concat(tail)
    assert whole.words == ps.words
    with pytest.raises(SimulationError):
        ps.slice(50, 20)
    other = PatternSet.random(["a", "c"], 10, seed=1)
    with pytest.raises(SimulationError, match="different inputs"):
        head.concat(other)


def test_missing_input_word_rejected():
    with pytest.raises(SimulationError, match="missing word"):
        PatternSet(["a", "b"], 4, {"a": 0b1010})
