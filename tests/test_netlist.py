"""Unit tests for the Circuit / Gate data structures."""

from __future__ import annotations

import pytest

from repro.circuit import Circuit, Gate, GateType
from repro.errors import CircuitError


def make_simple():
    gates = [
        Gate("n1", GateType.AND, ("a", "b")),
        Gate("n2", GateType.NOT, ("n1",)),
    ]
    return Circuit("simple", ["a", "b"], ["n2"], gates)


def test_basic_construction():
    circuit = make_simple()
    assert circuit.inputs == ("a", "b")
    assert circuit.outputs == ("n2",)
    assert circuit.n_gates == 2
    assert circuit.n_nodes == 4
    assert len(circuit) == 4


def test_topological_order_inputs_first():
    circuit = make_simple()
    order = circuit.nodes
    assert set(order[:2]) == {"a", "b"}
    assert order.index("n1") < order.index("n2")


def test_gate_lookup():
    circuit = make_simple()
    assert circuit.gate("n1").gtype is GateType.AND
    with pytest.raises(CircuitError):
        circuit.gate("a")  # primary input has no driving gate


def test_is_input_output_contains():
    circuit = make_simple()
    assert circuit.is_input("a") and not circuit.is_input("n1")
    assert circuit.is_output("n2") and not circuit.is_output("n1")
    assert "n1" in circuit and "zz" not in circuit
    assert 42 not in circuit


def test_duplicate_driver_rejected():
    gates = [
        Gate("n1", GateType.AND, ("a", "b")),
        Gate("n1", GateType.OR, ("a", "b")),
    ]
    with pytest.raises(CircuitError, match="driven twice"):
        Circuit("bad", ["a", "b"], ["n1"], gates)


def test_input_also_driven_rejected():
    gates = [Gate("a", GateType.NOT, ("b",))]
    with pytest.raises(CircuitError, match="also driven"):
        Circuit("bad", ["a", "b"], ["a"], gates)


def test_undriven_source_rejected():
    gates = [Gate("n1", GateType.AND, ("a", "ghost"))]
    with pytest.raises(CircuitError, match="undriven node"):
        Circuit("bad", ["a"], ["n1"], gates)


def test_undriven_output_rejected():
    with pytest.raises(CircuitError, match="undriven"):
        Circuit("bad", ["a"], ["ghost"], [])


def test_duplicate_output_rejected():
    gates = [Gate("n1", GateType.NOT, ("a",))]
    with pytest.raises(CircuitError, match="duplicate primary output"):
        Circuit("bad", ["a"], ["n1", "n1"], gates)


def test_duplicate_input_rejected():
    with pytest.raises(CircuitError, match="duplicate primary input"):
        Circuit("bad", ["a", "a"], ["a"], [])


def test_combinational_loop_rejected():
    gates = [
        Gate("n1", GateType.AND, ("a", "n2")),
        Gate("n2", GateType.OR, ("n1", "a")),
    ]
    with pytest.raises(CircuitError, match="loop"):
        Circuit("bad", ["a"], ["n2"], gates)


def test_self_loop_rejected():
    gates = [Gate("n1", GateType.BUF, ("n1",))]
    with pytest.raises(CircuitError, match="loop"):
        Circuit("bad", ["a"], ["n1"], gates)


def test_gate_arity_enforced():
    with pytest.raises(CircuitError, match="inputs"):
        Gate("n1", GateType.NOT, ("a", "b"))
    with pytest.raises(CircuitError, match="inputs"):
        Gate("n1", GateType.AND, ("a",))
    # Wide AND is fine.
    Gate("n1", GateType.AND, tuple("abcdefgh"))


def test_repeated_input_pin_allowed():
    gates = [Gate("n1", GateType.AND, ("a", "a"))]
    circuit = Circuit("ok", ["a"], ["n1"], gates)
    assert circuit.gate("n1").arity == 2


def test_output_can_be_primary_input():
    circuit = Circuit("wire", ["a"], ["a"], [])
    assert circuit.is_output("a")


def test_stats():
    stats = make_simple().stats()
    assert stats["inputs"] == 2
    assert stats["gates"] == 2
    assert stats["gates_AND"] == 1
    assert stats["gates_NOT"] == 1


def test_repr_mentions_counts():
    text = repr(make_simple())
    assert "simple" in text and "gates=2" in text
