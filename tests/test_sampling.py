"""Tests for repro.sampling and its engine/sweep/CLI integration."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AnalysisEngine,
    CrossValidationResult,
    IntervalEstimate,
    ProtestConfig,
    SampledReport,
    SweepResult,
    run_sweep,
)
from repro.backends import get_backend
from repro.circuits.library import build
from repro.errors import EstimationError
from repro.faults.model import fault_universe
from repro.faults.simulator import FaultSimulator
from repro.logicsim.patterns import PatternSet
from repro.sampling import (
    MonteCarloEstimator,
    SamplingPlan,
    clopper_pearson_interval,
    patterns_for_halfwidth,
    stratified_fault_sample,
    wilson_halfwidth,
    wilson_interval,
    z_quantile,
)


SAMPLED = ProtestConfig.preset("sampled")


# -- interval mathematics ---------------------------------------------------------


def test_z_quantile_known_values():
    assert z_quantile(0.95) == pytest.approx(1.959964, abs=1e-5)
    assert z_quantile(0.99) == pytest.approx(2.575829, abs=1e-5)


def test_wilson_interval_textbook_value():
    low, high = wilson_interval(2, 10, 0.95)
    assert low == pytest.approx(0.05668, abs=1e-4)
    assert high == pytest.approx(0.50984, abs=1e-4)


def test_clopper_pearson_textbook_value():
    # Standard reference: k=2, n=10 at 95% -> (0.02521, 0.55610).
    low, high = clopper_pearson_interval(2, 10, 0.95)
    assert low == pytest.approx(0.02521, abs=1e-4)
    assert high == pytest.approx(0.55610, abs=1e-4)


def test_interval_edge_counts():
    for method in (wilson_interval, clopper_pearson_interval):
        low, high = method(0, 50, 0.99)
        assert low == 0.0 and 0.0 < high < 0.25
        low, high = method(50, 50, 0.99)
        assert high == 1.0 and 0.75 < low < 1.0


def test_clopper_pearson_contains_wilson_center():
    # CP is conservative: it always covers the point estimate.
    for k, n in ((0, 20), (3, 20), (10, 20), (20, 20)):
        low, high = clopper_pearson_interval(k, n, 0.99)
        assert low <= k / n <= high


def test_patterns_for_halfwidth_is_the_worst_case_boundary():
    n = patterns_for_halfwidth(0.02, 0.99)
    assert wilson_halfwidth(n // 2, n, 0.99) <= 0.02
    assert wilson_halfwidth((n - 1) // 2, n - 1, 0.99) > 0.02


def test_interval_validation():
    with pytest.raises(EstimationError):
        wilson_interval(5, 0)
    with pytest.raises(EstimationError):
        wilson_interval(11, 10)
    with pytest.raises(EstimationError):
        wilson_interval(1, 10, confidence=1.0)


def test_interval_estimate_round_trip_and_excess():
    iv = IntervalEstimate.from_counts(25, 100, 0.99, "wilson")
    again = IntervalEstimate.from_dict(iv.to_dict())
    assert again == iv
    assert iv.contains(iv.estimate)
    assert iv.excess(iv.low - 0.1) == pytest.approx(0.1)
    assert iv.excess(iv.high + 0.2) == pytest.approx(0.2)
    assert iv.contains(iv.high + 0.05, tolerance=0.1)


# -- the Monte-Carlo estimator -----------------------------------------------------


def test_sampled_intervals_cover_exact_probabilities_on_c17():
    """Every true detection probability lies inside its 99% interval."""
    circuit = build("c17")
    mc = MonteCarloEstimator(
        circuit, plan=SamplingPlan(max_patterns=8192, seed=42)
    )
    sample = mc.sample_detection_probabilities()
    assert sample.converged
    exhaustive = PatternSet.exhaustive(circuit.inputs)
    reference = FaultSimulator(circuit, mc.faults).run(
        exhaustive, block_size=exhaustive.n_patterns, drop_detected=False
    )
    for fault in mc.faults:
        truth = (
            reference.records[fault].detect_count / exhaustive.n_patterns
        )
        assert sample.intervals[fault].contains(truth), str(fault)


def test_sampling_is_seed_deterministic():
    circuit = build("c17")
    plan = SamplingPlan(max_patterns=2048, seed=7)
    first = MonteCarloEstimator(circuit, plan=plan)
    second = MonteCarloEstimator(circuit, plan=plan)
    a = first.sample_detection_probabilities()
    b = second.sample_detection_probabilities()
    assert a.intervals == b.intervals
    assert a.history == b.history
    other = MonteCarloEstimator(
        circuit, plan=SamplingPlan(max_patterns=2048, seed=8)
    ).sample_detection_probabilities()
    assert other.intervals != a.intervals


def test_kernel_and_legacy_sampling_agree():
    circuit = build("c17")
    plan = SamplingPlan(max_patterns=1024, seed=3)
    kernel = MonteCarloEstimator(
        circuit, plan=plan, use_kernel=True
    ).sample_detection_probabilities()
    legacy = MonteCarloEstimator(
        circuit, plan=plan, use_kernel=False
    ).sample_detection_probabilities()
    assert kernel.intervals == legacy.intervals


needs_numpy = pytest.mark.skipif(
    not get_backend("numpy").is_available(), reason="numpy not installed"
)


@needs_numpy
@pytest.mark.parametrize("name", ["c17", "parity8", "alu", "comp8"])
def test_numpy_and_python_backends_sample_seed_identically(name):
    """Same seed, same counts, same intervals, same history — per backend."""
    circuit = build(name)
    plan = SamplingPlan(max_patterns=2048, seed=11)
    python = MonteCarloEstimator(circuit, plan=plan, backend="python")
    numpy = MonteCarloEstimator(circuit, plan=plan, backend="numpy")
    a = python.sample_detection_probabilities()
    b = numpy.sample_detection_probabilities()
    assert a.intervals == b.intervals
    assert a.history == b.history
    assert a.first_detect == b.first_detect
    assert a.coverage == b.coverage
    sa = python.sample_signal_probabilities()
    sb = numpy.sample_signal_probabilities()
    assert sa.intervals == sb.intervals
    assert sa.history == sb.history


@needs_numpy
@pytest.mark.parametrize("name", ["c17", "parity8", "alu", "mult4"])
def test_cross_validation_zero_flags_on_numpy_backend(name):
    """The backend oracle: the numpy engine stays flag-free where the
    python engine does, with byte-identical canonical reports."""
    config = SAMPLED.replace(max_patterns=8192, seed=20260729)
    python_engine = AnalysisEngine(name, config.replace(backend="python"))
    numpy_engine = AnalysisEngine(name, config.replace(backend="numpy"))
    python_validation = python_engine.cross_validate()
    numpy_validation = numpy_engine.cross_validate()
    assert numpy_validation.ok, numpy_validation.to_text()
    assert not numpy_validation.flagged
    assert numpy_validation.strict_agreement == \
        python_validation.strict_agreement
    assert numpy_validation.max_excess == python_validation.max_excess
    # Reports are deterministic across backends (config hash differs by
    # the backend knob, which is the point of recording it).
    py_report = python_engine.sampled_detection_probabilities()
    np_report = numpy_engine.sampled_detection_probabilities()
    assert py_report.detection == np_report.detection
    assert py_report.provenance.backend == "python"
    assert np_report.provenance.backend == "numpy"


def test_stopping_rule_respects_max_patterns():
    circuit = build("c17")
    sample = MonteCarloEstimator(
        circuit,
        plan=SamplingPlan(target_halfwidth=0.005, max_patterns=512, seed=1),
    ).sample_detection_probabilities()
    assert sample.n_patterns == 512
    assert not sample.converged
    assert sample.max_halfwidth > 0.005


def test_stopping_rule_stops_early_when_target_reached():
    circuit = build("c17")
    sample = MonteCarloEstimator(
        circuit,
        plan=SamplingPlan(
            target_halfwidth=0.05, max_patterns=1 << 16, seed=1
        ),
    ).sample_detection_probabilities()
    assert sample.converged
    assert sample.n_patterns < 1 << 14
    assert sample.history[-1][1] <= 0.05


def test_signal_probability_sampling_matches_half_on_inputs():
    circuit = build("maj5")
    sample = MonteCarloEstimator(
        circuit, plan=SamplingPlan(max_patterns=8192, seed=5)
    ).sample_signal_probabilities()
    for name in circuit.inputs:
        assert sample[name].contains(0.5)


def test_stratified_fault_sample_properties():
    circuit = build("alu")
    universe = fault_universe(circuit)
    sub = stratified_fault_sample(universe, 40, seed=9)
    assert len(sub) == 40
    assert len(set(sub)) == 40
    assert set(sub) <= set(universe)
    # Proportional allocation: stems vs branches within one of the total.
    stems = sum(1 for f in sub if f.is_stem)
    expected = 40 * sum(1 for f in universe if f.is_stem) / len(universe)
    assert abs(stems - expected) <= 1.0
    assert stratified_fault_sample(universe, 40, seed=9) == sub
    assert stratified_fault_sample(universe, len(universe) + 5, seed=9) == universe


def test_sampling_plan_validation():
    with pytest.raises(EstimationError):
        SamplingPlan(target_halfwidth=0.0)
    with pytest.raises(EstimationError):
        SamplingPlan(confidence_level=1.5)
    with pytest.raises(EstimationError):
        SamplingPlan(max_patterns=0)
    with pytest.raises(EstimationError):
        SamplingPlan(interval_method="bayes")
    with pytest.raises(EstimationError):
        SamplingPlan(fault_sample=0)


# -- engine integration ------------------------------------------------------------


def test_engine_sampled_stage_caching_contract():
    engine = AnalysisEngine(
        "c17", SAMPLED.replace(max_patterns=1024, seed=2)
    )
    engine.sampled_analyze()
    engine.sampled_detection_probabilities()
    engine.raw_sampled_detection_probabilities()
    engine.cross_validate()
    info = engine.cache_info()
    assert info["sampling_runs"] == 1
    assert info["sampling_hits"] == 3
    assert info["detection_runs"] == 1  # cross_validate's analytic side


def test_engine_sampled_report_contents():
    engine = AnalysisEngine(
        "maj5", SAMPLED.replace(max_patterns=2048, seed=11)
    )
    report = engine.sampled_analyze(confidences=(0.95,), fractions=(1.0,))
    assert report.circuit_name == engine.circuit.name
    assert report.n_faults == len(engine.faults)
    assert report.test_lengths[(1.0, 0.95)] > 0
    assert report.coverage.n_samples == report.n_faults
    # Full-universe grading: the coverage proportion is exact for the
    # sampled patterns — no fault-sampling randomness to bound.
    assert report.coverage.method == "exact"
    assert report.coverage.low == report.coverage.high == report.coverage.estimate
    assert report.convergence[-1][0] == report.n_patterns
    assert report.provenance.config_hash == engine.config.config_hash
    text = report.to_text()
    assert "Monte-Carlo grading of" in text
    assert "[" in text  # intervals rendered


def test_engine_sampled_fault_subsample():
    engine = AnalysisEngine(
        "alu",
        SAMPLED.replace(max_patterns=1024, seed=4, fault_sample=50),
    )
    report = engine.sampled_detection_probabilities()
    assert report.n_faults == 50
    assert report.n_universe == len(engine.faults)
    # Subsampled grading: coverage carries a real fault-sampling interval.
    assert report.coverage.method == "wilson"
    assert report.coverage.low < report.coverage.high
    validation = engine.cross_validate()
    assert validation.n_checked == 50
    # The analytic side graded the subsample only (memoized like every
    # stage) — the full-universe detection cache was never populated.
    info = engine.cache_info()
    assert info["detection_runs"] == 1
    assert not engine._detection_cache
    engine.cross_validate()
    assert engine.cache_info()["detection_hits"] == 1


def test_sampled_report_round_trip():
    engine = AnalysisEngine(
        "c17", SAMPLED.replace(max_patterns=1024, seed=6)
    )
    report = engine.sampled_analyze()
    again = SampledReport.from_json(report.to_json())
    assert again.detection == report.detection
    assert again.coverage == report.coverage
    assert again.test_lengths == report.test_lengths
    assert again.convergence == report.convergence
    assert again.to_canonical_json() == report.to_canonical_json()


def test_cross_validation_tree_exact_circuit_is_inside():
    """On an XOR tree the analytic pipeline has no reconvergence error,
    so its estimates sit inside the 99% intervals up to a
    quarter-halfwidth seed margin (the CI smoke oracle)."""
    engine = AnalysisEngine(
        "parity8", SAMPLED.replace(max_patterns=8192, seed=20260729)
    )
    validation = engine.cross_validate(tolerance=0.005)
    assert validation.ok
    assert validation.strict_agreement > 0.9
    assert validation.mean_excess < 0.001


def test_cross_validation_flags_known_estimator_error():
    """With zero tolerance the sampler exposes the paper's estimator
    error (Table 1 reports up to 0.48); the default tolerance absorbs
    exactly that envelope."""
    engine = AnalysisEngine(
        "alu", SAMPLED.replace(max_patterns=8192, seed=20260729)
    )
    strict = engine.cross_validate(tolerance=0.0)
    assert not strict.ok
    assert strict.strict_agreement < 1.0
    assert strict.max_excess > 0.02
    assert 0.0 < strict.mean_excess <= strict.max_excess
    default = engine.cross_validate()
    assert default.ok
    # Same distributions either way: tolerance only moves the flag line.
    assert default.mean_excess == strict.mean_excess
    with pytest.raises(EstimationError):
        engine.cross_validate(tolerance=-0.1)


@pytest.mark.parametrize(
    "name",
    ["c17", "maj5", "dec4", "ladder8", "mux16", "parity8", "parity32",
     "alu", "mult4", "comp8", "sn7485"],
)
def test_cross_validation_library_default_tolerance(name):
    """The permanent oracle: zero flags at the documented tolerance,
    converged at the 0.02 halfwidth target, on the library circuits."""
    engine = AnalysisEngine(
        name, SAMPLED.replace(max_patterns=8192, seed=20260729)
    )
    validation = engine.cross_validate()
    assert validation.ok, validation.to_text()
    # Distribution-level oracle (catches mid-range backend breakage the
    # per-fault flag is structurally blind to).
    assert validation.mean_excess <= 0.25
    report = engine.sampled_detection_probabilities()
    assert report.converged
    assert report.max_halfwidth <= 0.02


def test_cross_validation_round_trip():
    engine = AnalysisEngine(
        "c17", SAMPLED.replace(max_patterns=1024, seed=1)
    )
    validation = engine.cross_validate(tolerance=0.0)
    again = CrossValidationResult.from_json(validation.to_json())
    assert again.flagged == validation.flagged
    assert again.strict_agreement == validation.strict_agreement
    assert "cross-validation of c17" in validation.to_text()


def test_sampled_signal_probabilities_cached():
    engine = AnalysisEngine(
        "c17", SAMPLED.replace(max_patterns=1024, seed=2)
    )
    first = engine.sampled_signal_probabilities()
    second = engine.sampled_signal_probabilities()
    assert first == second
    assert set(first) == set(engine.circuit.nodes)
    info = engine.cache_info()
    assert info["signal_sampling_runs"] == 1
    assert info["signal_sampling_hits"] == 1


# -- sweep integration -------------------------------------------------------------


def test_run_sweep_accepts_sampled_configs():
    config = SAMPLED.replace(max_patterns=1024, seed=3, name="mc")
    result = run_sweep(
        ["c17", "maj5"], [config], workers=1,
        confidences=(0.95,), fractions=(1.0,),
    )
    assert all(run.ok for run in result.runs)
    for run in result.runs:
        assert isinstance(run.report, SampledReport)
        assert run.report.test_lengths[(1.0, 0.95)] > 0
    table = result.to_table()
    assert "mc" in table
    again = SweepResult.from_json(result.to_json())
    assert isinstance(again.runs[0].report, SampledReport)
    assert again.runs[0].report.detection == result.runs[0].report.detection


def test_run_sweep_mixed_methods_round_trip():
    sampled = SAMPLED.replace(max_patterns=1024, seed=3, name="mc")
    result = run_sweep(
        ["c17"], ["paper", sampled], workers=1,
        confidences=(0.95,), fractions=(1.0,),
    )
    kinds = [run.report.to_dict()["kind"] for run in result.runs]
    assert kinds == ["testability_report", "sampled_report"]
    again = SweepResult.from_json(result.to_json())
    assert [type(run.report).__name__ for run in again.runs] == [
        "TestabilityReport", "SampledReport",
    ]


def test_run_sweep_seed_determinism_across_executors():
    """Satellite: process-pool and inline sweeps serialize identically
    (volatile wall-clock bookkeeping aside) for the same config seed."""
    config = SAMPLED.replace(max_patterns=1024, seed=99, name="mc")
    kwargs = dict(
        configs=[config], workers=2, confidences=(0.95,), fractions=(1.0,)
    )
    via_process = run_sweep(["c17", "maj5"], executor="process", **kwargs)
    via_inline = run_sweep(["c17", "maj5"], executor="inline", **kwargs)
    assert (
        via_process.to_canonical_json() == via_inline.to_canonical_json()
    )


# -- CLI ---------------------------------------------------------------------------


def test_cli_sample_json(capsys):
    from repro.cli import main

    assert main([
        "sample", "c17", "--json", "--max-patterns", "1024",
        "--target-halfwidth", "0.05", "--seed", "7",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "sampled_report"
    assert payload["n_patterns"] <= 1024
    assert payload["faults"]
    assert {"estimate", "low", "high"} <= set(payload["faults"][0])


def test_cli_sample_cross_validate_exit_codes(capsys):
    from repro.cli import main

    # Default tolerance: no flags, exit 0.
    assert main([
        "sample", "parity8", "--max-patterns", "8192",
        "--seed", "20260729", "--cross-validate",
    ]) == 0
    out = capsys.readouterr().out
    assert "cross-validation of parity8" in out


def test_cli_sweep_executor_flag(capsys):
    from repro.cli import main

    assert main([
        "sweep", "c17", "maj5", "--executor", "inline",
        "-e", "0.95", "-d", "1.0",
    ]) == 0
    assert "sweep results" in capsys.readouterr().out


def test_cli_sweep_method_sampled(capsys):
    from repro.cli import main

    assert main([
        "sweep", "c17", "--executor", "inline", "--method", "sampled",
        "--json", "-e", "0.95", "-d", "1.0",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"][0]["report"]["kind"] == "sampled_report"
