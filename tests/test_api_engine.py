"""Tests for repro.api.engine: stage memoization and result provenance."""

from __future__ import annotations

import pytest

from repro.api import AnalysisEngine, ProtestConfig
from repro.circuits import c17
from repro.errors import EstimationError
from repro.faults import Fault, fault_universe


@pytest.fixture
def engine():
    return AnalysisEngine(c17(), ProtestConfig.preset("paper"))


def _count_calls(engine):
    """Wrap the expensive stage entry points with call counters."""
    counts = {"signal": 0, "observability": 0, "detection": 0}
    signal_run = engine.detector.signal_estimator.run
    obs_run = engine.detector.observability_analyzer.run
    det_run = engine.detector.run_with

    def counted_signal(*args, **kwargs):
        counts["signal"] += 1
        return signal_run(*args, **kwargs)

    def counted_obs(*args, **kwargs):
        counts["observability"] += 1
        return obs_run(*args, **kwargs)

    def counted_det(*args, **kwargs):
        counts["detection"] += 1
        return det_run(*args, **kwargs)

    engine.detector.signal_estimator.run = counted_signal
    engine.detector.observability_analyzer.run = counted_obs
    engine.detector.run_with = counted_det
    return counts


def test_analyze_chain_estimates_each_stage_once(engine):
    """analyze -> test_length -> expected_coverage: one estimation total."""
    counts = _count_calls(engine)
    engine.analyze()
    engine.test_length(0.98, 0.98)
    engine.test_length(0.95, 1.0)
    engine.expected_coverage(500)
    assert counts == {"signal": 1, "observability": 1, "detection": 1}
    info = engine.cache_info()
    assert info["detection_runs"] == 1
    assert info["detection_hits"] == 3


def test_equivalent_prob_specs_share_one_cache_entry(engine):
    """None, scalar 0.5 and an explicit map resolve to the same key."""
    counts = _count_calls(engine)
    engine.detection_probabilities(None)
    engine.detection_probabilities(0.5)
    engine.detection_probabilities({name: 0.5 for name in c17().inputs})
    assert counts["signal"] == 1
    assert engine.cache_info()["cached_input_tuples"] == 1


def test_different_input_tuple_recomputes(engine):
    counts = _count_calls(engine)
    engine.detection_probabilities(0.5)
    engine.detection_probabilities(0.75)
    assert counts == {"signal": 2, "observability": 2, "detection": 2}
    assert engine.cache_info()["cached_input_tuples"] == 2


def test_fault_subset_reuses_stages(engine):
    counts = _count_calls(engine)
    engine.detection_probabilities()
    subset = [Fault("G22", None, 0), Fault("G22", None, 1)]
    result = engine.detection_probabilities(faults=subset)
    assert set(result.probabilities) == set(subset)
    assert counts["signal"] == 1
    assert counts["observability"] == 1


def test_clear_cache_forces_recomputation(engine):
    counts = _count_calls(engine)
    engine.detection_probabilities()
    engine.clear_cache()
    engine.detection_probabilities()
    assert counts["detection"] == 2


def test_engine_accepts_circuit_and_preset_names():
    engine = AnalysisEngine("c17", "fast")
    assert engine.circuit.name == "c17"
    assert engine.config.name == "fast"
    report = engine.analyze(confidences=(0.95,), fractions=(1.0,))
    assert report.provenance.config_name == "fast"


def test_results_carry_provenance(engine):
    report = engine.analyze()
    assert report.provenance.circuit == "c17"
    assert report.provenance.config_hash == engine.config.config_hash
    assert "detection" in report.provenance.timings
    # A second analyze is served from cache and says so.
    again = engine.analyze()
    assert "detection" in again.provenance.cached


def test_test_length_matches_facade_values(engine):
    result = engine.test_length(0.95)
    harder = engine.test_length(0.999)
    assert result.reachable and harder.reachable
    assert harder.n_patterns > result.n_patterns
    assert result.n_faults == len(fault_universe(c17()))


def test_test_length_validates_arguments(engine):
    with pytest.raises(EstimationError):
        engine.test_length(confidence=1.5)
    with pytest.raises(EstimationError):
        engine.test_length(fraction=0.0)


def test_test_length_none_for_undetectable():
    from repro.circuit import CircuitBuilder

    b = CircuitBuilder("redundant")
    a = b.input("a")
    one = b.const1("one")
    b.output(b.and_("y", a, one))
    engine = AnalysisEngine(b.build())
    result = engine.test_length(0.95, 1.0)
    assert result.n_patterns is None
    assert not result.reachable


def test_fault_simulate_result(engine):
    patterns = engine.generate_patterns(256, seed=3)
    result = engine.fault_simulate(patterns)
    assert result.n_patterns == 256
    assert 0.9 < result.coverage <= 1.0
    assert result.curve[256] == result.coverage
    assert result.raw.coverage() == result.coverage
    # Predicted and simulated coverage agree, as in the facade test.
    assert abs(engine.expected_coverage(256) - result.coverage) < 0.1


def test_optimize_uses_config_seed():
    engine_a = AnalysisEngine(c17(), ProtestConfig(seed=1))
    engine_b = AnalysisEngine(c17(), ProtestConfig(seed=1))
    result_a = engine_a.optimize(n_ref=256, max_rounds=2)
    result_b = engine_b.optimize(n_ref=256, max_rounds=2)
    assert result_a.probabilities == result_b.probabilities
