"""End-to-end integration tests: the paper's workflow on real circuits."""

from __future__ import annotations

import pytest

from repro.circuits import comp24, divider, sn74181
from repro.detection import DetectionProbabilityEstimator, exact_detection_probabilities
from repro.faults import FaultSimulator, fault_universe
from repro.logicsim import PatternSet
from repro.protest import Protest
from repro.report import accuracy_stats
from repro.testlen import required_test_length


def test_alu_full_pipeline_table1_and_table2():
    """Estimate -> correlate vs exact -> test length -> validate by fsim."""
    circuit = sn74181()
    tool = Protest(circuit)
    faults = tool.faults
    estimated = tool.detection_probabilities()
    exact = exact_detection_probabilities(circuit, faults, max_inputs=14)
    stats = accuracy_stats(
        [estimated[f] for f in faults], [exact[f] for f in faults]
    )
    # Table 1 shape: correlation comfortably above 0.9.
    assert stats.correlation > 0.9

    # Table 2 shape: a couple hundred patterns at d = e = 0.98.
    n = tool.test_length(confidence=0.98, fraction=0.98)
    assert 50 <= n <= 2000

    # Validation by fault simulation (the paper reports 99.9..100 %).
    patterns = tool.generate_patterns(n, seed=7)
    result = tool.fault_simulate(patterns)
    assert result.coverage() >= 0.97


def test_comp_random_pattern_resistance_table3():
    """COMP at p = 0.5 needs astronomically many patterns (Table 3)."""
    circuit = comp24()
    detection = DetectionProbabilityEstimator(circuit).run()
    values = list(detection.values())
    n_full = required_test_length(values, 0.95)
    assert n_full > 10**7  # paper: 2.9 * 10^8
    # d=0.98 helps but stays enormous.
    n_frac = required_test_length(values, 0.95, fraction=0.98)
    assert n_frac > 10**6


def test_comp_optimization_reduces_length_table5():
    """Optimized probabilities shrink COMP's test by orders of magnitude."""
    circuit = comp24()
    tool = Protest(circuit)
    baseline = tool.test_length(confidence=0.95, fraction=0.98)
    result = tool.optimize(n_ref=8192, max_rounds=6)
    optimized = tool.test_length(
        confidence=0.95, fraction=0.98, input_probs=result.probabilities
    )
    assert optimized < baseline / 100  # paper: ~5 orders of magnitude


def test_div_coverage_growth_table6_shape():
    """Uniform random patterns stall on DIV; weighted ones do better."""
    circuit = divider(10, 10, name="DIV10")  # scaled for test speed
    faults = fault_universe(circuit)
    simulator = FaultSimulator(circuit, faults)
    uniform = simulator.run(
        PatternSet.random(circuit.inputs, 1000, seed=5),
        block_size=500,
        drop_detected=True,
    )
    # Divisor high bits biased low, dividend high bits biased high:
    # quotient bits get exercised (the §6 story in miniature).
    weights = {name: 0.5 for name in circuit.inputs}
    for i in range(5, 10):
        weights[f"V{i}"] = 0.125
        weights[f"D{i}"] = 0.875
    weighted = simulator.run(
        PatternSet.random(circuit.inputs, 1000, weights, seed=5),
        block_size=500,
        drop_detected=True,
    )
    assert weighted.coverage() > uniform.coverage() + 0.02


def test_estimator_predicts_simulated_coverage():
    """expected_coverage from estimates tracks the simulated curve."""
    circuit = sn74181()
    tool = Protest(circuit)
    patterns = tool.generate_patterns(512, seed=11)
    simulated = tool.fault_simulate(patterns)
    for n in (32, 128, 512):
        predicted = tool.expected_coverage(n)
        measured = simulated.coverage_at(n)
        assert abs(predicted - measured) < 0.08, n


def test_weighted_pattern_generation_matches_optimized_tuple():
    """§8 flow: optimized tuple -> hardware weights -> observed stream."""
    from repro.bist import WeightedGenerator

    circuit = comp24(width=8, name="COMP8")
    tool = Protest(circuit)
    result = tool.optimize(n_ref=2048, max_rounds=4)
    generator = WeightedGenerator(
        circuit.inputs, result.probabilities, grid=16
    )
    stream = generator.patterns(4000, seed=13)
    observed = stream.observed_probabilities()
    realized = generator.realized_probabilities()
    for name in circuit.inputs:
        assert observed[name] == pytest.approx(realized[name], abs=0.05)
