"""Tests for the parametric generators and the circuit registry."""

from __future__ import annotations

import pytest

from repro.circuits import (
    REGISTRY,
    and_or_ladder,
    build,
    c17,
    decoder,
    majority,
    mux_tree,
    names,
    parity_tree,
    random_dag,
)
from repro.errors import ReproError
from repro.logicsim import PatternSet, simulate
from tests.conftest import bits_to_int


def test_c17_structure():
    circuit = c17()
    assert circuit.n_gates == 6
    assert circuit.outputs == ("G22", "G23")


def test_parity_tree_function():
    circuit = parity_tree(7)
    ps = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, ps)
    out = circuit.outputs[0]
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        parity = sum(vec.values()) % 2
        assert (values[out] >> j) & 1 == parity


def test_parity_tree_rejects_width_one():
    with pytest.raises(ValueError):
        parity_tree(1)


def test_decoder_one_hot():
    circuit = decoder(3)
    ps = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, ps)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        sel = bits_to_int(vec, ["S0", "S1", "S2"])
        hot = [
            row for row in range(8) if (values[f"O{row}"] >> j) & 1
        ]
        assert hot == [sel]


def test_mux_tree_selects():
    circuit = mux_tree(2)
    ps = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, ps)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        sel = bits_to_int(vec, ["S0", "S1"])
        assert (values["Y"] >> j) & 1 == vec[f"D{sel}"]


def test_majority_function():
    circuit = majority(5)
    ps = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, ps)
    out = circuit.outputs[0]
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        assert (values[out] >> j) & 1 == (1 if sum(vec.values()) >= 3 else 0)


def test_majority_validation():
    with pytest.raises(ValueError):
        majority(4)


def test_and_or_ladder_reconverges():
    from repro.circuit import Topology

    circuit = and_or_ladder(6)
    topo = Topology(circuit)
    assert topo.fanout_degree("X") >= 2
    assert topo.reconvergent_gates() != []


def test_random_dag_deterministic():
    a = random_dag(4, 20, seed=5)
    b = random_dag(4, 20, seed=5)
    assert a.nodes == b.nodes
    assert {g.name: g.inputs for g in a.gates.values()} == {
        g.name: g.inputs for g in b.gates.values()
    }


def test_random_dag_all_logic_observable():
    from repro.circuit import Topology, validate

    circuit = random_dag(5, 40, seed=11)
    assert not any(i.code == "dangling-gate" for i in validate(circuit))


def test_random_dag_with_luts():
    circuit = random_dag(4, 30, seed=3, lut_fraction=0.4)
    ps = PatternSet.exhaustive(circuit.inputs)
    simulate(circuit, ps)  # must evaluate without error


def test_registry_builds_everything():
    for name in names():
        circuit = build(name)
        assert circuit.n_gates > 0, name


def test_registry_unknown_name():
    with pytest.raises(ReproError, match="unknown circuit"):
        build("nonesuch")


def test_registry_paper_circuits_present():
    assert {"alu", "mult", "div", "comp"} <= set(REGISTRY)
