"""Structural-Verilog reader: the gate-level benchmark subset."""

from __future__ import annotations

import pytest

from repro.circuit.io import load_verilog, parse_verilog, read_verilog
from repro.circuit.types import GateType
from repro.errors import ParseError
from repro.logicsim import PatternSet, simulate

C17_V = """
// ISCAS-85 c17 in its Verilog translation shape.
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g1 (N10, N1, N3);
  nand (N11, N3, N6);            /* instance names are optional */
  nand g3 (N16, N2, N11), g4 (N19, N11, N7);
  nand g5 (N22, N10, N16);
  nand g6 (N23, N16, N19);
endmodule
"""


def test_parse_c17_shape():
    circuit = parse_verilog(C17_V)
    assert circuit.name == "c17"
    assert circuit.inputs == ("N1", "N2", "N3", "N6", "N7")
    assert circuit.outputs == ("N22", "N23")
    assert circuit.n_gates == 6
    assert all(g.gtype is GateType.NAND for g in circuit.gates.values())


def test_matches_bench_c17_functionally():
    from repro.circuits.generators import c17

    verilog = parse_verilog(C17_V)
    reference = c17()
    # Different node alphabets (Nxx vs Gxx) but identical positional
    # structure: exhaustive patterns assign bit i of the word to input i,
    # so comparing outputs by position compares the functions.
    got = simulate(verilog, PatternSet.exhaustive(verilog.inputs))
    want = simulate(reference, PatternSet.exhaustive(reference.inputs))
    for mine, theirs in zip(verilog.outputs, reference.outputs):
        assert got[mine] == want[theirs]


def test_explicit_name_overrides_module_header():
    assert parse_verilog(C17_V, name="renamed").name == "renamed"


def test_vector_declarations_expand():
    circuit = parse_verilog(
        "module vec (a, y);\n"
        "input [1:0] a;\noutput [0:1] y;\n"
        "not (y[0], a[1]);\nbuf (y[1], a[0]);\nendmodule\n"
    )
    assert circuit.inputs == ("a[1]", "a[0]")
    assert circuit.outputs == ("y[0]", "y[1]")


def test_assign_forms():
    circuit = parse_verilog(
        "module m (a, w, x, y, z);\n"
        "input a;\noutput w, x, y, z;\n"
        "assign w = a;\nassign x = ~a;\n"
        "assign y = 1'b1;\nassign z = 1'b0;\nendmodule\n"
    )
    assert circuit.gate("w").gtype is GateType.BUF
    assert circuit.gate("x").gtype is GateType.NOT
    assert circuit.gate("y").gtype is GateType.CONST1
    assert circuit.gate("z").gtype is GateType.CONST0


def test_dff_cut_like_bench():
    circuit, info = read_verilog(
        "module seq (d, q);\n"
        "input d;\noutput q;\nwire n;\n"
        "and (n, d, q1);\n"
        "dff r1 (q1, n);\n"
        "buf (q, q1);\nendmodule\n"
    )
    assert info.flipflops == (("q1", "n"),)
    assert "q1" in circuit.inputs
    assert "n" in circuit.outputs


def test_identifiers_are_case_sensitive():
    # Per the standard: 'A' and 'a' are distinct nets, so referencing
    # the wrong case is an undeclared-source error, not a silent merge.
    with pytest.raises(ParseError, match="'A'"):
        parse_verilog(
            "module m (a, y);\ninput a;\noutput y;\n"
            "not (y, A);\nendmodule\n"
        )


def test_double_driven_net_rejected():
    with pytest.raises(ParseError, match="driven twice"):
        parse_verilog(
            "module m (a, y);\ninput a;\noutput y;\n"
            "not (y, a);\nbuf (y, a);\nendmodule\n"
        )


def test_missing_endmodule_rejected():
    with pytest.raises(ParseError, match="endmodule"):
        parse_verilog("module m (a, y);\ninput a;\noutput y;\nbuf (y, a);\n")


def test_statement_after_endmodule_rejected():
    with pytest.raises(ParseError, match="after endmodule"):
        parse_verilog(
            "module m (a, y);\ninput a;\noutput y;\nbuf (y, a);\n"
            "endmodule\nwire z;\n"
        )


def test_missing_module_header_rejected():
    with pytest.raises(ParseError, match="module header"):
        parse_verilog("input a;\noutput y;\nbuf (y, a);\nendmodule\n")


def test_errors_carry_line_numbers():
    with pytest.raises(ParseError, match="line 4"):
        parse_verilog(
            "module m (a, y);\ninput a;\noutput y;\n"
            "frobnicate (y, a);\nendmodule\n"
        )


def test_block_comment_preserves_line_numbers():
    with pytest.raises(ParseError, match="line 6"):
        parse_verilog(
            "module m (a, y);\n/* a\nblock\ncomment */\ninput a;\n"
            "garbage here\n"
        )


def test_load_verilog_uses_module_name(tmp_path):
    path = tmp_path / "anything.v"
    path.write_text(
        "module actual (a, y);\ninput a;\noutput y;\n"
        "not (y, a);\nendmodule\n"
    )
    assert load_verilog(path).name == "actual"
    assert load_verilog(path, name="forced").name == "forced"
