"""Functional verification of SN7485 and the COMP cascade."""

from __future__ import annotations

import random

import pytest

from repro.circuits import comp24, comp_reference, sn7485, sn7485_reference
from repro.logicsim import PatternSet, simulate
from tests.conftest import bits_to_int


def test_sn7485_exhaustive():
    circuit = sn7485()
    ps = PatternSet.exhaustive(circuit.inputs)  # 2^11 patterns
    values = simulate(circuit, ps)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        a = bits_to_int(vec, [f"A{i}" for i in range(4)])
        b = bits_to_int(vec, [f"B{i}" for i in range(4)])
        expected = sn7485_reference(
            a, b, vec["IALB"], vec["IAEB"], vec["IAGB"]
        )
        for out, want in expected.items():
            assert (values[out] >> j) & 1 == want, (a, b, vec, out)


def test_sn7485_reference_truth_table_normal_states():
    # Datasheet rows for A=B with the three canonical cascade states.
    assert sn7485_reference(5, 5, 0, 1, 0) == {
        "OALB": 0, "OAEB": 1, "OAGB": 0,
    }
    assert sn7485_reference(5, 5, 0, 0, 1) == {
        "OALB": 0, "OAEB": 0, "OAGB": 1,
    }
    assert sn7485_reference(5, 5, 1, 0, 0) == {
        "OALB": 1, "OAEB": 0, "OAGB": 0,
    }


def test_sn7485_reference_degenerate_states():
    # The datasheet's "not normal operation" rows.
    assert sn7485_reference(7, 7, 0, 0, 0) == {
        "OALB": 1, "OAEB": 0, "OAGB": 1,
    }
    assert sn7485_reference(7, 7, 1, 0, 1) == {
        "OALB": 0, "OAEB": 0, "OAGB": 0,
    }


def test_sn7485_word_comparison_dominates_cascade():
    assert sn7485_reference(9, 3, 1, 1, 1)["OAGB"] == 1
    assert sn7485_reference(2, 3, 0, 0, 0)["OALB"] == 1


@pytest.mark.parametrize("width", [8, 12, 24])
def test_comp_cascade_random(width):
    circuit = comp24(width=width, name=f"COMP{width}")
    assert len(circuit.inputs) == 2 * width + 3
    rng = random.Random(width)
    rows = []
    for _ in range(600):
        a = rng.getrandbits(width)
        # Bias towards equal / near-equal words to exercise the cascade.
        roll = rng.random()
        if roll < 0.4:
            b = a
        elif roll < 0.7:
            b = a ^ (1 << rng.randrange(width))
        else:
            b = rng.getrandbits(width)
        vec = {f"A{i}": (a >> i) & 1 for i in range(width)}
        vec.update({f"B{i}": (b >> i) & 1 for i in range(width)})
        vec.update(
            TI1=rng.getrandbits(1), TI2=rng.getrandbits(1),
            TI3=rng.getrandbits(1),
        )
        rows.append((a, b, vec))
    ps = PatternSet.from_vectors(circuit.inputs, [r[2] for r in rows])
    values = simulate(circuit, ps)
    for j, (a, b, vec) in enumerate(rows):
        expected = comp_reference(
            a, b, vec["TI1"], vec["TI2"], vec["TI3"], width
        )
        for out, want in expected.items():
            assert (values[out] >> j) & 1 == want, (a, b, vec)


def test_comp_tree_style_canonical_cascade_states():
    circuit = comp24(width=8, style="tree", name="COMPT8")
    rng = random.Random(99)
    rows = []
    for _ in range(400):
        a = rng.getrandbits(8)
        b = a if rng.random() < 0.5 else rng.getrandbits(8)
        # Canonical cascade state: exactly "equal so far".
        vec = {f"A{i}": (a >> i) & 1 for i in range(8)}
        vec.update({f"B{i}": (b >> i) & 1 for i in range(8)})
        vec.update(TI1=0, TI2=1, TI3=0)
        rows.append((a, b, vec))
    ps = PatternSet.from_vectors(circuit.inputs, [r[2] for r in rows])
    values = simulate(circuit, ps)
    for j, (a, b, _vec) in enumerate(rows):
        gt = (values["OAGB"] >> j) & 1
        lt = (values["OALB"] >> j) & 1
        eq = (values["OAEB"] >> j) & 1
        assert (gt, eq, lt) == (
            int(a > b), int(a == b), int(a < b)
        )


def test_comp_input_set_matches_table4():
    circuit = comp24()
    names = set(circuit.inputs)
    expected = (
        {f"A{i}" for i in range(24)}
        | {f"B{i}" for i in range(24)}
        | {"TI1", "TI2", "TI3"}
    )
    assert names == expected  # the 51 inputs of the paper's Table 4


def test_comp_rejects_bad_width_or_style():
    with pytest.raises(ValueError):
        comp24(width=10)
    with pytest.raises(ValueError):
        comp24(style="ring")
