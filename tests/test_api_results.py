"""Tests for repro.api.results: serialization round-trips."""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AnalysisEngine,
    DetectionResult,
    Provenance,
    SignalProbResult,
    SimulationResult,
    TestabilityReport,
    TestLengthResult,
)
from repro.circuits import c17


@pytest.fixture(scope="module")
def engine():
    return AnalysisEngine(c17())


def test_signal_result_round_trip(engine):
    result = engine.signal_probabilities()
    again = SignalProbResult.from_json(result.to_json())
    assert again.probabilities == result.probabilities
    assert again.input_probs == result.input_probs
    assert again.conditioned_gates == result.conditioned_gates
    assert again.provenance.circuit == "c17"
    assert again["G10"] == result["G10"]


def test_detection_result_round_trip(engine):
    result = engine.detection_probabilities()
    again = DetectionResult.from_json(result.to_json())
    assert again.probabilities == result.probabilities
    assert again.hardest(3) == result.hardest(3)
    assert again.min_detection() == result.min_detection()
    assert again.median_detection() == result.median_detection()


def test_test_length_round_trip_preserves_none(engine):
    result = engine.test_length(0.98, 0.98)
    again = TestLengthResult.from_json(result.to_json())
    assert again.n_patterns == result.n_patterns
    unreachable = TestLengthResult(
        provenance=result.provenance, confidence=0.95, fraction=1.0,
        n_patterns=None, n_faults=10,
    )
    payload = json.loads(unreachable.to_json())
    assert payload["n_patterns"] is None
    assert not TestLengthResult.from_dict(payload).reachable


def test_simulation_result_round_trip(engine):
    patterns = engine.generate_patterns(128, seed=5)
    result = engine.fault_simulate(patterns)
    again = SimulationResult.from_json(result.to_json())
    assert again.coverage == result.coverage
    assert again.curve == result.curve
    assert again.raw is None  # the raw simulator result is not serialized


def test_report_round_trip(engine):
    report = engine.analyze()
    again = TestabilityReport.from_json(report.to_json())
    assert again.test_lengths == report.test_lengths
    assert again.hardest_faults == report.hardest_faults
    assert again.n_faults == report.n_faults
    assert again.provenance.config_hash == report.provenance.config_hash
    assert again.to_text() == report.to_text()


def test_report_without_provenance_round_trips():
    report = TestabilityReport(
        circuit_name="tiny", n_faults=0, min_detection=0.0,
        median_detection=0.0, hardest_faults=[], test_lengths={},
    )
    again = TestabilityReport.from_json(report.to_json())
    assert again.provenance is None
    assert again.circuit_name == "tiny"


def test_provenance_round_trip():
    provenance = Provenance(
        circuit="alu", config_hash="abc", config_name="paper",
        timings={"signal": 0.5}, cached=("signal",),
    )
    again = Provenance.from_dict(provenance.to_dict())
    assert again == provenance
