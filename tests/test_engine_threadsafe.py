"""AnalysisEngine thread safety: each stage runs exactly once under contention."""

from __future__ import annotations

import threading

from repro.api.config import ProtestConfig
from repro.api.engine import AnalysisEngine
from repro.api.results import canonical_payload
from repro.circuits.library import build

N_THREADS = 8


def _hammer(n_threads, target):
    results = [None] * n_threads
    errors = []

    def run(i):
        try:
            results[i] = target()
        except Exception as error:  # noqa: BLE001 - surfaced via assert
            errors.append(error)

    threads = [threading.Thread(target=run, args=(i,))
               for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return results


def test_concurrent_analyze_runs_each_stage_once():
    engine = AnalysisEngine(build("c432"), "fast")
    reports = _hammer(N_THREADS, engine.analyze)
    info = engine.cache_info()
    assert info["signal_runs"] == 1
    assert info["observability_runs"] == 1
    assert info["detection_runs"] == 1
    # Every other caller took a hit; counters add up exactly.
    assert info["detection_runs"] + info["detection_hits"] == N_THREADS
    # And everyone saw the same numbers.
    payloads = [canonical_payload(r.to_dict()) for r in reports]
    assert all(p == payloads[0] for p in payloads)


def test_concurrent_sampling_simulates_once():
    config = ProtestConfig(
        method="sampled", max_patterns=512, target_halfwidth=0.05,
        fault_sample=32, name="ts-test",
    )
    engine = AnalysisEngine(build("c17"), config)
    reports = _hammer(N_THREADS, engine.sampled_detection_probabilities)
    info = engine.cache_info()
    assert info["sampling_runs"] == 1
    assert info["sampling_runs"] + info["sampling_hits"] == N_THREADS
    payloads = [canonical_payload(r.to_dict()) for r in reports]
    assert all(p == payloads[0] for p in payloads)


def test_concurrent_mixed_stages_consistent_counters():
    engine = AnalysisEngine(build("c17"), "fast")

    def mixed():
        engine.signal_probabilities()
        engine.detection_probabilities()
        return engine.test_length(0.95, 1.0)

    _hammer(N_THREADS, mixed)
    info = engine.cache_info()
    assert info["signal_runs"] == 1
    assert info["detection_runs"] == 1
    # Per thread: one direct signal lookup and two detection lookups
    # (detection_probabilities and test_length); the single detection
    # *miss* performs one extra internal signal lookup.
    assert info["signal_runs"] + info["signal_hits"] == N_THREADS + 1
    assert info["detection_runs"] + info["detection_hits"] == 2 * N_THREADS
