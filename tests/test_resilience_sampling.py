"""Sampling-layer resilience: checkpoint/resume and backend degradation.

The load-bearing property is **bit-identity**: a Monte-Carlo run resumed
from a persisted :class:`SamplingState`, or degraded mid-run from a
failing backend to the python engine, must produce exactly the sample an
undisturbed run produces — same intervals, same history, same
first-detection indices.  Anything weaker would make the service's
crash-retry and restart paths statistically dishonest.
"""

from __future__ import annotations

import json

import pytest

from repro.backends import PythonBackend, register_backend
from repro.circuits.library import build
from repro.errors import BackendFailure, ResilienceError
from repro.resilience import ChaosPlan, inject
from repro.sampling.montecarlo import (
    MonteCarloEstimator,
    SamplingPlan,
    SamplingState,
)

#: Several blocks, never converges (c17 needs far more than 4096
#: patterns for a 0.01 Wilson halfwidth at 99%), and fast.
PLAN = SamplingPlan(
    target_halfwidth=0.01, max_patterns=4096, block_size=512, seed=3
)


def run_with_states(circuit="c17", plan=PLAN, **kwargs):
    """One full run plus every per-block SamplingState it emitted."""
    states = []
    estimator = MonteCarloEstimator(build(circuit), plan=plan, **kwargs)
    sample = estimator.sample_detection_probabilities(
        state_hook=states.append
    )
    return estimator, sample, states


def assert_bit_identical(a, b):
    assert a.n_patterns == b.n_patterns
    assert a.converged == b.converged
    assert a.max_halfwidth == b.max_halfwidth
    assert a.history == b.history
    assert a.intervals == b.intervals
    assert a.coverage == b.coverage
    assert a.first_detect == b.first_detect


# ---------------------------------------------------------------------------
# SamplingState serialization
# ---------------------------------------------------------------------------

def test_state_payload_roundtrip_through_json():
    _, _, states = run_with_states()
    state = states[2]
    payload = json.loads(json.dumps(state.to_payload()))
    restored = SamplingState.from_payload(payload)
    assert restored.seed == state.seed
    assert restored.n_patterns == state.n_patterns
    assert restored.counts == state.counts
    assert restored.first == state.first
    assert restored.history == state.history
    assert restored.blocks_done == 3


def test_state_rejects_malformed_payloads():
    _, _, states = run_with_states()
    good = states[0].to_payload()
    with pytest.raises(ResilienceError):
        SamplingState.from_payload({**good, "version": 2})
    for key in ("seed", "n_patterns", "counts", "first", "history"):
        bad = dict(good)
        del bad[key]
        with pytest.raises(ResilienceError):
            SamplingState.from_payload(bad)
    with pytest.raises(ResilienceError):
        SamplingState.from_payload({**good, "counts": "not-a-mapping"})


# ---------------------------------------------------------------------------
# Checkpoint/resume bit-identity
# ---------------------------------------------------------------------------

def test_resume_is_bit_identical_from_every_block():
    _, full, states = run_with_states()
    assert len(states) == 8 and not full.converged
    for state in states[:-1]:
        estimator = MonteCarloEstimator(build("c17"), plan=PLAN)
        resumed = estimator.sample_detection_probabilities(resume=state)
        assert_bit_identical(resumed, full)


def test_resume_after_journal_roundtrip():
    # The exact path the service takes: state -> JSON journal -> state.
    _, full, states = run_with_states()
    payload = json.loads(json.dumps(states[4].to_payload()))
    estimator = MonteCarloEstimator(build("c17"), plan=PLAN)
    resumed = estimator.sample_detection_probabilities(
        resume=SamplingState.from_payload(payload)
    )
    assert_bit_identical(resumed, full)


def test_resume_from_finished_state_is_a_noop():
    _, full, states = run_with_states()
    estimator = MonteCarloEstimator(build("c17"), plan=PLAN)
    blocks = []
    resumed = estimator.sample_detection_probabilities(
        resume=states[-1], state_hook=blocks.append
    )
    assert blocks == []                 # nothing was re-simulated
    assert_bit_identical(resumed, full)


def test_resume_validation():
    _, _, states = run_with_states()
    state = states[1]
    # Wrong seed: the pattern stream would diverge.
    other_seed = MonteCarloEstimator(
        build("c17"),
        plan=SamplingPlan(
            target_halfwidth=0.01, max_patterns=4096, block_size=512, seed=4
        ),
    )
    with pytest.raises(ResilienceError, match="seed"):
        other_seed.sample_detection_probabilities(resume=state)
    # Wrong circuit: the fault lists differ.
    other_circuit = MonteCarloEstimator(build("parity8"), plan=PLAN)
    with pytest.raises(ResilienceError, match="fault list"):
        other_circuit.sample_detection_probabilities(resume=state)
    # Torn state: history not ending at n_patterns.
    torn = SamplingState(
        seed=state.seed, n_patterns=state.n_patterns + 512,
        counts=state.counts, first=state.first, history=state.history,
    )
    with pytest.raises(ResilienceError, match="torn"):
        MonteCarloEstimator(
            build("c17"), plan=PLAN
        ).sample_detection_probabilities(resume=torn)


# ---------------------------------------------------------------------------
# Backend degradation
# ---------------------------------------------------------------------------

class FlakyBackend(PythonBackend):
    """Python-identical engine under a name degradation can leave."""

    name = "flaky-test"


register_backend(FlakyBackend(), replace=True)


def test_degradation_is_bit_identical_and_truthful():
    plan = ChaosPlan().fail(
        "sampling.block", block=2, backend="flaky-test",
        message="injected backend failure",
    )
    estimator = MonteCarloEstimator(
        build("c17"), plan=PLAN, backend="flaky-test"
    )
    with inject(plan):
        degraded = estimator.sample_detection_probabilities()
    assert plan.fired("sampling.block") == 1
    # The event is recorded truthfully...
    assert estimator.degraded == [{
        "block": 2,
        "backend": "flaky-test",
        "error": "InjectedFault: injected backend failure",
    }]
    assert estimator.backend_name == "flaky-test->python"
    assert estimator.backend.name == "python"
    # ...and the sample is exactly what a clean run produces.
    clean = MonteCarloEstimator(
        build("c17"), plan=PLAN, backend="python"
    ).sample_detection_probabilities()
    assert_bit_identical(degraded, clean)


def test_degradation_survives_a_resumed_run():
    _, full, states = run_with_states()
    plan = ChaosPlan().fail(
        "sampling.block", block=5, backend="flaky-test"
    )
    estimator = MonteCarloEstimator(
        build("c17"), plan=PLAN, backend="flaky-test"
    )
    with inject(plan):
        resumed = estimator.sample_detection_probabilities(resume=states[2])
    assert estimator.backend_name == "flaky-test->python"
    assert_bit_identical(resumed, full)


def test_no_fallback_surfaces_backend_failure():
    # fallback=False: the failure propagates as a permanent error.
    plan = ChaosPlan().fail("sampling.block", block=1, backend="flaky-test")
    estimator = MonteCarloEstimator(
        build("c17"), plan=PLAN, backend="flaky-test", fallback=False
    )
    with inject(plan):
        with pytest.raises(BackendFailure) as exc:
            estimator.sample_detection_probabilities()
    assert exc.value.transient is False
    assert "block 1" in str(exc.value)
    assert isinstance(exc.value.__cause__, Exception)


def test_python_backend_has_nowhere_to_fall_back():
    plan = ChaosPlan().fail("sampling.block", block=1, backend="python")
    estimator = MonteCarloEstimator(
        build("c17"), plan=PLAN, backend="python"
    )
    with inject(plan):
        with pytest.raises(BackendFailure):
            estimator.sample_detection_probabilities()
    assert estimator.degraded == []
