"""Tests for fault detection probability estimation (paper §3/§4)."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17, sn74181
from repro.detection import (
    DetectionProbabilityEstimator,
    exact_detection_probabilities,
)
from repro.errors import EstimationError
from repro.faults import Fault, fault_universe
from repro.report import accuracy_stats


def test_and_gate_detection_probabilities_closed_form():
    b = CircuitBuilder("and2")
    x, y = b.inputs("x", "y")
    b.output(b.and_("z", x, y))
    circuit = b.build()
    det = DetectionProbabilityEstimator(circuit).run(
        input_probs={"x": 0.5, "y": 0.3}
    )
    # z s-a-0 needs z=1: p = 0.15; z s-a-1 needs z=0: p = 0.85.
    assert det[Fault("z", None, 0)] == pytest.approx(0.15)
    assert det[Fault("z", None, 1)] == pytest.approx(0.85)
    # x s-a-0 needs x=1 and y=1.
    assert det[Fault("x", None, 0)] == pytest.approx(0.5 * 0.3)
    # x s-a-1 needs x=0 and y=1.
    assert det[Fault("x", None, 1)] == pytest.approx(0.5 * 0.3)


def test_estimates_match_exact_on_small_circuits():
    """On fan-out-light circuits the model should be nearly exact."""
    b = CircuitBuilder("small")
    a, bb, c = b.inputs("a", "b", "c")
    n1 = b.and_("n1", a, bb)
    n2 = b.or_("n2", n1, c)
    b.output(n2)
    circuit = b.build()
    faults = fault_universe(circuit)
    estimated = DetectionProbabilityEstimator(circuit).run(faults=faults)
    exact = exact_detection_probabilities(circuit, faults)
    for fault in faults:
        assert estimated[fault] == pytest.approx(exact[fault], abs=1e-9), str(fault)


def test_alu_correlation_reproduces_table1():
    """Table 1's headline: PROTEST correlates > 0.9 with simulation."""
    circuit = sn74181()
    faults = fault_universe(circuit)
    estimated = DetectionProbabilityEstimator(circuit).run(faults=faults)
    exact = exact_detection_probabilities(circuit, faults, max_inputs=14)
    stats = accuracy_stats(
        [estimated[f] for f in faults], [exact[f] for f in faults]
    )
    assert stats.correlation > 0.9
    assert stats.mean_error < 0.12
    # The documented systematic under-estimation (Figs 5/6).
    assert stats.under_estimated > 0.5


def test_weighted_exact_detection():
    b = CircuitBuilder("and2")
    x, y = b.inputs("x", "y")
    b.output(b.and_("z", x, y))
    circuit = b.build()
    probs = {"x": 0.75, "y": 0.25}
    exact = exact_detection_probabilities(circuit, input_probs=probs)
    assert exact[Fault("z", None, 0)] == pytest.approx(0.75 * 0.25)
    assert exact[Fault("x", None, 1)] == pytest.approx(0.25 * 0.25)


def test_signal_probs_and_input_probs_mutually_exclusive():
    circuit = c17()
    estimator = DetectionProbabilityEstimator(circuit)
    signal = estimator.signal_estimator.run()
    with pytest.raises(EstimationError, match="not both"):
        estimator.run(input_probs=0.5, signal_probs=signal)


def test_reusing_signal_probabilities():
    circuit = c17()
    estimator = DetectionProbabilityEstimator(circuit)
    signal = estimator.signal_estimator.run()
    a = estimator.run(signal_probs=signal)
    b = estimator.run()
    assert a == b


def test_branch_vs_stem_faults_differ_across_fanout():
    """On a fan-out stem, the branch fault is easier than the stem fault
    under the chain model (only one path needs to propagate)."""
    circuit = c17()
    faults = fault_universe(circuit)
    det = DetectionProbabilityEstimator(circuit).run(faults=faults)
    # G11 fans out to G16 and G19.
    stem = det[Fault("G11", None, 0)]
    branch16 = det[Fault("G16", 1, 0)]
    branch19 = det[Fault("G19", 0, 0)]
    assert branch16 > 0 and branch19 > 0 and stem > 0
    # Consistency of the chain rule at the stem.
    assert stem <= branch16 + branch19 + 1e-9


def test_exact_detection_input_cap():
    from repro.circuits import comp24

    with pytest.raises(EstimationError, match="capped"):
        exact_detection_probabilities(comp24())
