"""Resilience primitives: retry policy, job journal, chaos harness."""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import (
    InjectedFault,
    JobTimeout,
    ParseError,
    QueueFull,
    ResilienceError,
    WorkerCrashed,
)
from repro.resilience import (
    ChaosKill,
    ChaosPlan,
    ChaosRule,
    JobJournal,
    RetryPolicy,
    chaos_point,
    error_payload,
    inject,
    is_transient,
    parse_spec,
)
from repro.resilience.chaos import active_plan, install_from_env, uninstall


# ---------------------------------------------------------------------------
# Error taxonomy / classification
# ---------------------------------------------------------------------------

def test_taxonomy_transient_flags():
    assert is_transient(WorkerCrashed("worker died"))
    assert is_transient(QueueFull("full"))
    assert is_transient(InjectedFault("flaky", transient=True))
    assert is_transient(BrokenProcessPool("pool died"))
    assert is_transient(ConnectionError("dropped"))
    assert not is_transient(ParseError("bad gate", line=2))
    assert not is_transient(JobTimeout("over budget"))
    assert not is_transient(InjectedFault("broken", transient=False))
    assert not is_transient(ValueError("plain"))


def test_error_payload_shape_and_cause():
    try:
        try:
            raise ValueError("numpy exploded")
        except ValueError as inner:
            raise WorkerCrashed("worker died running j000001") from inner
    except WorkerCrashed as error:
        payload = error_payload(error, attempts=3)
    assert payload == {
        "type": "WorkerCrashed",
        "message": "worker died running j000001",
        "transient": True,
        "attempts": 3,
        "cause": "ValueError: numpy exploded",
    }


def test_error_payload_without_cause():
    payload = error_payload(ParseError("bad gate", line=2))
    assert payload["type"] == "ParseError"
    assert payload["message"] == "line 2: bad gate"
    assert payload["transient"] is False
    assert payload["attempts"] == 1
    assert payload["cause"] is None


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

def test_retry_policy_validation():
    with pytest.raises(ResilienceError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ResilienceError):
        RetryPolicy(base_delay=-0.1)
    with pytest.raises(ResilienceError):
        RetryPolicy(base_delay=2.0, max_delay=1.0)
    with pytest.raises(ResilienceError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ResilienceError):
        RetryPolicy().delay(0)


def test_retry_budget():
    policy = RetryPolicy(max_attempts=3)
    crash = WorkerCrashed("boom")
    assert policy.should_retry(crash, attempts=1)
    assert policy.should_retry(crash, attempts=2)
    assert not policy.should_retry(crash, attempts=3)
    # Permanent errors never retry, whatever the budget.
    assert not policy.should_retry(ParseError("bad"), attempts=1)
    # max_attempts=1 disables retries entirely.
    assert not RetryPolicy(max_attempts=1).should_retry(crash, attempts=1)


def test_retry_delay_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=0.1, max_delay=5.0, jitter=0.5, seed=7)
    for attempt in (1, 2, 3, 5):
        backoff = min(5.0, 0.1 * 2.0 ** (attempt - 1))
        delay = policy.delay(attempt, token="j000042")
        # Pure function of (seed, token, attempt): replayable exactly.
        assert delay == policy.delay(attempt, token="j000042")
        assert 0.5 * backoff <= delay <= 1.5 * backoff
    # Different tokens decorrelate (thundering-herd protection).
    assert policy.delay(1, token="a") != policy.delay(1, token="b")
    # jitter=0 gives the exact exponential schedule, capped.
    exact = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.0)
    assert [exact.delay(a) for a in (1, 2, 3, 4, 5)] == [
        0.1, 0.2, 0.4, 0.8, 1.0
    ]


# ---------------------------------------------------------------------------
# JobJournal
# ---------------------------------------------------------------------------

def test_journal_in_memory_store():
    journal = JobJournal()
    assert journal.get("k") is None
    journal.put("k", {"version": 1, "n": 3})
    assert "k" in journal and len(journal) == 1
    assert journal.get("k") == {"version": 1, "n": 3}
    # Stored payloads are isolated copies: mutating the returned dict
    # (or the original) must not leak into the store.
    journal.get("k")["n"] = 99
    assert journal.get("k")["n"] == 3
    assert journal.discard("k") is True
    assert journal.discard("k") is False
    assert len(journal) == 0
    with pytest.raises(ResilienceError):
        journal.put("k", ["not", "a", "dict"])


def test_journal_file_roundtrip(tmp_path):
    path = tmp_path / "journal.json"
    first = JobJournal(path)
    first.put("job-a", {"version": 1, "block": 2})
    first.put("job-b", {"version": 1, "block": 5})
    first.discard("job-b")
    # Every mutation rewrote the file atomically: a fresh instance (a
    # restarted service) sees exactly the surviving entries.
    second = JobJournal(path)
    assert second.keys() == ["job-a"]
    assert second.get("job-a") == {"version": 1, "block": 2}
    # The on-disk form is plain JSON, no temp files left behind.
    assert json.loads(path.read_text(encoding="utf-8")) == {
        "job-a": {"version": 1, "block": 2}
    }
    assert [p for p in tmp_path.iterdir()] == [path]


def test_journal_tolerates_corruption(tmp_path):
    path = tmp_path / "journal.json"
    path.write_text("{torn JSON", encoding="utf-8")
    journal = JobJournal(path)
    assert len(journal) == 0           # corrupt -> empty, never fatal
    path.write_text(json.dumps(["wrong", "shape"]), encoding="utf-8")
    assert len(JobJournal(path)) == 0
    # Non-dict values are dropped on load, valid entries survive.
    path.write_text(
        json.dumps({"good": {"v": 1}, "bad": 7}), encoding="utf-8"
    )
    assert JobJournal(path).keys() == ["good"]


def test_journal_missing_file_and_sync(tmp_path):
    path = tmp_path / "sub" / "journal.json"
    path.parent.mkdir()
    journal = JobJournal(path)      # absent file: starts empty
    assert len(journal) == 0
    journal.put("k", {"v": 1})
    journal.sync()
    assert json.loads(path.read_text(encoding="utf-8")) == {"k": {"v": 1}}


# ---------------------------------------------------------------------------
# Chaos harness
# ---------------------------------------------------------------------------

@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    uninstall()


def test_chaos_point_is_noop_without_plan():
    chaos_point("service.worker", job="j000000")    # must not raise


def test_chaos_rule_validation():
    with pytest.raises(ResilienceError):
        ChaosRule("explode", "service.worker")


def test_chaos_fail_matches_context_and_fire_count():
    plan = ChaosPlan().fail(
        "sampling.block", block=2, message="injected", transient=True
    )
    with inject(plan):
        chaos_point("sampling.block", block=1)          # no match
        chaos_point("service.worker", block=2)          # wrong site
        with pytest.raises(InjectedFault) as exc:
            chaos_point("sampling.block", block=2)
        assert exc.value.transient is True
        assert "injected" in str(exc.value)
        chaos_point("sampling.block", block=2)          # times=1: spent
    assert plan.fired() == 1
    assert plan.fired("sampling.block") == 1
    assert plan.log == [
        {"site": "sampling.block", "action": "fail", "block": 2}
    ]


def test_chaos_kill_rips_through_except_exception():
    assert not issubclass(ChaosKill, Exception)
    plan = ChaosPlan().kill("service.checkpoint", job="j000000")
    with inject(plan):
        with pytest.raises(ChaosKill):
            try:
                chaos_point("service.checkpoint", job="j000000", block=0)
            except Exception:  # noqa: BLE001 - the guard under test
                pytest.fail("ChaosKill must not be caught by except Exception")


def test_chaos_sleep_and_unlimited_times():
    plan = ChaosPlan().sleep("cache.get", seconds=0.01, times=None)
    with inject(plan):
        start = time.perf_counter()
        chaos_point("cache.get", kind="report")
        chaos_point("cache.get", kind="report")
        assert time.perf_counter() - start >= 0.02
    assert plan.fired("cache.get") == 2


def test_chaos_custom_exception_factory():
    plan = ChaosPlan().fail("sweep.cell", exc=lambda: OSError("disk gone"))
    with inject(plan):
        with pytest.raises(OSError, match="disk gone"):
            chaos_point("sweep.cell", circuit="c17", attempt=0)


def test_inject_restores_previous_plan():
    outer = ChaosPlan()
    with inject(outer):
        with inject(ChaosPlan()):
            assert active_plan() is not outer
        assert active_plan() is outer
    assert active_plan() is None


def test_parse_spec_grammar():
    plan = parse_spec(
        "kill:service.checkpoint:job=j000000,block=1;"
        "fail:sampling.block:block=2,backend=numpy,"
        "message=injected backend failure,transient=true;"
        "sleep:cache.get:seconds=0.5,times=always"
    )
    kill, fail, sleep = plan.rules
    assert (kill.action, kill.site) == ("kill", "service.checkpoint")
    assert kill.match == {"job": "j000000", "block": 1}   # int-typed value
    assert kill.times == 1
    assert fail.match == {"block": 2, "backend": "numpy"}
    assert fail.message == "injected backend failure"
    assert fail.transient is True
    assert sleep.seconds == 0.5
    assert sleep.times is None                            # "always"


def test_parse_spec_rejects_malformed_rules():
    with pytest.raises(ResilienceError):
        parse_spec("kill")                       # no site
    with pytest.raises(ResilienceError):
        parse_spec("kill:service.worker:noequals")
    with pytest.raises(ResilienceError):
        parse_spec("explode:service.worker")     # unknown action


def test_install_from_env():
    assert install_from_env({}) is None
    assert active_plan() is None
    plan = install_from_env(
        {"PROTEST_CHAOS": "fail:sampling.block:block=1"}
    )
    assert plan is not None and active_plan() is plan
    with pytest.raises(InjectedFault):
        chaos_point("sampling.block", block=1)


def test_chaos_trigger_is_thread_safe():
    plan = ChaosPlan().fail("cache.put", times=8, kind="report")
    errors = []

    def hammer():
        for _ in range(50):
            try:
                chaos_point("cache.put", kind="report")
            except InjectedFault:
                errors.append(1)

    with inject(plan):
        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    # The fire budget is enforced atomically across threads.
    assert len(errors) == 8
    assert plan.fired() == 8
