"""Tests for the STAFAN baseline."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17
from repro.baselines import stafan, stafan_detection_probabilities
from repro.detection import exact_detection_probabilities
from repro.errors import EstimationError
from repro.faults import fault_universe
from repro.logicsim import PatternSet
from repro.report import accuracy_stats


def test_counted_controllabilities():
    circuit = c17()
    patterns = PatternSet.exhaustive(circuit.inputs)
    result = stafan(circuit, patterns)
    assert result.c1["G1"] == pytest.approx(0.5)
    assert result.c1["G10"] == pytest.approx(0.75)  # NAND of two uniforms
    assert result.c0("G10") == pytest.approx(0.25)


def test_primary_output_observability_one():
    circuit = c17()
    patterns = PatternSet.exhaustive(circuit.inputs)
    result = stafan(circuit, patterns)
    assert result.b0["G22"] == 1.0
    assert result.b1["G22"] == 1.0


def test_estimates_close_to_exact_on_exhaustive_patterns():
    """With the full input space, STAFAN's counts are exact and its only
    error source is the propagation model — correlation should be high."""
    circuit = c17()
    patterns = PatternSet.exhaustive(circuit.inputs)
    faults = fault_universe(circuit)
    estimates = stafan_detection_probabilities(circuit, patterns, faults)
    exact = exact_detection_probabilities(circuit, faults)
    stats = accuracy_stats(
        [estimates[f] for f in faults], [exact[f] for f in faults]
    )
    assert stats.correlation > 0.85
    assert stats.mean_error < 0.15


def test_sampling_noise_converges():
    circuit = c17()
    faults = fault_universe(circuit)
    coarse = stafan_detection_probabilities(
        circuit, PatternSet.random(circuit.inputs, 64, seed=1), faults
    )
    fine = stafan_detection_probabilities(
        circuit, PatternSet.random(circuit.inputs, 8192, seed=1), faults
    )
    exact_ps = PatternSet.exhaustive(circuit.inputs)
    reference = stafan_detection_probabilities(circuit, exact_ps, faults)
    coarse_err = sum(abs(coarse[f] - reference[f]) for f in faults)
    fine_err = sum(abs(fine[f] - reference[f]) for f in faults)
    assert fine_err < coarse_err


def test_stem_combine_modes():
    circuit = c17()
    patterns = PatternSet.exhaustive(circuit.inputs)
    or_mode = stafan(circuit, patterns, stem_combine="or")
    max_mode = stafan(circuit, patterns, stem_combine="max")
    # OR-combination dominates the max.
    for node in circuit.nodes:
        assert or_mode.b1[node] >= max_mode.b1[node] - 1e-12
    with pytest.raises(EstimationError):
        stafan(circuit, patterns, stem_combine="sum")


def test_empty_patterns_rejected():
    circuit = c17()
    empty = PatternSet(circuit.inputs, 0, {n: 0 for n in circuit.inputs})
    with pytest.raises(EstimationError):
        stafan(circuit, empty)


def test_constant_line_observability_zero_denominator():
    """A line that is never 0 (or never 1) must not divide by zero."""
    b = CircuitBuilder("const")
    a = b.input("a")
    one = b.const1("one")
    b.output(b.and_("y", a, one))
    circuit = b.build()
    patterns = PatternSet.exhaustive(circuit.inputs)
    result = stafan(circuit, patterns)
    assert result.b0_pin[("y", 1)] == 0.0  # 'one' is never 0
