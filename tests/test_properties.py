"""Property-based tests (hypothesis) on the core invariants.

These pit the fast engines against brute-force references on seeded random
DAGs, covering structure shapes no hand-written example would.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit import Topology
from repro.circuit.types import GateType, eval_bool, gate_probability
from repro.circuits import random_dag
from repro.faults import FaultSimulator, collapse, fault_universe
from repro.logicsim import PatternSet, pack_bits, simulate, unpack_bits
from repro.probability import (
    SignalProbabilityEstimator,
    bdd_signal_probabilities,
    exact_signal_probabilities,
    probability_bounds,
)

# Small circuits keep each example fast; hypothesis varies the shape.
dag_strategy = st.builds(
    random_dag,
    n_inputs=st.integers(min_value=2, max_value=6),
    n_gates=st.integers(min_value=2, max_value=18),
    seed=st.integers(min_value=0, max_value=10_000),
    lut_fraction=st.sampled_from([0.0, 0.3]),
)

prob_strategy = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, width=32
)


@settings(max_examples=40, deadline=None)
@given(word=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_pack_unpack_roundtrip(word):
    bits = unpack_bits(word, 64)
    assert pack_bits(bits) == word


@settings(max_examples=30, deadline=None)
@given(
    gtype=st.sampled_from(
        [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
         GateType.XOR, GateType.XNOR]
    ),
    probs=st.lists(prob_strategy, min_size=2, max_size=4),
)
def test_gate_probability_equals_minterm_sum(gtype, probs):
    """The closed forms must equal brute-force minterm summation."""
    n = len(probs)
    total = 0.0
    for minterm in range(1 << n):
        operands = [(minterm >> i) & 1 for i in range(n)]
        if eval_bool(gtype, operands):
            weight = 1.0
            for i in range(n):
                weight *= probs[i] if operands[i] else 1.0 - probs[i]
            total += weight
    assert gate_probability(gtype, probs) == pytest.approx(total, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(circuit=dag_strategy)
def test_simulation_matches_per_pattern_eval(circuit):
    """Bit-parallel simulation == scalar evaluation, pattern by pattern."""
    patterns = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, patterns)
    for j in (0, patterns.n_patterns // 2, patterns.n_patterns - 1):
        vec = patterns.vector(j)
        scalar = dict(vec)
        for node in circuit.nodes:
            if circuit.is_input(node):
                continue
            gate = circuit.gates[node]
            scalar[node] = eval_bool(
                gate.gtype, [scalar[s] for s in gate.inputs], gate.table
            )
        for node in circuit.nodes:
            assert (values[node] >> j) & 1 == scalar[node]


@settings(max_examples=20, deadline=None)
@given(circuit=dag_strategy)
def test_estimator_bounded_and_cutting_sound(circuit):
    """Estimates live in [0,1]; exact value lies inside the cut bounds."""
    estimate = SignalProbabilityEstimator(circuit).run()
    exact = exact_signal_probabilities(circuit)
    bounds = probability_bounds(circuit)
    for node in circuit.nodes:
        assert 0.0 <= estimate[node] <= 1.0
        lo, hi = bounds[node]
        assert lo - 1e-9 <= exact[node] <= hi + 1e-9


@settings(max_examples=15, deadline=None)
@given(circuit=dag_strategy)
def test_bdd_equals_enumeration(circuit):
    enum = exact_signal_probabilities(circuit)
    via_bdd = bdd_signal_probabilities(circuit)
    for node in circuit.nodes:
        assert via_bdd[node] == pytest.approx(enum[node], abs=1e-9)


@settings(max_examples=15, deadline=None)
@given(circuit=dag_strategy)
def test_estimator_no_worse_than_tree_rule_on_average(circuit):
    from repro.probability import EstimatorParams

    exact = exact_signal_probabilities(circuit)
    tree = SignalProbabilityEstimator(
        circuit, EstimatorParams(maxvers=0)
    ).run()
    cond = SignalProbabilityEstimator(circuit).run()
    tree_err = sum(abs(tree[n] - exact[n]) for n in circuit.nodes)
    cond_err = sum(abs(cond[n] - exact[n]) for n in circuit.nodes)
    # Conditioning may not *win* on every node but must not lose overall.
    # The tolerance absorbs heuristic selection noise; hypothesis has
    # found DAGs where conditioning loses ~0.075 summed over the nodes,
    # so it is sized well above that.
    assert cond_err <= tree_err + 0.15


@settings(max_examples=15, deadline=None)
@given(circuit=dag_strategy)
def test_collapsed_classes_equivalent_by_simulation(circuit):
    result = collapse(circuit)
    patterns = PatternSet.exhaustive(circuit.inputs)
    good = simulate(circuit, patterns)
    simulator = FaultSimulator(circuit, fault_universe(circuit))
    for representative in result.representatives:
        members = result.class_of(representative)
        if len(members) == 1:
            continue
        words = {
            simulator.detection_word(f, good, patterns.mask)
            for f in members
        }
        assert len(words) == 1


@settings(max_examples=15, deadline=None)
@given(circuit=dag_strategy, seed=st.integers(0, 1000))
def test_coverage_curve_monotone(circuit, seed):
    patterns = PatternSet.random(circuit.inputs, 64, seed=seed)
    result = FaultSimulator(circuit).run(patterns, block_size=16)
    curve = result.coverage_curve([1, 2, 4, 8, 16, 32, 64])
    assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))


@settings(max_examples=10, deadline=None)
@given(circuit=dag_strategy)
def test_detection_estimates_within_unit_interval(circuit):
    from repro.detection import DetectionProbabilityEstimator

    detection = DetectionProbabilityEstimator(circuit).run()
    for fault, p in detection.items():
        assert -1e-12 <= p <= 1.0 + 1e-12


@settings(max_examples=10, deadline=None)
@given(
    pfs=st.lists(
        st.floats(min_value=1e-6, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    confidence=st.floats(min_value=0.5, max_value=0.999),
)
def test_required_length_minimality_property(pfs, confidence):
    from repro.testlen import all_detected_probability, required_test_length

    n = required_test_length(pfs, confidence)
    assert all_detected_probability(pfs, n) >= confidence
    if n > 0:
        assert all_detected_probability(pfs, n - 1) < confidence
