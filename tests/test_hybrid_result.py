"""Additional invariants of the hybrid-ATPG result accounting."""

from __future__ import annotations

import pytest

from repro.atpg import hybrid_atpg
from repro.circuits import c17
from repro.faults import FaultSimulator, fault_universe
from repro.logicsim import PatternSet


def test_accounting_adds_up():
    circuit = c17()
    result = hybrid_atpg(circuit, n_random=32, seed=9)
    resolved = (
        result.detected_by_random
        + result.detected_by_podem
        + result.proven_redundant
        + result.aborted
    )
    assert resolved == result.n_faults
    assert 0.0 <= result.coverage <= 1.0
    assert result.random_patterns == 32
    assert result.random_seconds >= 0.0
    assert result.podem_seconds >= 0.0


def test_deterministic_patterns_actually_detect():
    """Every PODEM pattern in the result must detect at least one of the
    random-phase survivors."""
    circuit = c17()
    result = hybrid_atpg(circuit, n_random=16, seed=2)
    if not result.deterministic_patterns:
        pytest.skip("random phase detected everything")
    faults = fault_universe(circuit)
    simulator = FaultSimulator(circuit, faults)
    patterns = PatternSet.from_vectors(
        circuit.inputs, result.deterministic_patterns
    )
    outcome = simulator.run(patterns)
    detected = sum(1 for r in outcome.records.values() if r.detected)
    assert detected >= len(result.deterministic_patterns)


def test_more_random_patterns_reduce_podem_share():
    circuit = c17()
    small = hybrid_atpg(circuit, n_random=4, seed=5)
    large = hybrid_atpg(circuit, n_random=256, seed=5)
    assert large.podem_workload <= small.podem_workload
