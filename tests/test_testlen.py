"""Tests for the test-length mathematics (formula (3), Tables 2/3/5)."""

from __future__ import annotations

import math

import pytest

from repro.errors import EstimationError
from repro.testlen import (
    all_detected_probability,
    expected_coverage,
    log_all_detected_probability,
    required_test_length,
    select_easiest_fraction,
)


def test_single_fault_closed_form():
    """For one fault, N = ceil(log(1-e) / log(1-p))."""
    p, e = 0.01, 0.95
    expected = math.ceil(math.log(1 - e) / math.log(1 - p))
    assert required_test_length([p], e) == expected


def test_probability_matches_direct_product():
    pfs = [0.5, 0.1, 0.25]
    n = 17
    direct = 1.0
    for p in pfs:
        direct *= 1 - (1 - p) ** n
    assert all_detected_probability(pfs, n) == pytest.approx(direct)


def test_monotone_in_n():
    pfs = [0.02, 0.3, 0.001]
    values = [all_detected_probability(pfs, n) for n in (10, 100, 1000, 10000)]
    assert all(a <= b for a, b in zip(values, values[1:]))


def test_required_length_is_minimal():
    pfs = [0.05, 0.2, 0.007]
    for e in (0.9, 0.99):
        n = required_test_length(pfs, e)
        assert all_detected_probability(pfs, n) >= e
        assert all_detected_probability(pfs, n - 1) < e


def test_fraction_drops_hardest():
    pfs = [0.5] * 98 + [1e-9, 1e-9]
    full = required_test_length(pfs, 0.95)  # dominated by the 1e-9 faults
    d98 = required_test_length(pfs, 0.95, fraction=0.98)
    assert d98 < full / 1000  # orders of magnitude shorter


def test_select_easiest_fraction():
    pfs = [0.9, 0.1, 0.5, 0.3]
    assert select_easiest_fraction(pfs, 1.0) == pfs
    assert select_easiest_fraction(pfs, 0.5) == [0.9, 0.5]
    assert select_easiest_fraction(pfs, 0.01) == [0.9]  # at least one kept
    with pytest.raises(EstimationError):
        select_easiest_fraction(pfs, 0.0)
    with pytest.raises(EstimationError):
        select_easiest_fraction(pfs, 1.5)


def test_undetectable_fault_raises():
    with pytest.raises(EstimationError, match="undetectable"):
        required_test_length([0.5, 0.0], 0.95)
    # ... unless the fraction excludes it.
    assert required_test_length([0.5, 0.0], 0.95, fraction=0.5) > 0


def test_certain_faults_need_no_patterns():
    assert required_test_length([1.0, 1.0], 0.99) == 0


def test_confidence_validation():
    with pytest.raises(EstimationError):
        required_test_length([0.5], 0.0)
    with pytest.raises(EstimationError):
        required_test_length([0.5], 1.0)


def test_max_length_guard():
    with pytest.raises(EstimationError, match="exceeds"):
        required_test_length([1e-15], 0.999, max_length=10**6)


def test_log_space_survives_tiny_probabilities():
    """COMP-scale inputs: p ~ 1e-8 and N ~ 1e8 stay finite and sane."""
    pfs = [1e-8] * 100 + [0.5] * 1000
    n = required_test_length(pfs, 0.95)
    assert 1e8 < n < 1e10
    log_p = log_all_detected_probability(pfs, n)
    assert math.exp(log_p) >= 0.95


def test_zero_patterns():
    assert all_detected_probability([0.5], 0) == 0.0
    assert log_all_detected_probability([], 0) == 0.0  # empty product = 1
    with pytest.raises(EstimationError):
        log_all_detected_probability([0.5], -1)


def test_expected_coverage_properties():
    pfs = [0.5, 0.01, 1.0, 0.0]
    assert expected_coverage(pfs, 0) == pytest.approx(0.25)  # only the 1.0
    cov = expected_coverage(pfs, 1000)
    assert 0.74 < cov < 0.76  # the p=0 fault can never be covered
    assert expected_coverage([], 10) == 0.0
