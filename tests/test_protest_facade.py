"""Tests for the Protest facade."""

from __future__ import annotations

import pytest

from repro.circuits import c17, comp24
from repro.faults import Fault, fault_universe
from repro.protest import Protest


@pytest.fixture
def tool():
    return Protest(c17())


def test_signal_probabilities(tool):
    probs = tool.signal_probabilities()
    assert probs["G10"] == pytest.approx(0.75, abs=0.02)


def test_detection_probabilities_cover_universe(tool):
    detection = tool.detection_probabilities()
    assert set(detection) == set(fault_universe(c17()))
    assert all(0.0 <= p <= 1.0 for p in detection.values())


def test_test_length_consistency(tool):
    detection = tool.detection_probabilities()
    direct = tool.test_length(0.95, detection_probs=detection)
    recomputed = tool.test_length(0.95)
    assert direct == recomputed
    assert tool.test_length(0.999) > direct


def test_expected_coverage_monotone(tool):
    detection = tool.detection_probabilities()
    c10 = tool.expected_coverage(10, detection_probs=detection)
    c100 = tool.expected_coverage(100, detection_probs=detection)
    assert 0.0 < c10 < c100 <= 1.0


def test_generate_and_simulate_roundtrip(tool):
    patterns = tool.generate_patterns(256, seed=3)
    result = tool.fault_simulate(patterns)
    assert 0.9 < result.coverage() <= 1.0
    # The predicted coverage should be in the same ballpark.
    predicted = tool.expected_coverage(256)
    assert abs(predicted - result.coverage()) < 0.1


def test_weighted_patterns_respect_probabilities(tool):
    probs = {name: 0.875 for name in c17().inputs}
    patterns = tool.generate_patterns(20000, probs, seed=1)
    observed = patterns.observed_probabilities()
    for name, freq in observed.items():
        assert freq == pytest.approx(0.875, abs=0.02)


def test_optimize_smoke(tool):
    result = tool.optimize(n_ref=256, max_rounds=2)
    assert result.evaluations > 0
    assert result.score >= result.initial_score


def test_analyze_report(tool):
    report = tool.analyze()
    text = report.to_text()
    assert "c17" in text
    assert "required test lengths" in text
    assert report.n_faults == len(fault_universe(c17()))
    assert report.min_detection > 0
    assert len(report.hardest_faults) == 5


def test_restricted_fault_list():
    faults = [Fault("G22", None, 0), Fault("G22", None, 1)]
    tool = Protest(c17(), faults=faults)
    detection = tool.detection_probabilities()
    assert set(detection) == set(faults)


def test_analyze_handles_undetectable_faults():
    """A circuit with an undetectable fault reports N = None, not -1."""
    from repro.circuit import CircuitBuilder

    b = CircuitBuilder("redundant")
    a = b.input("a")
    one = b.const1("one")
    b.output(b.and_("y", a, one))
    tool = Protest(b.build())
    report = tool.analyze(fractions=(1.0,))
    assert report.test_lengths[(1.0, 0.95)] is None
    # Unreachable requirements render as "inf", never as a magic number.
    text = report.to_text()
    n_cell = [line for line in text.splitlines() if "0.950" in line][0]
    assert "inf" in n_cell
    assert "-1" not in n_cell


def test_generate_patterns_without_seed_draws_fresh_entropy(tool):
    """seed=None keeps the historical contract: new patterns every call."""
    a = tool.generate_patterns(256)
    b = tool.generate_patterns(256)
    assert a.words != b.words


def test_shim_reuses_engine_caches(tool):
    """The legacy facade rides the engine: one detection run per tuple."""
    tool.analyze()
    tool.test_length(0.95)
    tool.expected_coverage(100)
    info = tool.engine.cache_info()
    assert info["signal_runs"] == 1
    assert info["observability_runs"] == 1
    assert info["detection_runs"] == 1
    assert info["detection_hits"] >= 2


def test_comp_scale_analysis_smoke():
    tool = Protest(comp24(width=8, name="COMP8"))
    report = tool.analyze(confidences=(0.95,), fractions=(0.98,))
    assert report.test_lengths[(0.98, 0.95)] > 100
