"""Tests for the PROTEST signal-probability estimator (paper §2)."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import and_or_ladder, c17, sn74181
from repro.errors import EstimationError
from repro.probability import (
    EstimatorParams,
    SignalProbabilityEstimator,
    exact_signal_probabilities,
)


def test_params_validation():
    with pytest.raises(EstimationError):
        EstimatorParams(maxvers=-1)
    with pytest.raises(EstimationError):
        EstimatorParams(maxlist=0)
    with pytest.raises(EstimationError):
        EstimatorParams(candidate_cap=0)


def test_tree_rule_exact_on_trees(tree_circuit):
    estimate = SignalProbabilityEstimator(tree_circuit).run(
        {"a": 0.3, "b": 0.7, "c": 0.2, "d": 0.9}
    )
    exact = exact_signal_probabilities(
        tree_circuit, {"a": 0.3, "b": 0.7, "c": 0.2, "d": 0.9}
    )
    for node in tree_circuit.nodes:
        assert estimate[node] == pytest.approx(exact[node], abs=1e-12)


def test_conditioning_exact_on_single_reconvergence(reconvergent_circuit):
    estimate = SignalProbabilityEstimator(reconvergent_circuit).run()
    exact = exact_signal_probabilities(reconvergent_circuit)
    assert estimate["k"] == pytest.approx(exact["k"], abs=1e-12)
    # The tree rule is wrong here — the conditioning is doing real work.
    tree = SignalProbabilityEstimator(
        reconvergent_circuit, EstimatorParams(maxvers=0)
    ).run()
    assert abs(tree["k"] - exact["k"]) > 0.05


def test_xor_pair_captured_by_fill_in(xor_pair_circuit):
    """Zero covariance but full correlation: the fill-in selection works."""
    estimate = SignalProbabilityEstimator(xor_pair_circuit).run()
    exact = exact_signal_probabilities(xor_pair_circuit)
    assert estimate["k"] == pytest.approx(exact["k"], abs=1e-12)


def test_weighted_inputs(reconvergent_circuit):
    probs = {"x": 0.9, "y": 0.25, "z": 0.6}
    estimate = SignalProbabilityEstimator(reconvergent_circuit).run(probs)
    exact = exact_signal_probabilities(reconvergent_circuit, probs)
    assert estimate["k"] == pytest.approx(exact["k"], abs=1e-12)


def test_degenerate_input_probabilities(reconvergent_circuit):
    estimate = SignalProbabilityEstimator(reconvergent_circuit).run(
        {"x": 0.0, "y": 1.0, "z": 0.5}
    )
    assert estimate["k"] == 0.0
    estimate = SignalProbabilityEstimator(reconvergent_circuit).run(
        {"x": 1.0, "y": 1.0, "z": 1.0}
    )
    assert estimate["k"] == 1.0


def test_maxvers_monotone_improvement_on_alu():
    """Average error against exact must not grow with MAXVERS."""
    circuit = sn74181()
    exact = exact_signal_probabilities(circuit, max_inputs=14)
    errors = []
    for maxvers in (0, 2, 4):
        estimate = SignalProbabilityEstimator(
            circuit, EstimatorParams(maxvers=maxvers)
        ).run()
        avg = sum(
            abs(estimate[n] - exact[n]) for n in circuit.nodes
        ) / circuit.n_nodes
        errors.append(avg)
    assert errors[0] > errors[1] >= errors[2] * 0.7  # allow mild noise
    assert errors[2] < 0.02


def test_probabilities_stay_in_unit_interval():
    circuit = and_or_ladder(9)
    estimate = SignalProbabilityEstimator(circuit).run(0.3)
    for node, p in estimate.items():
        assert 0.0 <= p <= 1.0, node


def test_mapping_interface():
    circuit = c17()
    estimate = SignalProbabilityEstimator(circuit).run()
    assert len(estimate) == circuit.n_nodes
    assert set(estimate) == set(circuit.nodes)
    assert estimate.as_dict() == {n: estimate[n] for n in estimate}
    assert estimate.input_probs == {n: 0.5 for n in circuit.inputs}


def test_conditioned_gate_count_reported():
    circuit = c17()
    estimate = SignalProbabilityEstimator(circuit).run()
    assert estimate.conditioned_gates > 0
    tree = SignalProbabilityEstimator(
        circuit, EstimatorParams(maxvers=0)
    ).run()
    assert tree.conditioned_gates == 0


def test_incremental_update_matches_full_run():
    circuit = sn74181()
    estimator = SignalProbabilityEstimator(circuit)
    base = estimator.run()
    changed = {name: 0.5 for name in circuit.inputs}
    changed["A0"] = 0.8125
    changed["M"] = 0.25
    updated = estimator.update(base, changed)
    full = estimator.run(changed)
    for node in circuit.nodes:
        assert updated[node] == pytest.approx(full[node], abs=1e-12), node


def test_incremental_update_no_change_returns_same():
    circuit = c17()
    estimator = SignalProbabilityEstimator(circuit)
    base = estimator.run()
    assert estimator.update(base, dict(base.input_probs)) is base


def test_joining_points_cached_per_gate():
    circuit = c17()
    estimator = SignalProbabilityEstimator(circuit)
    estimator.run()
    first = estimator.joining_points_of("G22")
    assert first == estimator.joining_points_of("G22")
    assert "G11" in first or "G16" in first or first  # non-empty


def test_c17_close_to_exact():
    circuit = c17()
    exact = exact_signal_probabilities(circuit)
    estimate = SignalProbabilityEstimator(circuit).run()
    for node in circuit.nodes:
        assert estimate[node] == pytest.approx(exact[node], abs=0.07), node
