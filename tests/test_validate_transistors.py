"""Unit tests for structural validation and the CMOS cost model."""

from __future__ import annotations

import pytest

from repro.circuit import (
    CircuitBuilder,
    GateType,
    check,
    gate_equivalents,
    gate_transistors,
    transistor_count,
    validate,
)
from repro.circuit.transistors import size_report
from repro.circuits import sn74181
from repro.errors import ValidationError


def test_clean_circuit_has_no_issues():
    issues = validate(sn74181())
    assert issues == []


def test_unused_input_flagged():
    b = CircuitBuilder("demo")
    b.inputs("a", "unused")
    b.output(b.not_("n", "a"))
    issues = validate(b.build())
    assert any(i.code == "unused-input" for i in issues)


def test_dangling_gate_flagged():
    b = CircuitBuilder("demo")
    a = b.input("a")
    b.not_("dangling", a)
    b.output(b.buf("y", a))
    issues = validate(b.build())
    assert any(i.code == "dangling-gate" for i in issues)


def test_repeated_pin_flagged():
    b = CircuitBuilder("demo")
    a = b.input("a")
    b.output(b.and_("n", a, a))
    issues = validate(b.build())
    assert any(i.code == "repeated-pin" for i in issues)


def test_constant_lut_flagged():
    b = CircuitBuilder("demo")
    a = b.input("a")
    b.output(b.lut("n", 0b11, a))  # constant-1 over one input
    issues = validate(b.build())
    assert any(i.code == "constant-lut" for i in issues)


def test_check_raises_on_warnings_when_strict():
    b = CircuitBuilder("demo")
    b.inputs("a", "unused")
    b.output(b.not_("n", "a"))
    circuit = b.build()
    check(circuit)  # warnings tolerated by default
    with pytest.raises(ValidationError):
        check(circuit, allow_warnings=False)


def test_gate_transistor_costs():
    assert gate_transistors(GateType.NAND, 2) == 4
    assert gate_transistors(GateType.NOR, 3) == 6
    assert gate_transistors(GateType.AND, 2) == 6
    assert gate_transistors(GateType.NOT, 1) == 2
    assert gate_transistors(GateType.BUF, 1) == 4
    assert gate_transistors(GateType.XOR, 2) == 10
    assert gate_transistors(GateType.XOR, 3) == 20  # tree of two
    assert gate_transistors(GateType.CONST0, 0) == 0


def test_lut_transistor_cost_bounds():
    # Constant LUT costs nothing; XOR-as-LUT costs a SOP realization.
    assert gate_transistors(GateType.LUT, 2, table=0) == 0
    assert gate_transistors(GateType.LUT, 2, table=0b0110) > 0


def test_alu_matches_paper_size():
    # Paper Table 7 row 1: 368 transistors.  Our datasheet reconstruction
    # counts 464 with the static-CMOS model (the original library priced
    # AOI structures cheaper) — same scale, well within 30 %.
    count = transistor_count(sn74181())
    assert 330 <= count <= 480


def test_gate_equivalents_scale():
    circuit = sn74181()
    assert gate_equivalents(circuit) == pytest.approx(
        transistor_count(circuit) / 4.0
    )
    report = size_report(circuit)
    assert report["gates"] == circuit.n_gates
    assert report["transistors"] == transistor_count(circuit)
