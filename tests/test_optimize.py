"""Tests for the input-probability optimizer (paper §6)."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import comp24
from repro.errors import OptimizationError
from repro.optimize import TestQualityObjective, optimize_input_probabilities
from repro.testlen import required_test_length


def skewed_and_circuit():
    """y = AND(a, b, c, d): the optimum pushes all inputs high."""
    b = CircuitBuilder("and4")
    ins = b.inputs("a", "b", "c", "d")
    b.output(b.and_("y", *ins))
    return b.build()


def test_objective_evaluate_and_update_agree():
    circuit = skewed_and_circuit()
    objective = TestQualityObjective(circuit, n_ref=64)
    score, signal = objective.evaluate(0.5)
    probs = dict(signal.input_probs)
    probs["a"] = 0.8125
    updated_score, updated_signal = objective.evaluate_update(signal, probs)
    fresh_score, _ = objective.evaluate(probs)
    assert updated_score == pytest.approx(fresh_score, abs=1e-9)
    assert objective.evaluations == 3


def test_objective_rejects_bad_n_ref():
    with pytest.raises(OptimizationError):
        TestQualityObjective(skewed_and_circuit(), n_ref=0)


def test_optimizer_improves_and_circuit():
    circuit = skewed_and_circuit()
    result = optimize_input_probabilities(
        circuit, n_ref=64, grid=16, max_rounds=10
    )
    assert result.improved
    assert result.score > result.initial_score
    # The hardest fault (y s-a-1 needs all-1s... actually s-a-0) pushes
    # probabilities up; every optimized p should sit above 0.5.
    assert all(p > 0.5 for p in result.probabilities.values())
    # History is monotone non-decreasing.
    assert all(
        a <= b + 1e-9 for a, b in zip(result.history, result.history[1:])
    )


def test_optimizer_respects_grid():
    circuit = skewed_and_circuit()
    result = optimize_input_probabilities(
        circuit, n_ref=64, grid=8, max_rounds=4
    )
    for p in result.probabilities.values():
        assert abs(p * 8 - round(p * 8)) < 1e-9
        assert 1 / 8 <= p <= 7 / 8


def test_optimizer_shortens_comparator_test():
    """The §6 headline on a small COMP: optimized probabilities cut N."""
    circuit = comp24(width=8, name="COMP8")
    from repro.detection import DetectionProbabilityEstimator

    detector = DetectionProbabilityEstimator(circuit)
    base = list(detector.run().values())
    n_before = required_test_length(base, 0.95, fraction=0.98)
    result = optimize_input_probabilities(
        circuit, n_ref=2048, grid=16, max_rounds=6
    )
    optimized = list(detector.run(result.probabilities).values())
    n_after = required_test_length(optimized, 0.95, fraction=0.98)
    assert n_after < n_before / 3  # at least a 3x cut on 8 bits


def test_optimizer_subset_of_inputs():
    circuit = skewed_and_circuit()
    result = optimize_input_probabilities(
        circuit, n_ref=64, max_rounds=3, inputs=["a"]
    )
    assert result.probabilities["b"] == pytest.approx(0.5)
    assert result.probabilities["a"] != pytest.approx(0.5)


def test_optimizer_validation():
    circuit = skewed_and_circuit()
    with pytest.raises(OptimizationError):
        optimize_input_probabilities(circuit, grid=1)
    with pytest.raises(OptimizationError):
        optimize_input_probabilities(circuit, max_rounds=0)
    with pytest.raises(OptimizationError):
        optimize_input_probabilities(circuit, inputs=["zz"])


def test_optimizer_deterministic():
    circuit = skewed_and_circuit()
    a = optimize_input_probabilities(circuit, n_ref=64, max_rounds=3)
    b = optimize_input_probabilities(circuit, n_ref=64, max_rounds=3)
    assert a.probabilities == b.probabilities
    assert a.score == b.score
