"""run_sweep timeout and cancellation plumbing."""

from __future__ import annotations

import threading

import pytest

from repro.api.config import ProtestConfig
from repro.api.sweep import SweepRun, run_sweep
from repro.errors import ReproError

#: Sampling that will not finish inside a millisecond-scale timeout.
SLOW = ProtestConfig(
    method="sampled", max_patterns=1 << 18, target_halfwidth=0.002,
    name="sweep-slow",
)


def test_timeout_records_timed_out_run():
    result = run_sweep(
        ["c880", "c17"], [SLOW, "fast"],
        executor="thread", workers=2, timeout=0.05,
    )
    assert len(result.runs) == 4
    timed_out = [run for run in result.runs if run.timed_out]
    assert timed_out, "no cell hit the 50ms budget"
    for run in timed_out:
        assert not run.ok
        assert "timeout" in run.error
        assert run.elapsed > 0.0


def test_timed_out_flag_roundtrips():
    run = SweepRun(
        circuit="x", config=ProtestConfig.preset("fast"), report=None,
        error="timeout after 1s", elapsed=1.0, timed_out=True,
    )
    decoded = SweepRun.from_dict(run.to_dict())
    assert decoded.timed_out is True
    assert decoded.error == run.error
    # Old payloads without the field decode as not-timed-out.
    legacy = run.to_dict()
    del legacy["timed_out"]
    assert SweepRun.from_dict(legacy).timed_out is False


def test_invalid_timeout_rejected():
    with pytest.raises(ReproError):
        run_sweep(["c17"], ["fast"], timeout=0.0)
    with pytest.raises(ReproError):
        run_sweep(["c17"], ["fast"], timeout=-2.0)


def test_preset_cancel_skips_cells_inline():
    cancel = threading.Event()
    cancel.set()
    result = run_sweep(["c17", "comp8"], ["fast"], executor="inline",
                       cancel=cancel)
    assert len(result.runs) == 2
    assert all(run.error == "cancelled" for run in result.runs)
    assert not any(run.timed_out for run in result.runs)


def test_cancel_mid_sweep_thread_pool():
    cancel = threading.Event()
    # One slow cell first; cancel fires while it runs, so the cells
    # behind it are revoked.
    done = threading.Event()

    def trip():
        cancel.set()
        done.set()

    timer = threading.Timer(0.2, trip)
    timer.start()
    try:
        result = run_sweep(
            ["c880", "c17", "comp8"], [SLOW],
            executor="thread", workers=1, cancel=cancel,
        )
    finally:
        timer.cancel()
        done.wait(timeout=5)
    cancelled = [run for run in result.runs if run.error == "cancelled"]
    assert cancelled, "cancellation revoked no cells"
