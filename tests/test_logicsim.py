"""Unit tests for the bit-parallel simulator."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17
from repro.errors import SimulationError
from repro.logicsim import (
    PatternSet,
    node_probabilities,
    simulate,
    simulate_outputs,
)


def eval_c17(vec):
    """Direct Python evaluation of c17 for cross-checking."""
    g10 = 1 - (vec["G1"] & vec["G3"])
    g11 = 1 - (vec["G3"] & vec["G6"])
    g16 = 1 - (vec["G2"] & g11)
    g19 = 1 - (g11 & vec["G7"])
    return {
        "G22": 1 - (g10 & g16),
        "G23": 1 - (g16 & g19),
    }


def test_c17_exhaustive_against_python_model():
    circuit = c17()
    ps = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, ps)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        expected = eval_c17(vec)
        for out, want in expected.items():
            assert (values[out] >> j) & 1 == want


def test_simulate_outputs_subset():
    circuit = c17()
    ps = PatternSet.random(circuit.inputs, 64, seed=5)
    outs = simulate_outputs(circuit, ps)
    assert set(outs) == {"G22", "G23"}


def test_overrides_force_nodes():
    circuit = c17()
    ps = PatternSet.random(circuit.inputs, 32, seed=5)
    forced = simulate(circuit, ps, overrides={"G11": 0})
    assert forced["G11"] == 0
    # G16 = NAND(G2, G11) with G11 = 0 is constant 1.
    assert forced["G16"] == ps.mask


def test_override_unknown_node_rejected():
    circuit = c17()
    ps = PatternSet.random(circuit.inputs, 8, seed=5)
    with pytest.raises(SimulationError, match="unknown node"):
        simulate(circuit, ps, overrides={"nope": 0})


def test_pattern_set_must_cover_inputs():
    circuit = c17()
    ps = PatternSet.random(["G1"], 8, seed=5)
    with pytest.raises(SimulationError, match="lacks inputs"):
        simulate(circuit, ps)


def test_node_probabilities_match_popcounts():
    circuit = c17()
    ps = PatternSet.exhaustive(circuit.inputs)
    probs = node_probabilities(circuit, ps)
    # NAND of two uniform independent inputs is 1 with prob 3/4.
    assert probs["G10"] == pytest.approx(0.75)
    assert probs["G1"] == pytest.approx(0.5)


def test_node_probabilities_empty_patterns_rejected():
    circuit = c17()
    empty = PatternSet(circuit.inputs, 0, {n: 0 for n in circuit.inputs})
    with pytest.raises(SimulationError):
        node_probabilities(circuit, empty)


def test_packed_values_masked():
    b = CircuitBuilder("inv")
    a = b.input("a")
    b.output(b.not_("y", a))
    circuit = b.build()
    ps = PatternSet.from_vectors(["a"], [{"a": 0}, {"a": 1}, {"a": 0}])
    values = simulate(circuit, ps)
    assert values["y"] == 0b101  # no stray bits beyond the mask
