"""HTTP front-end: the full job lifecycle over the wire."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ArtifactCache, JobManager, make_server

#: Sampled knobs sized for the test wall-clock (two-plus blocks).
SAMPLED_CONFIG = {
    "method": "sampled", "max_patterns": 2048, "target_halfwidth": 0.01,
    "fault_sample": 48,
}


@pytest.fixture(scope="module")
def service():
    manager = JobManager(workers=2, cache=ArtifactCache())
    server = make_server(manager, "127.0.0.1", 0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield base, manager
    server.shutdown()
    server.server_close()
    manager.shutdown(wait=False)


def request(base, method, path, body=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    req = urllib.request.Request(base + path, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=60) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def poll_result(base, job_id, deadline_s=120.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        code, body = request(base, "GET", f"/jobs/{job_id}/result")
        if code != 202:
            return code, body
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish in {deadline_s}s")


def test_healthz(service):
    base, _ = service
    code, health = request(base, "GET", "/healthz")
    assert code == 200
    assert health["status"] == "ok"
    assert health["worker_crashes"] == 0
    assert health["degraded_jobs"] == 0
    assert health["workers"] == 2


def test_submit_poll_result_and_cache_hit(service):
    base, _ = service
    code, sub = request(base, "POST", "/jobs",
                        {"circuit": "c432", "config": SAMPLED_CONFIG})
    assert code == 201
    assert sub["state"] in ("queued", "running")
    assert sub["method"] == "sampled"

    code, final = poll_result(base, sub["id"])
    assert code == 200
    assert final["state"] == "done"
    assert final["result"]["n_patterns"] >= 2 * 1024

    # Status carries the progressive snapshot history.
    code, status = request(base, "GET", f"/jobs/{sub['id']}")
    assert code == 200
    widths = [s["max_halfwidth"] for s in status["snapshots"]]
    assert len(widths) >= 2
    assert widths == sorted(widths, reverse=True)
    assert status["snapshot"]["n_patterns"] == final["result"]["n_patterns"]

    # Same payload again: served from the artifact cache, recorded in /stats.
    code, sub2 = request(base, "POST", "/jobs",
                         {"circuit": "c432", "config": SAMPLED_CONFIG})
    assert code == 201
    code, again = poll_result(base, sub2["id"])
    assert code == 200
    assert again["from_cache"] is True
    assert again["result"] == final["result"]
    code, stats = request(base, "GET", "/stats")
    assert code == 200
    assert stats["cache"]["report_hits"] >= 1
    assert stats["cache"]["circuit_hits"] >= 1
    assert stats["jobs"]["done"] >= 2
    assert stats["throughput"]            # at least one backend recorded


def test_bench_upload_roundtrip(service):
    base, _ = service
    bench = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n"
    code, sub = request(base, "POST", "/jobs",
                        {"bench": bench, "config": "fast"})
    assert code == 201
    code, final = poll_result(base, sub["id"])
    assert code == 200
    assert final["result"]["n_faults"] > 0


def test_failed_job_surfaces_structured_error(service):
    base, _ = service
    code, sub = request(base, "POST", "/jobs",
                        {"bench": "INPUT(a)\ngarbage((\n"})
    assert code == 201
    code, body = poll_result(base, sub["id"])
    assert code == 500
    assert body["state"] == "failed"
    assert body["error"]["type"] == "ParseError"
    assert "line 2" in body["error"]["message"]


def test_delete_cancels(service):
    base, manager = service
    # A job that will not converge soon, so DELETE lands while queued or
    # running either way.
    slow = {"method": "sampled", "max_patterns": 1 << 18,
            "target_halfwidth": 0.002, "fault_sample": 128}
    code, sub = request(base, "POST", "/jobs",
                        {"circuit": "c880", "config": slow})
    assert code == 201
    code, status = request(base, "DELETE", f"/jobs/{sub['id']}")
    assert code == 200
    manager.wait(sub["id"], timeout=120)
    code, body = request(base, "GET", f"/jobs/{sub['id']}/result")
    assert code == 410
    assert body["state"] == "cancelled"


def test_jobs_listing(service):
    base, _ = service
    code, body = request(base, "GET", "/jobs")
    assert code == 200
    assert isinstance(body["jobs"], list) and body["jobs"]
    assert "snapshots" not in body["jobs"][0]     # summaries stay light


def test_request_validation(service):
    base, _ = service
    code, body = request(base, "POST", "/jobs", {"nonsense": 1})
    assert code == 400 and body["error"]["type"] == "BadRequest"
    code, body = request(base, "POST", "/jobs", {})
    assert code == 400
    code, body = request(base, "POST", "/jobs",
                         {"circuit": "c17", "config": {"bad_knob": 2}})
    assert code == 400 and "bad_knob" in body["error"]["message"]
    code, body = request(base, "GET", "/jobs/j424242")
    assert code == 404 and body["error"]["type"] == "NotFound"
    code, body = request(base, "GET", "/no/such/route")
    assert code == 404
    code, body = request(base, "DELETE", "/jobs/j424242")
    assert code == 404


def test_verilog_upload_roundtrip(service):
    base, _ = service
    verilog = (
        "module tiny (a, b, y);\ninput a, b;\noutput y;\n"
        "and (y, a, b);\nendmodule\n"
    )
    code, sub = request(base, "POST", "/jobs",
                        {"verilog": verilog, "config": "fast"})
    assert code == 201
    code, final = poll_result(base, sub["id"])
    assert code == 200
    assert final["result"]["n_faults"] > 0
