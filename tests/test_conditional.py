"""Tests for the one-level conditional evaluator."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder, Topology
from repro.probability.conditional import ConditionalEvaluator


def build_chain():
    b = CircuitBuilder("chain")
    x, y = b.inputs("x", "y")
    n1 = b.and_("n1", x, y)
    n2 = b.not_("n2", n1)
    b.output(n2)
    return b.build()


def base_probs(circuit, values=None):
    """Tree-rule probabilities as a base estimate."""
    from repro.circuit.types import gate_probability

    probs = dict(values or {})
    for node in circuit.nodes:
        if circuit.is_input(node):
            probs.setdefault(node, 0.5)
        else:
            gate = circuit.gates[node]
            probs[node] = gate_probability(
                gate.gtype, [probs[s] for s in gate.inputs], gate.table
            )
    return probs


def test_condition_on_ancestor():
    circuit = build_chain()
    topo = Topology(circuit)
    evaluator = ConditionalEvaluator(topo, depth=None)
    base = base_probs(circuit)
    # P(n1 | x=1) = p_y, P(n1 | x=0) = 0.
    assert evaluator.probability("n1", {"x": 1}, base) == pytest.approx(0.5)
    assert evaluator.probability("n1", {"x": 0}, base) == 0.0
    # Through the inverter.
    assert evaluator.probability("n2", {"x": 0}, base) == 1.0


def test_condition_on_self():
    circuit = build_chain()
    evaluator = ConditionalEvaluator(Topology(circuit), depth=None)
    base = base_probs(circuit)
    assert evaluator.probability("n1", {"n1": 1}, base) == 1.0
    assert evaluator.probability("n1", {"n1": 0}, base) == 0.0


def test_unrelated_condition_returns_base():
    circuit = build_chain()
    evaluator = ConditionalEvaluator(Topology(circuit), depth=None)
    base = base_probs(circuit)
    # y's value does not affect x.
    assert evaluator.probability("x", {"y": 1}, base) == base["x"]


def test_depth_bound_cuts_influence():
    circuit = build_chain()
    evaluator = ConditionalEvaluator(Topology(circuit), depth=1)
    base = base_probs(circuit)
    # n2 is 2 levels from x; with depth=1 the condition is out of range.
    assert evaluator.probability("n2", {"x": 0}, base) == base["n2"]


def test_influence_sign():
    circuit = build_chain()
    evaluator = ConditionalEvaluator(Topology(circuit), depth=None)
    base = base_probs(circuit)
    assert evaluator.influence("n1", "x", base) == pytest.approx(0.5)
    assert evaluator.influence("n2", "x", base) == pytest.approx(-0.5)


def test_multi_condition_chain():
    b = CircuitBuilder("two")
    x, y, z = b.inputs("x", "y", "z")
    n1 = b.or_("n1", x, y)
    n2 = b.and_("n2", n1, z)
    b.output(n2)
    circuit = b.build()
    evaluator = ConditionalEvaluator(Topology(circuit), depth=None)
    base = base_probs(circuit)
    # P(n2 | x=0, z=1) = P(y) = 0.5; P(n2 | x=1, z=1) = 1.
    assert evaluator.probability(
        "n2", {"x": 0, "z": 1}, base
    ) == pytest.approx(0.5)
    assert evaluator.probability(
        "n2", {"x": 1, "z": 1}, base
    ) == pytest.approx(1.0)
