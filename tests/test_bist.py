"""Tests for the BIST substrate: LFSR, weighting network, BILBO, MISR."""

from __future__ import annotations

import pytest

from repro.bist import (
    LFSR,
    MISR,
    PRIMITIVE_TAPS,
    WeightedGenerator,
    aliasing_probability,
    bilbo_cost,
    circuit_signature,
    compare_self_test,
    lfsr_patterns,
    quantize_probability,
)
from repro.circuits import c17
from repro.errors import ReproError
from repro.logicsim import PatternSet


@pytest.mark.parametrize("width", [2, 3, 4, 5, 8, 10, 16])
def test_lfsr_maximal_period(width):
    assert LFSR(width).period() == (1 << width) - 1


def test_lfsr_validation():
    with pytest.raises(ReproError):
        LFSR(1)
    with pytest.raises(ReproError):
        LFSR(8, seed=0)
    with pytest.raises(ReproError):
        LFSR(8, taps=(9, 1))
    with pytest.raises(ReproError):
        LFSR(37)  # no tap table entry


def test_lfsr_states_deterministic():
    a = LFSR(8, seed=5).states(16)
    b = LFSR(8, seed=5).states(16)
    assert a == b
    assert len(set(a)) == 16  # no repeat within the period


def test_lfsr_bit_stream():
    lfsr = LFSR(4, seed=1)
    stream = lfsr.bit_stream()
    bits = [next(stream) for _ in range(15)]
    assert set(bits) <= {0, 1}
    assert sum(bits) == 8  # maximal-length property: 2^(n-1) ones


def test_lfsr_patterns_balanced():
    patterns = lfsr_patterns([f"i{k}" for k in range(6)], 1000, seed=3)
    for name, freq in patterns.observed_probabilities().items():
        assert freq == pytest.approx(0.5, abs=0.06), name


def test_lfsr_patterns_width_checks():
    with pytest.raises(ReproError):
        lfsr_patterns(["a", "b", "c"], 10, width=2)


def test_quantize_probability():
    assert quantize_probability(0.7, 16) == (11, 16)
    assert quantize_probability(0.0, 16) == (1, 16)  # never degenerate
    assert quantize_probability(1.0, 16) == (15, 16)
    with pytest.raises(ReproError):
        quantize_probability(0.5, 12)  # not a power of two


def test_weight_plan_costs():
    generator = WeightedGenerator(
        ["a", "b", "c"], {"a": 0.5, "b": 0.75, "c": 11 / 16}
    )
    plans = generator.plans
    assert plans["a"].gate_count == 0  # 0.5 is free
    assert plans["b"].gate_count == 1  # 0.75 = 0.11b -> one OR
    assert plans["c"].gate_count == 3  # 0.1011b -> three gates
    assert generator.extra_gates == 4


def test_weight_plan_realized_values():
    generator = WeightedGenerator(["x"], {"x": 0.13})  # Table 4's 0.13
    assert generator.realized_probabilities()["x"] == pytest.approx(2 / 16)


def test_weighted_generator_statistics():
    probs = {"a": 0.8125, "b": 0.5, "c": 0.0625, "d": 0.9375}
    generator = WeightedGenerator(list(probs), probs)
    patterns = generator.patterns(30000, seed=2)
    observed = patterns.observed_probabilities()
    for name in probs:
        target = generator.realized_probabilities()[name]
        assert observed[name] == pytest.approx(target, abs=0.02), name


def test_weighted_generator_missing_probability():
    with pytest.raises(ReproError):
        WeightedGenerator(["a", "b"], {"a": 0.5})


def test_bilbo_cost_and_plan():
    cost = bilbo_cost(10, 6)
    assert cost.cells == 16
    assert cost.gate_equivalents == pytest.approx(16 * 7.0)
    generator = WeightedGenerator(["a"], {"a": 0.9375})
    plan = compare_self_test(10, 6, 1_000_000, 5_000, generator)
    assert plan.speedup == pytest.approx(200.0)
    assert 0.0 < plan.overhead_fraction < 0.1


def test_misr_distinguishes_responses():
    misr_a = MISR(16)
    misr_b = MISR(16)
    sig_a = misr_a.compress([1, 2, 3, 4, 5])
    sig_b = misr_b.compress([1, 2, 3, 4, 6])
    assert sig_a != sig_b


def test_misr_deterministic_and_resettable():
    misr = MISR(16)
    first = misr.compress([7, 9, 11])
    misr.reset()
    assert misr.compress([7, 9, 11]) == first


def test_circuit_signature_detects_stem_fault():
    circuit = c17()
    patterns = PatternSet.random(circuit.inputs, 128, seed=4)
    good = circuit_signature(circuit, patterns)
    faulty = circuit_signature(
        circuit, patterns, overrides={"G11": 0}
    )
    assert good != faulty


def test_aliasing_probability():
    assert aliasing_probability(16) == pytest.approx(2.0 ** -16)


def test_misr_validation():
    with pytest.raises(ReproError):
        MISR(1)
    with pytest.raises(ReproError):
        MISR(37)
