"""Tests for observability propagation (paper §3)."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.detection import ObservabilityAnalyzer, combine_chain
from repro.errors import EstimationError
from repro.probability import SignalProbabilityEstimator


def analyzed(circuit, **kwargs):
    probs = SignalProbabilityEstimator(circuit).run()
    return ObservabilityAnalyzer(circuit, **kwargs).run(probs), probs


def test_combine_chain_algebra():
    assert combine_chain([]) == 0.0
    assert combine_chain([0.3]) == pytest.approx(0.3)
    assert combine_chain([0.3, 0.4]) == pytest.approx(0.3 + 0.4 - 2 * 0.12)
    # Associativity.
    assert combine_chain([0.2, 0.5, 0.7]) == pytest.approx(
        combine_chain([combine_chain([0.2, 0.5]), 0.7])
    )


def test_primary_output_fully_observable():
    b = CircuitBuilder("wire")
    a = b.input("a")
    b.output(b.buf("y", a))
    circuit = b.build()
    obs, _ = analyzed(circuit)
    assert obs.stem("y") == 1.0
    assert obs.stem("a") == 1.0  # buffer difference probability is 1


def test_and_pin_observability_is_side_probability():
    b = CircuitBuilder("and2")
    x, y = b.inputs("x", "y")
    b.output(b.and_("z", x, y))
    circuit = b.build()
    probs = SignalProbabilityEstimator(circuit).run({"x": 0.5, "y": 0.3})
    obs = ObservabilityAnalyzer(circuit).run(probs)
    assert obs.pin("z", 0) == pytest.approx(0.3)  # side input y
    assert obs.pin("z", 1) == pytest.approx(0.5)
    assert obs.stem("x") == pytest.approx(0.3)


def test_xor_pin_models_differ():
    b = CircuitBuilder("xor2")
    x, y = b.inputs("x", "y")
    b.output(b.xor("z", x, y))
    circuit = b.build()
    probs = SignalProbabilityEstimator(circuit).run()
    exact = ObservabilityAnalyzer(circuit, pin_model="boolean_difference").run(probs)
    indep = ObservabilityAnalyzer(circuit, pin_model="independent").run(probs)
    assert exact.pin("z", 0) == pytest.approx(1.0)
    assert indep.pin("z", 0) == pytest.approx(0.5)


def test_stem_models_on_fanout():
    """A stem feeding two XOR paths to two POs: chain vs multi-output."""
    b = CircuitBuilder("fan")
    x, y, z = b.inputs("x", "y", "z")
    o1 = b.xor("o1", x, y)
    o2 = b.xor("o2", x, z)
    b.output(o1)
    b.output(o2)
    circuit = b.build()
    probs = SignalProbabilityEstimator(circuit).run()
    chain = ObservabilityAnalyzer(
        circuit, stem_model="chain", pin_model="boolean_difference"
    ).run(probs)
    multi = ObservabilityAnalyzer(
        circuit, stem_model="multi_output", pin_model="boolean_difference"
    ).run(probs)
    # Both branches observable with probability 1 (exact XOR difference):
    # the "exactly one path" chain model cancels them, the multi-output
    # model saturates at 1 — the Fig. 6 bias in miniature.
    assert chain.stem("x") == pytest.approx(0.0)
    assert multi.stem("x") == pytest.approx(1.0)


def test_po_with_further_fanout():
    """A node that is both PO and internal stem: PO contributes s = 1."""
    b = CircuitBuilder("po_stem")
    x, y = b.inputs("x", "y")
    n = b.and_("n", x, y)
    m = b.not_("m", n)
    b.output(n)
    b.output(m)
    circuit = b.build()
    obs, _ = analyzed(circuit, stem_model="multi_output")
    assert obs.stem("n") == pytest.approx(1.0)


def test_unobservable_without_path():
    """Dangling logic has observability 0."""
    b = CircuitBuilder("dangle")
    x, y = b.inputs("x", "y")
    b.and_("dead", x, y)
    b.output(b.not_("out", x))
    circuit = b.build()
    obs, _ = analyzed(circuit)
    assert obs.stem("dead") == 0.0
    assert obs.pin("dead", 1) == 0.0
    assert obs.stem("y") == 0.0


def test_invalid_models_rejected():
    b = CircuitBuilder("x")
    a = b.input("a")
    b.output(b.buf("y", a))
    circuit = b.build()
    with pytest.raises(EstimationError):
        ObservabilityAnalyzer(circuit, stem_model="nope")
    with pytest.raises(EstimationError):
        ObservabilityAnalyzer(circuit, pin_model="nope")


def test_observability_attenuates_through_and_chain():
    """s decays by the side-probability per AND level (chain of ANDs)."""
    b = CircuitBuilder("chain")
    current = b.input("i0")
    for level in range(1, 5):
        nxt = b.input(f"i{level}")
        current = b.and_(f"n{level}", current, nxt)
    b.output(current)
    circuit = b.build()
    obs, probs = analyzed(circuit)
    # i0 must pass 4 AND gates, each with side probability ~0.5, 0.25, ...
    expected = 1.0
    for level in range(1, 5):
        expected *= probs[f"i{level}"] if level == 1 else probs[f"n{level - 1}"]
    # match: s(i0) = prod of side input probabilities
    side = probs["i1"]
    s = obs.stem("i0")
    assert s < 0.1  # strongly attenuated
    assert s == pytest.approx(
        probs["i1"] * probs["i2"] * probs["i3"] * probs["i4"], abs=1e-9
    )
