"""repro.telemetry.profiling: the phase profiler and memory accounting.

Covers the PR 10 observability contract: table/collapsed invariants,
the kill-switch and allocation-free off-path, engine/CLI/service
activation, cone-cache counters, cache byte estimates, and the
telemetry overhead envelope on the acceptance fault-sim workload.
"""

from __future__ import annotations

import json
import time
import tracemalloc

import pytest

from repro.api import AnalysisEngine, ProtestConfig
from repro.circuits.library import build
from repro.cli import main as cli_main
from repro.errors import ServiceError
from repro.faults.simulator import FaultSimulator
from repro.kernel.compiled import compiled_artifacts
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate
from repro.service import ArtifactCache, JobManager
from repro.telemetry.metrics import set_enabled
from repro.telemetry.profiling import (
    PhaseProfiler,
    active_profiler,
    peak_rss_bytes,
    phase_if_active,
)
from repro.telemetry.tracing import clear_spans


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    set_enabled(True)
    clear_spans()
    yield
    set_enabled(True)
    clear_spans()


# -- the profiler itself -----------------------------------------------------


class TestPhaseProfiler:
    def test_nested_phases_and_self_time(self):
        profiler = PhaseProfiler()
        with profiler.activate():
            started = profiler.push("outer")
            profiler.add("child_a", 0.5)
            profiler.add("child_b", 0.25, count=3)
            profiler.pop(started, duration=1.0)
        rows = {row["path"]: row for row in profiler.table()}
        assert rows["outer;child_a"]["self_s"] == pytest.approx(0.5)
        assert rows["outer;child_b"]["calls"] == 3
        outer = rows["outer"]
        assert outer["cum_s"] == pytest.approx(1.0)
        assert outer["self_s"] == pytest.approx(0.25)

    def test_self_times_sum_to_root_cumulative(self):
        profiler = PhaseProfiler()
        with profiler.activate():
            started = profiler.push("a")
            profiler.add("b", 0.2)
            profiler.pop(started, duration=0.4)
            profiler.add("c", 0.1)
            profiler.add_many({
                ("kernel", "level0", "nand"): [0.05, 7],
                ("kernel", "level0", "xor"): [0.03, 2],
            })
        rows = profiler.table()
        self_total = sum(row["self_s"] for row in rows)
        root_total = sum(row["cum_s"] for row in rows if row["depth"] == 0)
        assert self_total == pytest.approx(root_total)

    def test_add_many_tuple_paths_synthesize_parents(self):
        profiler = PhaseProfiler()
        profiler.add_many({
            ("kernel", "level0", "nand"): [0.2, 4],
            ("kernel", "level0", "and"): [0.1, 2],
        })
        rows = {row["path"]: row for row in profiler.table()}
        # The intermediate nodes were never pushed, yet they roll up
        # their children so the table nests correctly.
        assert rows["kernel"]["cum_s"] == pytest.approx(0.3)
        assert rows["kernel"]["calls"] == 0
        assert rows["kernel;level0"]["cum_s"] == pytest.approx(0.3)
        assert rows["kernel"]["self_s"] == pytest.approx(0.0)

    def test_collapsed_stack_lines(self):
        profiler = PhaseProfiler()
        with profiler.activate():
            with profiler.phase("a"):
                profiler.add("b", 0.002)
        lines = profiler.collapsed()
        assert "a;b 2000" in lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path and int(value) > 0

    def test_payload_is_json_ready(self):
        profiler = PhaseProfiler()
        with profiler.activate():
            profiler.add("stage", 0.01)
            profiler.record_memory("peak_rss_bytes.stage", 12345)
        payload = json.loads(json.dumps(profiler.to_payload()))
        assert payload["activations"] == 1
        assert payload["wall_s"] > 0
        assert payload["memory"]["peak_rss_bytes.stage"] == 12345
        assert payload["memory"]["peak_rss_bytes"] > 0
        assert payload["phases"][0]["phase"] == "stage"

    def test_threads_keep_separate_stacks(self):
        import threading

        profiler = PhaseProfiler()

        def worker():
            with profiler.phase("worker_phase"):
                profiler.add("inner", 0.01)

        with profiler.activate():
            with profiler.phase("main_phase"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        paths = {row["path"] for row in profiler.table()}
        # The worker's phases do not nest under the main thread's stack.
        assert "worker_phase;inner" in paths
        assert "main_phase;worker_phase;inner" not in paths


class TestActivation:
    def test_kill_switch_makes_activation_a_noop(self):
        set_enabled(False)
        profiler = PhaseProfiler()
        with profiler.activate():
            assert active_profiler() is None
            with phase_if_active("ignored"):
                pass
        payload = profiler.to_payload()
        assert payload["activations"] == 0
        assert payload["wall_s"] == 0.0
        assert payload["phases"] == []

    def test_reentrant_activation_counts_once(self):
        profiler = PhaseProfiler()
        with profiler.activate():
            with profiler.activate():
                assert active_profiler() is profiler
        assert profiler.to_payload()["activations"] == 1

    def test_off_path_is_allocation_free(self):
        assert active_profiler() is None
        probe = active_profiler  # hoisted, as instrumented code does
        for _ in range(64):
            probe()  # warm any lazy state
        tracemalloc.start()
        before = tracemalloc.get_traced_memory()[0]
        for _ in range(10_000):
            probe()
        after = tracemalloc.get_traced_memory()[0]
        tracemalloc.stop()
        # Any per-call allocation would show as ~hundreds of KB over
        # 10k calls; a constant few bytes is loop scaffolding.
        assert after - before < 512


# -- engine / CLI integration ------------------------------------------------


class TestEngineProfile:
    def test_analyze_profile_self_times_within_wall(self):
        engine = AnalysisEngine(build("c432"), "paper", profile=True)
        engine.analyze()
        payload = engine.profile_report()
        assert payload["phases"]
        # The acceptance invariant: per-stage self times account for
        # the activation wall clock (within 10%).
        assert 0 < payload["self_total_s"] <= payload["wall_s"] * 1.10
        paths = {row["path"] for row in payload["phases"]}
        assert any(path.startswith("engine.") for path in paths)

    def test_profile_records_estimator_and_memory(self):
        engine = AnalysisEngine(build("c17"), "paper", profile=True)
        engine.analyze()
        payload = engine.profile_report()
        paths = {row["path"] for row in payload["phases"]}
        assert "engine.signal;estimator.influence" in paths
        assert any("estimator.cone_schedule" in path for path in paths)
        memory = payload["memory"]
        assert memory["peak_rss_bytes"] > 0
        assert memory["peak_rss_bytes.signal"] > 0
        assert "cone_cache" in memory

    def test_unprofiled_engine_has_no_profiler(self):
        engine = AnalysisEngine(build("c17"), "paper")
        engine.analyze()
        assert engine.profiler is None

    def test_cli_profile_flag_writes_payload(self, tmp_path, capsys):
        out = tmp_path / "prof.json"
        assert cli_main(["analyze", "c17", "--profile", str(out)]) == 0
        assert "profile written to" in capsys.readouterr().err
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["phases"]
        assert 0 < payload["self_total_s"] <= payload["wall_s"] * 1.10
        paths = {row["path"] for row in payload["phases"]}
        # The CLI root phase wraps the engine stages.
        assert any(path.startswith("cli.analyze;") for path in paths)

    def test_cli_fsim_profile_has_kernel_detail(self, tmp_path):
        out = tmp_path / "prof.json"
        assert cli_main([
            "fsim", "c17", "--count", "32", "--backend", "python",
            "--profile", str(out),
        ]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        paths = {row["path"] for row in payload["phases"]}
        assert any("backend.fault_sim_words;python" in path
                   for path in paths)
        assert any(";kernel;" in path for path in paths)


# -- cone-cache counters -----------------------------------------------------


class TestConeCacheCounters:
    def test_single_fault_path_counts_hits_and_misses(self):
        circuit = build("c432")
        simulator = FaultSimulator(circuit, use_kernel=True)
        patterns = PatternSet.random(circuit.inputs, 32, seed=3)
        good = simulate(circuit, patterns)
        for fault in simulator.faults[:8]:
            simulator.detection_word(fault, good, patterns.mask)
        artifact = simulator._compiled
        assert artifact in compiled_artifacts(circuit)
        first = artifact.cache_info()
        assert first["misses"] > 0
        assert first["resident_elems"] > 0
        assert first["budget_elems"] == artifact.cone_cache_budget
        # A fresh simulator shares the compiled artifact, so its cone
        # queries hit the warm cache.
        resim = FaultSimulator(circuit, use_kernel=True)
        assert resim._compiled is artifact
        for fault in resim.faults[:8]:
            resim.detection_word(fault, good, patterns.mask)
        second = artifact.cache_info()
        assert second["hits"] > first["hits"]
        assert second["misses"] == first["misses"]

    def test_budget_overflow_evicts(self):
        circuit = build("c432")
        simulator = FaultSimulator(circuit, use_kernel=True)
        patterns = PatternSet.random(circuit.inputs, 16, seed=4)
        good = simulate(circuit, patterns)
        artifact = simulator._compiled
        artifact.cone_cache_budget = 64  # tiny: force churn
        for fault in simulator.faults[:32]:
            simulator.detection_word(fault, good, patterns.mask)
        info = artifact.cache_info()
        assert info["evictions"] > 0
        # Each cache retains at least its newest slice, never the bulk.
        assert 1 <= info["resident_slices"] <= 4

    def test_engine_cache_info_carries_cone_section(self):
        engine = AnalysisEngine(build("c17"), "paper")
        engine.analyze()
        info = engine.cache_info()
        cone = info["cone_cache"]
        assert set(cone) >= {"hits", "misses", "evictions",
                             "resident_elems", "budget_elems"}
        assert info["peak_rss_bytes"] > 0


# -- service profile knob ----------------------------------------------------


SAMPLED = ProtestConfig(
    method="sampled", max_patterns=2048, target_halfwidth=0.01,
    fault_sample=48, name="prof-test",
)


class TestServiceProfile:
    def test_profiled_job_carries_payload_cache_hit_does_not(self):
        manager = JobManager(workers=1, cache=ArtifactCache())
        try:
            job = manager.wait(
                manager.submit(circuit="c17", config=SAMPLED,
                               profile=True).id,
                timeout=120,
            )
            assert job.state == "done"
            status = manager.status(job.id)
            profile = status["profile"]
            assert profile and profile["phases"]
            assert profile["self_total_s"] <= profile["wall_s"] * 1.10
            assert any(row["path"].startswith("engine.sampling")
                       for row in profile["phases"])
            # The summary listing stays slim.
            listed = [j for j in manager.jobs() if j["id"] == job.id]
            assert listed and "profile" not in listed[0]
            # A cache hit runs no engine, so there is nothing to profile.
            cached = manager.wait(
                manager.submit(circuit="c17", config=SAMPLED,
                               profile=True).id,
                timeout=120,
            )
            assert cached.from_cache is True
            assert manager.status(cached.id)["profile"] is None
        finally:
            manager.shutdown(wait=False)

    def test_profile_flag_is_validated(self):
        manager = JobManager(workers=1, cache=ArtifactCache())
        try:
            with pytest.raises(ServiceError):
                manager.submit(circuit="c17", config=SAMPLED, profile="yes")
        finally:
            manager.shutdown(wait=False)


# -- cache byte accounting ---------------------------------------------------


class TestCacheBytes:
    def test_byte_estimates_track_put_and_clear(self):
        cache = ArtifactCache()
        info = cache.cache_info()
        assert info["circuit_bytes"] == 0
        assert info["report_bytes"] == 0
        cache.intern_circuit(build("c17"))
        cache.put_report(("h", "c17", "analytic", ()), {"n_faults": 22})
        info = cache.cache_info()
        assert info["circuit_bytes"] > 0
        assert info["report_bytes"] > 0
        assert info["total_bytes"] == (
            info["circuit_bytes"] + info["report_bytes"]
        )
        cache.clear()
        info = cache.cache_info()
        assert info["total_bytes"] == 0

    def test_manager_stats_surface_memory(self):
        manager = JobManager(workers=1, cache=ArtifactCache())
        try:
            stats = manager.stats()
            assert stats["memory"]["peak_rss_bytes"] > 0
            assert stats["memory"]["cache_bytes"] >= 0
        finally:
            manager.shutdown(wait=False)


# -- overhead envelope -------------------------------------------------------


def test_telemetry_overhead_envelope_on_mul24_fault_sim():
    """With no profiler active and telemetry disabled, the fault-sim
    word loop must run at the same speed as with telemetry enabled —
    the PR 8 envelope (|overhead| < 2%) still holds with the profiler
    instrumentation merged (its off-path is one contextvar read)."""
    circuit = build("mul24")
    n_patterns = 64
    patterns = PatternSet.random(circuit.inputs, n_patterns, seed=7)
    simulator = FaultSimulator(circuit, use_kernel=True)
    simulator.run(patterns, block_size=n_patterns, drop_detected=False)

    def one_run():
        start = time.perf_counter()
        simulator.run(patterns, block_size=n_patterns, drop_detected=False)
        return time.perf_counter() - start

    def attempt():
        # Interleave the two states so scheduler drift hits both alike.
        enabled_s = disabled_s = float("inf")
        try:
            for _ in range(5):
                set_enabled(True)
                enabled_s = min(enabled_s, one_run())
                set_enabled(False)
                assert active_profiler() is None
                disabled_s = min(disabled_s, one_run())
        finally:
            set_enabled(True)
        return 100.0 * (enabled_s / disabled_s - 1.0)

    # Shared-runner wall clocks are noisy at this scale, so a single
    # sample cannot gate at 2%: retry a few times and keep the best.  A
    # *systematic* overhead beyond the envelope fails every attempt;
    # symmetric noise lands inside it almost immediately.
    overheads = []
    for _ in range(4):
        overheads.append(attempt())
        if abs(overheads[-1]) < 2.0:
            break
    best = min(overheads, key=abs)
    assert abs(best) < 2.0, (
        f"telemetry overhead outside the 2% envelope on every attempt: "
        f"{[f'{o:+.2f}%' for o in overheads]}"
    )


def test_peak_rss_is_positive():
    assert peak_rss_bytes() > 0
