"""Tests for the reporting helpers (tables, scatter, statistics)."""

from __future__ import annotations

import pytest

from repro.report import (
    accuracy_stats,
    ascii_table,
    format_count,
    format_prob,
    pearson,
    scatter_plot,
)


def test_ascii_table_alignment():
    text = ascii_table(["name", "N"], [["DIV", 499960], ["COMP", 292808220]])
    lines = text.splitlines()
    assert len({len(line) for line in lines}) == 1  # rectangular
    assert "DIV" in text and "292808220" in text


def test_ascii_table_title():
    text = ascii_table(["a"], [["1"]], title="Table 2")
    assert text.startswith("Table 2")


def test_ascii_table_ragged_rows():
    text = ascii_table(["a", "b", "c"], [["1"], ["1", "2", "3"]])
    assert "3" in text


def test_format_count():
    assert format_count(212) == "212"
    assert format_count(292808220) == "292 808 220"
    assert format_count(float("inf")) == "inf"


def test_format_prob():
    assert format_prob(0.625) == "0.62"
    assert format_prob(0.9375, 4) == "0.9375"


def test_pearson_perfect_and_anticorrelated():
    xs = [0.1, 0.2, 0.5, 0.9]
    assert pearson(xs, xs) == pytest.approx(1.0)
    assert pearson(xs, [1 - x for x in xs]) == pytest.approx(-1.0)


def test_pearson_degenerate():
    assert pearson([1.0, 1.0], [0.2, 0.9]) == 0.0
    assert pearson([0.5], [0.5]) == 0.0
    with pytest.raises(ValueError):
        pearson([1, 2], [1])


def test_accuracy_stats():
    stats = accuracy_stats([0.2, 0.4, 0.6], [0.3, 0.4, 0.9])
    assert stats.max_error == pytest.approx(0.3)
    assert stats.mean_error == pytest.approx((0.1 + 0.0 + 0.3) / 3)
    assert stats.under_estimated == pytest.approx(2 / 3)
    assert stats.n == 3
    row = stats.row("ALU")
    assert row[0] == "ALU" and len(row) == 4


def test_accuracy_stats_validation():
    with pytest.raises(ValueError):
        accuracy_stats([], [])
    with pytest.raises(ValueError):
        accuracy_stats([0.1], [0.1, 0.2])


def test_scatter_plot_marks_points():
    text = scatter_plot([0.0, 1.0, 0.5, 0.5], [0.0, 1.0, 0.5, 0.5])
    assert "*" in text  # the duplicated midpoint densifies
    assert "+" in text
    assert "P_SIM" in text
    lines = text.splitlines()
    assert any(line.startswith(" 1.0") for line in lines)
    assert any(line.startswith(" 0.0") for line in lines)


def test_scatter_plot_clamps_out_of_range():
    text = scatter_plot([-0.5, 1.5], [2.0, -1.0])
    assert "+" in text


def test_scatter_plot_validation():
    with pytest.raises(ValueError):
        scatter_plot([0.1], [])
    with pytest.raises(ValueError):
        scatter_plot([0.1], [0.1], width=3)
