"""Functional verification of the arithmetic circuits (adders, MULT, DIV)."""

from __future__ import annotations

import random

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import (
    array_multiplier,
    divider,
    divider_reference,
    mult,
    mult_reference,
    ripple_add,
    ripple_carry_adder,
    ripple_subtract,
)
from repro.logicsim import PatternSet, simulate
from tests.conftest import bits_to_int


def run_exhaustive(circuit):
    ps = PatternSet.exhaustive(circuit.inputs)
    return ps, simulate(circuit, ps)


def read_bus(values, prefix, width, j):
    return sum(((values[f"{prefix}{i}"] >> j) & 1) << i for i in range(width))


def test_ripple_carry_adder_exhaustive():
    circuit = ripple_carry_adder("add4", 4).build()
    ps, values = run_exhaustive(circuit)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        a = bits_to_int(vec, [f"A{i}" for i in range(4)])
        b = bits_to_int(vec, [f"B{i}" for i in range(4)])
        total = read_bus(values, "S", 4, j) + (((values["COUT"] >> j) & 1) << 4)
        assert total == a + b + vec["CIN"]


def test_ripple_add_unequal_widths():
    b = CircuitBuilder("uneq")
    xs = b.bus("X", 5)
    ys = b.bus("Y", 2)
    sums, carry = ripple_add(b, xs, ys)
    for i, s in enumerate(sums):
        b.output(s, alias=f"S{i}")
    b.output(carry, alias="C")
    circuit = b.build()
    ps, values = run_exhaustive(circuit)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        x = bits_to_int(vec, [f"X{i}" for i in range(5)])
        y = bits_to_int(vec, [f"Y{i}" for i in range(2)])
        total = read_bus(values, "S", 5, j) + (((values["C"] >> j) & 1) << 5)
        assert total == x + y


def test_ripple_add_rejects_empty():
    b = CircuitBuilder("bad")
    xs = b.bus("X", 2)
    with pytest.raises(ValueError):
        ripple_add(b, xs, [])


def test_ripple_subtract_exhaustive():
    b = CircuitBuilder("sub")
    xs = b.bus("X", 4)
    ys = b.bus("Y", 3)
    diffs, borrow = ripple_subtract(b, xs, ys)
    for i, d in enumerate(diffs):
        b.output(d, alias=f"D{i}")
    b.output(borrow, alias="BO")
    circuit = b.build()
    ps, values = run_exhaustive(circuit)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        x = bits_to_int(vec, [f"X{i}" for i in range(4)])
        y = bits_to_int(vec, [f"Y{i}" for i in range(3)])
        diff = read_bus(values, "D", 4, j)
        bo = (values["BO"] >> j) & 1
        assert bo == (1 if x < y else 0)
        assert diff == (x - y) % 16


def test_ripple_subtract_rejects_wider_subtrahend():
    b = CircuitBuilder("bad")
    xs = b.bus("X", 2)
    ys = b.bus("Y", 3)
    with pytest.raises(ValueError):
        ripple_subtract(b, xs, ys)


def test_array_multiplier_small_exhaustive():
    circuit = array_multiplier(3)
    ps, values = run_exhaustive(circuit)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        a = bits_to_int(vec, [f"A{i}" for i in range(3)])
        b = bits_to_int(vec, [f"B{i}" for i in range(3)])
        assert read_bus(values, "P", 6, j) == a * b


def test_array_multiplier_rejects_width_one():
    with pytest.raises(ValueError):
        array_multiplier(1)


def test_mult_small_exhaustive():
    circuit = mult(2, name="MULT2")
    ps, values = run_exhaustive(circuit)  # 8 inputs -> 256 patterns
    width = len([o for o in circuit.outputs])
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        a = bits_to_int(vec, ["A0", "A1"])
        b = bits_to_int(vec, ["B0", "B1"])
        c = bits_to_int(vec, ["C0", "C1"])
        d = bits_to_int(vec, ["D0", "D1"])
        assert read_bus(values, "F", width, j) == mult_reference(a, b, c, d)


def test_mult_full_random():
    circuit = mult()
    rng = random.Random(20)
    rows = []
    for _ in range(500):
        a, b, c, d = (rng.getrandbits(8) for _ in range(4))
        vec = {}
        for name, val in (("A", a), ("B", b), ("C", c), ("D", d)):
            vec.update({f"{name}{i}": (val >> i) & 1 for i in range(8)})
        rows.append((a, b, c, d, vec))
    ps = PatternSet.from_vectors(circuit.inputs, [r[4] for r in rows])
    values = simulate(circuit, ps)
    for j, (a, b, c, d, _vec) in enumerate(rows):
        assert read_bus(values, "F", 17, j) == a + b + c * d


def test_mult_size_matches_paper_scale():
    # Paper: 1568 gate equivalents; our carry-propagate realization is the
    # same order of magnitude.
    from repro.circuit import gate_equivalents

    ge = gate_equivalents(mult())
    assert 400 <= ge <= 2500


def test_divider_small_exhaustive():
    circuit = divider(4, 4, name="DIV4")
    ps, values = run_exhaustive(circuit)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        d = bits_to_int(vec, [f"D{i}" for i in range(4)])
        v = bits_to_int(vec, [f"V{i}" for i in range(4)])
        if v == 0:
            continue  # division by zero unspecified
        q = read_bus(values, "Q", 4, j)
        r = read_bus(values, "R", 4, j)
        assert (q, r) == (d // v, d % v), (d, v)


def test_divider_narrow_divisor_exhaustive():
    circuit = divider(6, 3, name="DIV6x3")
    ps, values = run_exhaustive(circuit)
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        d = bits_to_int(vec, [f"D{i}" for i in range(6)])
        v = bits_to_int(vec, [f"V{i}" for i in range(3)])
        if v == 0:
            continue
        q = read_bus(values, "Q", 6, j)
        r = read_bus(values, "R", 3, j)
        assert (q, r) == (d // v, d % v)


def test_divider_full_random():
    circuit = divider()
    rng = random.Random(21)
    rows = []
    for _ in range(400):
        d = rng.getrandbits(16)
        v = rng.randrange(1, 1 << 16)
        vec = {f"D{i}": (d >> i) & 1 for i in range(16)}
        vec.update({f"V{i}": (v >> i) & 1 for i in range(16)})
        rows.append((d, v, vec))
    ps = PatternSet.from_vectors(circuit.inputs, [r[2] for r in rows])
    values = simulate(circuit, ps)
    for j, (d, v, _vec) in enumerate(rows):
        q = read_bus(values, "Q", 16, j)
        r = read_bus(values, "R", 16, j)
        assert (q, r) == divider_reference(d, v)


def test_divider_reference_rejects_zero():
    with pytest.raises(ValueError):
        divider_reference(10, 0)


def test_divider_parameter_validation():
    with pytest.raises(ValueError):
        divider(1, 1)
    with pytest.raises(ValueError):
        divider(4, 5)


def test_divider_has_no_dangling_gates():
    from repro.circuit import validate

    assert validate(divider()) == []
