"""Tests for the parallel-pattern fault simulator."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuit.types import eval_packed
from repro.circuits import c17, parity_tree
from repro.errors import SimulationError
from repro.faults import Fault, FaultSimulator, fault_universe
from repro.logicsim import PatternSet, simulate


def naive_detection_word(circuit, fault, patterns):
    """Full-resimulation reference implementation."""
    good = simulate(circuit, patterns)
    mask = patterns.mask
    forced = mask if fault.value else 0
    values = {name: patterns.words[name] for name in circuit.inputs}
    if fault.pin is None and circuit.is_input(fault.node):
        values[fault.node] = forced
    for node in circuit.nodes:
        if circuit.is_input(node):
            continue
        gate = circuit.gates[node]
        operands = [values[s] for s in gate.inputs]
        if fault.pin is not None and node == fault.node:
            operands[fault.pin] = forced
        word = eval_packed(gate.gtype, operands, mask, gate.table)
        if fault.pin is None and node == fault.node:
            word = forced
        values[node] = word
    detect = 0
    for out in circuit.outputs:
        detect |= values[out] ^ good[out]
    return detect & mask


@pytest.mark.parametrize("factory", [c17, lambda: parity_tree(6)])
def test_event_driven_matches_naive(factory):
    circuit = factory()
    patterns = PatternSet.exhaustive(circuit.inputs)
    faults = fault_universe(circuit)
    simulator = FaultSimulator(circuit, faults)
    good = simulate(circuit, patterns)
    for fault in faults:
        fast = simulator.detection_word(fault, good, patterns.mask)
        slow = naive_detection_word(circuit, fault, patterns)
        assert fast == slow, str(fault)


def test_run_counts_and_first_detection():
    circuit = c17()
    patterns = PatternSet.exhaustive(circuit.inputs)
    simulator = FaultSimulator(circuit)
    result = simulator.run(patterns, block_size=7)  # odd block size on purpose
    good = simulate(circuit, patterns)
    for fault, record in result.records.items():
        word = simulator.detection_word(fault, good, patterns.mask)
        assert record.detect_count == word.bit_count()
        if word:
            assert record.first_detect == (word & -word).bit_length() - 1
        else:
            assert record.first_detect is None


def test_c17_exhaustive_full_coverage():
    circuit = c17()
    simulator = FaultSimulator(circuit)
    result = simulator.run(PatternSet.exhaustive(circuit.inputs))
    assert result.coverage() == 1.0  # c17 has no redundant faults


def test_detection_probabilities_exact_on_exhaustive():
    circuit = c17()
    simulator = FaultSimulator(circuit)
    patterns = PatternSet.exhaustive(circuit.inputs)
    probs = simulator.detection_probabilities(patterns)
    # G22 s-a-0: counted directly from its detection word.
    good = simulate(circuit, patterns)
    fault = Fault("G22", None, 0)
    word = simulator.detection_word(fault, good, patterns.mask)
    assert probs[fault] == word.bit_count() / patterns.n_patterns


def test_drop_detected_keeps_first_detect_exact():
    circuit = c17()
    patterns = PatternSet.random(circuit.inputs, 512, seed=2)
    simulator = FaultSimulator(circuit)
    full = simulator.run(patterns, block_size=64, drop_detected=False)
    dropped = simulator.run(patterns, block_size=64, drop_detected=True)
    for fault in simulator.faults:
        assert (
            full.records[fault].first_detect
            == dropped.records[fault].first_detect
        )


def test_dropped_counts_refuse_probability_query():
    circuit = c17()
    patterns = PatternSet.random(circuit.inputs, 128, seed=2)
    simulator = FaultSimulator(circuit)
    result = simulator.run(patterns, block_size=32, drop_detected=True)
    with pytest.raises(SimulationError, match="lower bounds"):
        result.detection_probabilities()


def test_coverage_at_monotone():
    circuit = c17()
    patterns = PatternSet.random(circuit.inputs, 256, seed=9)
    result = FaultSimulator(circuit).run(patterns)
    curve = result.coverage_curve([1, 4, 16, 64, 256])
    assert all(a <= b + 1e-12 for a, b in zip(curve, curve[1:]))
    assert curve[-1] == result.coverage()


def test_undetected_listing():
    b = CircuitBuilder("blocked")
    x, y = b.inputs("x", "y")
    n1 = b.and_("n1", x, y)
    n2 = b.or_("n2", n1, x)  # n1 s-a-0 partially masked
    b.output(n2)
    circuit = b.build()
    result = FaultSimulator(circuit).run(PatternSet.exhaustive(circuit.inputs))
    undetected = result.undetected()
    assert all(
        result.records[f].first_detect is None for f in undetected
    )


def test_fault_validation_errors():
    circuit = c17()
    with pytest.raises(SimulationError, match="unknown node"):
        FaultSimulator(circuit, [Fault("nope", None, 0)])
    with pytest.raises(SimulationError, match="not a gate"):
        FaultSimulator(circuit, [Fault("G1", 0, 0)])
    with pytest.raises(SimulationError, match="out of range"):
        FaultSimulator(circuit, [Fault("G10", 5, 0)])


def test_empty_pattern_set_rejected():
    circuit = c17()
    empty = PatternSet(circuit.inputs, 0, {n: 0 for n in circuit.inputs})
    with pytest.raises(SimulationError, match="empty"):
        FaultSimulator(circuit).run(empty)


def test_block_size_validation():
    circuit = c17()
    patterns = PatternSet.random(circuit.inputs, 16, seed=0)
    with pytest.raises(SimulationError, match="positive"):
        FaultSimulator(circuit).run(patterns, block_size=0)


def test_input_stem_fault_on_output_node():
    """A fault on a node that is simultaneously a PO must self-detect."""
    b = CircuitBuilder("wire")
    a = b.input("a")
    y = b.buf("y", a)
    b.output(y)
    circuit = b.build()
    patterns = PatternSet.exhaustive(circuit.inputs)
    result = FaultSimulator(circuit).run(patterns)
    for fault, record in result.records.items():
        assert record.detect_count == 1  # one of the two patterns detects
