"""Tests for the exact engines (enumeration, BDD) and the cutting bounds."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17, comp24, parity_tree
from repro.errors import EstimationError
from repro.probability import (
    BDD,
    bdd_signal_probabilities,
    circuit_bdds,
    exact_signal_probabilities,
    interval_gate,
    pattern_weights,
    probability_bounds,
)
from repro.circuit.types import GateType


def test_pattern_weights_sum_to_one():
    weights = pattern_weights(3, [0.2, 0.7, 0.5])
    assert len(weights) == 8
    assert sum(weights) == pytest.approx(1.0)
    # Pattern 0 (all zeros) has weight (1-p0)(1-p1)(1-p2).
    assert weights[0] == pytest.approx(0.8 * 0.3 * 0.5)
    # Pattern 0b101: inputs 0 and 2 high.
    assert weights[0b101] == pytest.approx(0.2 * 0.3 * 0.5)


def test_exact_uniform_counts(reconvergent_circuit):
    exact = exact_signal_probabilities(reconvergent_circuit)
    # k = x & y & z over uniform inputs.
    assert exact["k"] == pytest.approx(1 / 8)


def test_exact_weighted(reconvergent_circuit):
    probs = {"x": 0.25, "y": 0.5, "z": 1.0}
    exact = exact_signal_probabilities(reconvergent_circuit, probs)
    assert exact["k"] == pytest.approx(0.25 * 0.5 * 1.0)


def test_exact_input_cap():
    circuit = parity_tree(20)
    with pytest.raises(EstimationError, match="capped"):
        exact_signal_probabilities(circuit)
    # Raising the cap explicitly works (parity of 20 uniform bits = 0.5).
    exact = exact_signal_probabilities(
        circuit, nodes=[circuit.outputs[0]], max_inputs=20
    )
    assert exact[circuit.outputs[0]] == pytest.approx(0.5)


# --- BDD ------------------------------------------------------------------


def test_bdd_variable_and_negation():
    bdd = BDD(["a", "b"])
    a = bdd.var("a")
    na = bdd.negate(a)
    assert bdd.negate(na) == a  # involution via unique table
    assert bdd.probability(a, {"a": 0.3, "b": 0.9}) == pytest.approx(0.3)
    assert bdd.probability(na, {"a": 0.3, "b": 0.9}) == pytest.approx(0.7)


def test_bdd_apply_reduction():
    bdd = BDD(["a"])
    a = bdd.var("a")
    assert bdd.apply("and", a, a) == a
    assert bdd.apply("xor", a, a) == 0
    assert bdd.apply("or", a, bdd.negate(a)) == 1


def test_bdd_ite():
    bdd = BDD(["s", "x", "y"])
    s, x, y = bdd.var("s"), bdd.var("x"), bdd.var("y")
    mux = bdd.ite(s, y, x)
    probs = {"s": 0.5, "x": 0.2, "y": 0.8}
    assert bdd.probability(mux, probs) == pytest.approx(0.5 * 0.8 + 0.5 * 0.2)


def test_bdd_unknown_variable():
    bdd = BDD(["a"])
    with pytest.raises(EstimationError):
        bdd.var("zz")
    with pytest.raises(EstimationError):
        BDD(["a", "a"])


def test_bdd_node_limit():
    bdd = BDD([f"v{i}" for i in range(8)], node_limit=3)
    with pytest.raises(EstimationError, match="node limit"):
        refs = [bdd.var(f"v{i}") for i in range(8)]
        bdd.apply_many("xor", refs)


@pytest.mark.parametrize("factory", [c17, lambda: parity_tree(6)])
def test_bdd_probabilities_match_enumeration(factory):
    circuit = factory()
    enum = exact_signal_probabilities(circuit)
    via_bdd = bdd_signal_probabilities(circuit)
    for node in circuit.nodes:
        assert via_bdd[node] == pytest.approx(enum[node], abs=1e-12), node


def test_bdd_handles_comp_cascade():
    """COMP's BDDs stay small — the reason BDDs are our second reference."""
    circuit = comp24(width=8, name="COMP8")
    probs = bdd_signal_probabilities(circuit, nodes=circuit.outputs)
    # With uniform inputs and TI uniform: P(A=B chunk) = 2^-8 ...
    # final OAEB = P(words equal) * P(TI2=1) = 2^-8 * 0.5.
    assert probs["OAEB"] == pytest.approx(2.0 ** -8 * 0.5, rel=1e-9)


def test_bdd_lut_gate():
    b = CircuitBuilder("lut")
    x, y = b.inputs("x", "y")
    n = b.lut("n", 0b0110, x, y)  # XOR
    b.output(n)
    circuit = b.build()
    probs = bdd_signal_probabilities(circuit, {"x": 0.3, "y": 0.4})
    assert probs["n"] == pytest.approx(0.3 * 0.6 + 0.7 * 0.4)


def test_circuit_bdds_size_query():
    bdd, refs = circuit_bdds(parity_tree(8))
    out = refs["PARITY"]
    # Parity BDD is linear in width.
    assert bdd.size(out) == 2 * 8 - 1 - 0  # 15 nodes for 8-input parity


# --- Cutting bounds ----------------------------------------------------------


def test_interval_gate_monotone():
    lo, hi = interval_gate(GateType.AND, [(0.2, 0.4), (0.5, 1.0)])
    assert lo == pytest.approx(0.1)
    assert hi == pytest.approx(0.4)
    lo, hi = interval_gate(GateType.NOR, [(0.2, 0.4), (0.0, 0.5)])
    assert lo == pytest.approx(0.6 * 0.5)
    assert hi == pytest.approx(0.8 * 1.0)


def test_interval_gate_xor_corners():
    lo, hi = interval_gate(GateType.XOR, [(0.0, 1.0), (0.5, 0.5)])
    assert lo == pytest.approx(0.5)
    assert hi == pytest.approx(0.5)
    lo, hi = interval_gate(GateType.XOR, [(0.0, 0.2), (0.0, 0.1)])
    assert lo == 0.0
    assert hi == pytest.approx(0.2 + 0.1 - 2 * 0.2 * 0.1)


def test_bounds_contain_exact_on_c17():
    circuit = c17()
    exact = exact_signal_probabilities(circuit)
    bounds = probability_bounds(circuit)
    for node in circuit.nodes:
        lo, hi = bounds[node]
        assert lo - 1e-12 <= exact[node] <= hi + 1e-12, node
        assert 0.0 <= lo <= hi <= 1.0


def test_bounds_tight_on_trees(tree_circuit):
    exact = exact_signal_probabilities(tree_circuit)
    bounds = probability_bounds(tree_circuit)
    for node in tree_circuit.nodes:
        lo, hi = bounds[node]
        assert hi - lo < 1e-12  # no fan-out, nothing is cut
        assert lo == pytest.approx(exact[node])


def test_bounds_widen_after_reconvergence(reconvergent_circuit):
    bounds = probability_bounds(reconvergent_circuit)
    lo, hi = bounds["k"]
    assert hi - lo > 0.1  # the cut branch costs real information
