"""Unit tests of repro.telemetry: metrics registry, tracing, logging."""

import io
import json
import threading

import pytest

from repro.errors import ReproError
from repro.telemetry.logs import JsonFormatter, configure, get_logger
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    enabled,
    render_prometheus,
    set_enabled,
)
from repro.telemetry.tracing import (
    SpanContext,
    chrome_trace_payload,
    clear_spans,
    current_context,
    drain_spans,
    export_chrome_trace,
    ingest_spans,
    new_context,
    span,
    spans,
    use_context,
)


@pytest.fixture(autouse=True)
def _telemetry_isolation():
    """Every test starts enabled with an empty span buffer."""
    set_enabled(True)
    clear_spans()
    yield
    set_enabled(True)
    clear_spans()


def registry():
    return MetricsRegistry(register=False)


# -- counters ----------------------------------------------------------------


class TestCounters:
    def test_basic_inc_and_value(self):
        reg = registry()
        c = reg.counter("t_total", "help")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_cells_are_independent(self):
        reg = registry()
        c = reg.counter("t_total", "", ("kind",))
        c.labels(kind="a").inc()
        c.labels(kind="a").inc()
        c.labels(kind="b").inc(5)
        assert c.value(kind="a") == 2
        assert c.value(kind="b") == 5

    def test_counters_cannot_decrease(self):
        c = registry().counter("t_total")
        with pytest.raises(ReproError):
            c.inc(-1)

    def test_missing_labels_raise(self):
        c = registry().counter("t_total", "", ("kind",))
        with pytest.raises(ReproError):
            c.value()
        with pytest.raises(ReproError):
            c.labels(kind="a", extra="b")
        with pytest.raises(ReproError):
            c.inc()     # label-less convenience needs a label-less family

    def test_eight_thread_storm_is_exact(self):
        reg = registry()
        c = reg.counter("t_total", "", ("worker",))
        per_thread = 2_000
        threads = 8

        def storm(i):
            cell = c.labels(worker=str(i % 2))
            for _ in range(per_thread):
                cell.inc()

        pool = [threading.Thread(target=storm, args=(i,))
                for i in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        total = sum(value for _, value in c.samples())
        assert total == threads * per_thread
        assert c.value(worker="0") == c.value(worker="1") == total / 2


# -- gauges ------------------------------------------------------------------


class TestGauges:
    def test_set_overwrites(self):
        g = registry().gauge("t_depth")
        g.set(4)
        g.set(2)
        assert g.value() == 2

    def test_latest_write_wins_across_registries(self):
        a, b = MetricsRegistry(register=False), MetricsRegistry(register=False)
        a.gauge("t_depth").set(10)
        b.gauge("t_depth").set(3)
        text = render_prometheus(a, b)
        assert "t_depth 3\n" in text
        a.gauge("t_depth").set(7)
        assert "t_depth 7\n" in render_prometheus(a, b)

    def test_set_on_counter_raises(self):
        c = registry().counter("t_total")
        with pytest.raises(ReproError):
            c.set(1)


# -- histograms --------------------------------------------------------------


class TestHistograms:
    def test_bucket_sums_equal_observation_count(self):
        h = registry().histogram("t_seconds", buckets=(0.1, 1.0, 10.0))
        observations = [0.05, 0.1, 0.5, 2.0, 50.0, 0.01, 9.99]
        for value in observations:
            h.observe(value)
        hist = h.labels().histogram
        assert hist["count"] == len(observations)
        assert hist["sum"] == pytest.approx(sum(observations))
        # cumulative buckets: each bound counts everything <= it, and
        # +Inf equals the total observation count.
        assert hist["buckets"]["0.1"] == 3
        assert hist["buckets"]["1"] == 4
        assert hist["buckets"]["10"] == 6
        assert hist["buckets"]["+Inf"] == len(observations)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_concurrent_observations_reconcile(self):
        h = registry().histogram(
            "t_seconds", labelnames=("kind",), buckets=(0.5,)
        )
        per_thread = 1_000

        def storm(kind):
            cell = h.labels(kind=kind)
            for i in range(per_thread):
                cell.observe(0.25 if i % 2 == 0 else 0.75)

        pool = [threading.Thread(target=storm, args=(k,))
                for k in ("a", "b", "a", "b")]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        for kind in ("a", "b"):
            hist = h.labels(kind=kind).histogram
            assert hist["count"] == 2 * per_thread
            assert hist["buckets"]["+Inf"] == 2 * per_thread
            assert hist["buckets"]["0.5"] == per_thread

    def test_invalid_buckets_raise(self):
        with pytest.raises(ReproError):
            registry().histogram("t_seconds", buckets=(1.0, 1.0))


# -- registry plumbing -------------------------------------------------------


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = registry()
        assert reg.counter("t_total", "", ("a",)) is reg.counter(
            "t_total", "", ("a",)
        )

    def test_conflicting_registration_raises(self):
        reg = registry()
        reg.counter("t_total")
        with pytest.raises(ReproError):
            reg.gauge("t_total")
        with pytest.raises(ReproError):
            reg.counter("t_total", "", ("other",))

    def test_invalid_names_raise(self):
        reg = registry()
        for bad in ("", "1bad", "has space", "has-dash"):
            with pytest.raises(ReproError):
                reg.counter(bad)
        with pytest.raises(ReproError):
            reg.counter("t_total", "", ("bad label",))

    def test_snapshot_is_json_safe(self):
        reg = registry()
        reg.counter("t_total", "", ("kind",)).labels(kind="x").inc()
        reg.histogram("t_seconds", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["t_total"]["type"] == "counter"
        assert snap["t_total"]["samples"] == [
            {"labels": {"kind": "x"}, "value": 1.0}
        ]
        assert snap["t_seconds"]["samples"][0]["value"]["count"] == 1

    def test_unregistered_registry_stays_out_of_global_render(self):
        reg = MetricsRegistry(register=False)
        reg.counter("t_invisible_total").inc()
        assert "t_invisible_total" not in render_prometheus()


# -- Prometheus exposition ---------------------------------------------------


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        reg = registry()
        reg.counter("t_total", "requests", ("kind",)).labels(kind="a").inc(3)
        reg.gauge("t_depth", "queue depth").set(2)
        text = render_prometheus(reg)
        assert "# HELP t_total requests\n" in text
        assert "# TYPE t_total counter\n" in text
        assert 't_total{kind="a"} 3\n' in text
        assert "# TYPE t_depth gauge\n" in text
        assert "t_depth 2\n" in text

    def test_histogram_exposition_shape(self):
        reg = registry()
        h = reg.histogram("t_seconds", "", buckets=(0.5, 2.0))
        for value in (0.1, 1.0, 9.0):
            h.observe(value)
        text = render_prometheus(reg)
        assert 't_seconds_bucket{le="0.5"} 1\n' in text
        assert 't_seconds_bucket{le="2"} 2\n' in text
        assert 't_seconds_bucket{le="+Inf"} 3\n' in text
        assert "t_seconds_count 3\n" in text
        assert "t_seconds_sum 10.1\n" in text

    def test_counters_sum_across_registries(self):
        a, b = MetricsRegistry(register=False), MetricsRegistry(register=False)
        a.counter("t_total").inc(2)
        b.counter("t_total").inc(3)
        assert "t_total 5\n" in render_prometheus(a, b)

    def test_label_values_are_escaped(self):
        reg = registry()
        reg.counter("t_total", "", ("path",)).labels(path='a"b\\c\nd').inc()
        text = render_prometheus(reg)
        assert 't_total{path="a\\"b\\\\c\\nd"} 1\n' in text

    def test_extra_appends_labelless_gauges(self):
        text = render_prometheus(registry(), extra={"t_uptime_seconds": 1.5})
        assert "# TYPE t_uptime_seconds gauge\n" in text
        assert "t_uptime_seconds 1.5\n" in text


# -- the global switch -------------------------------------------------------


class TestEnabledSwitch:
    def test_disabled_writes_are_noops(self):
        reg = registry()
        c = reg.counter("t_total")
        g = reg.gauge("t_depth")
        h = reg.histogram("t_seconds", buckets=(1.0,))
        set_enabled(False)
        assert not enabled()
        c.inc()
        g.set(9)
        h.observe(0.5)
        assert c.value() == 0
        assert g.value() == 0
        assert h.labels().histogram["count"] == 0
        set_enabled(True)
        c.inc()
        assert c.value() == 1

    def test_disabled_spans_still_measure_but_do_not_buffer(self):
        set_enabled(False)
        with span("t.work") as s:
            pass
        assert s.duration >= 0.0
        assert spans() == []


# -- tracing -----------------------------------------------------------------


class TestTracing:
    def test_nesting_links_parent_ids(self):
        with span("outer") as outer:
            with span("inner") as inner:
                assert current_context().span_id == inner.span_id
            assert current_context().span_id == outer.span_id
        assert current_context() is None
        events = {e["name"]: e for e in spans()}
        assert events["inner"]["args"]["parent_id"] == outer.span_id
        assert events["inner"]["args"]["trace_id"] == outer.trace_id
        assert events["outer"]["args"]["parent_id"] is None

    def test_span_attributes_and_duration(self):
        with span("t.work", circuit="c17") as s:
            s.set("patterns", 64)
        event = spans()[0]
        assert event["ph"] == "X"
        assert event["args"]["circuit"] == "c17"
        assert event["args"]["patterns"] == 64
        assert event["dur"] == pytest.approx(s.duration * 1e6)

    def test_context_propagation_round_trip(self):
        context = new_context()
        payload = context.to_payload()
        # run_sweep ships extra keys (pid); from_payload tolerates them.
        restored = SpanContext.from_payload({**payload, "pid": 123})
        with use_context(restored):
            with span("child"):
                pass
        event = spans()[0]
        assert event["args"]["trace_id"] == context.trace_id
        assert event["args"]["parent_id"] == context.span_id

    def test_malformed_context_raises(self):
        assert SpanContext.from_payload(None) is None
        with pytest.raises(ReproError):
            SpanContext.from_payload({"trace_id": "only-half"})

    def test_drain_and_ingest_by_trace(self):
        with span("mine") as mine:
            pass
        with span("other"):
            pass
        shipped = drain_spans(mine.trace_id)
        assert [e["name"] for e in shipped] == ["mine"]
        assert [e["name"] for e in spans()] == ["other"]
        ingest_spans(shipped)
        assert sorted(e["name"] for e in spans()) == ["mine", "other"]

    def test_threads_inherit_no_context_but_accept_one(self):
        seen = {}

        def worker(context):
            with use_context(context):
                with span("thread.child"):
                    seen["context"] = current_context()

        with span("parent") as parent:
            t = threading.Thread(target=worker, args=(parent.context,))
            t.start()
            t.join()
        events = {e["name"]: e for e in spans()}
        assert events["thread.child"]["args"]["parent_id"] == parent.span_id
        assert events["thread.child"]["tid"] != events["parent"]["tid"]

    def test_export_chrome_trace(self, tmp_path):
        with span("a"):
            with span("b"):
                pass
        path = tmp_path / "trace.json"
        count = export_chrome_trace(str(path))
        assert count == 2
        doc = json.loads(path.read_text())
        assert {e["name"] for e in doc["traceEvents"]} == {"a", "b"}
        for event in doc["traceEvents"]:
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid"}

    def test_export_filters_by_trace_id(self, tmp_path):
        with span("keep") as keep:
            pass
        with span("drop"):
            pass
        payload = chrome_trace_payload(trace_id=keep.trace_id)
        assert [e["name"] for e in payload["traceEvents"]] == ["keep"]


# -- structured logging ------------------------------------------------------


class TestLogging:
    def test_json_lines_with_extras(self):
        stream = io.StringIO()
        configure("debug", stream=stream)
        try:
            get_logger("test").info("hello", extra={"job": "j1"})
        finally:
            configure("off")
        record = json.loads(stream.getvalue())
        assert record["message"] == "hello"
        assert record["level"] == "info"
        assert record["logger"] == "protest.test"
        assert record["job"] == "j1"
        assert isinstance(record["ts"], float)

    def test_trace_context_is_attached(self):
        stream = io.StringIO()
        configure("info", stream=stream)
        try:
            with span("logged") as s:
                get_logger("test").info("inside")
        finally:
            configure("off")
        record = json.loads(stream.getvalue())
        assert record["trace_id"] == s.trace_id
        assert record["span_id"] == s.span_id

    def test_off_silences_and_levels_filter(self):
        stream = io.StringIO()
        configure("warning", stream=stream)
        try:
            get_logger("test").info("dropped")
            get_logger("test").warning("kept")
        finally:
            configure("off")
        lines = [l for l in stream.getvalue().splitlines() if l]
        assert len(lines) == 1
        assert json.loads(lines[0])["message"] == "kept"
        stream = io.StringIO()
        configure("off", stream=stream)
        get_logger("test").error("nothing")
        assert stream.getvalue() == ""

    def test_bad_level_raises(self):
        with pytest.raises(ReproError):
            configure("loud")

    def test_formatter_renders_exceptions(self):
        formatter = JsonFormatter()
        import logging as _logging
        try:
            raise ValueError("boom")
        except ValueError:
            record = _logging.LogRecord(
                "protest.t", _logging.ERROR, __file__, 1, "failed",
                (), __import__("sys").exc_info(),
            )
        payload = json.loads(formatter.format(record))
        assert "ValueError: boom" in payload["exception"]
