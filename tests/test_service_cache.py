"""ArtifactCache: interning, report caching, bounds, counters."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder
from repro.errors import ServiceError
from repro.service import ArtifactCache


def _chain(name: str, n: int = 3):
    b = CircuitBuilder(name)
    node = b.input("a")
    for i in range(n):
        node = b.not_(f"inv{i}", node)
    b.output(node)
    return b.build()


def test_intern_returns_canonical_instance():
    cache = ArtifactCache()
    first = _chain("one")
    second = _chain("two")        # same structure, different display name
    kept, hit = cache.intern_circuit(first)
    assert kept is first and hit is False
    again, hit = cache.intern_circuit(second)
    assert again is first         # the canonical object, kernels and all
    assert hit is True
    info = cache.cache_info()
    assert info["circuit_hits"] == 1
    assert info["circuit_misses"] == 1
    assert info["circuits"] == 1


def test_intern_distinguishes_structures():
    cache = ArtifactCache()
    cache.intern_circuit(_chain("a", n=3))
    kept, hit = cache.intern_circuit(_chain("b", n=4))
    assert hit is False
    assert cache.cache_info()["circuits"] == 2


def test_circuit_lru_eviction():
    cache = ArtifactCache(max_circuits=2)
    c1, c2, c3 = _chain("c1", 1), _chain("c2", 2), _chain("c3", 3)
    cache.intern_circuit(c1)
    cache.intern_circuit(c2)
    cache.intern_circuit(c1)        # refresh c1 -> c2 is now oldest
    cache.intern_circuit(c3)        # evicts c2
    info = cache.cache_info()
    assert info["circuit_evictions"] == 1
    _, hit = cache.intern_circuit(_chain("c1-again", 1))
    assert hit is True              # c1 survived
    _, hit = cache.intern_circuit(_chain("c2-again", 2))
    assert hit is False             # c2 was evicted


def test_report_roundtrip_and_counters():
    cache = ArtifactCache()
    key = ("hash", "cfg", "analytic", (0.5,))
    assert cache.get_report(key) is None
    cache.put_report(key, {"n_faults": 7})
    assert cache.get_report(key) == {"n_faults": 7}
    info = cache.cache_info()
    assert info["report_misses"] == 1
    assert info["report_hits"] == 1
    assert info["reports"] == 1


def test_report_lru_eviction():
    cache = ArtifactCache(max_reports=2)
    keys = [("h", "c", "analytic", (p,)) for p in (0.1, 0.2, 0.3)]
    for i, key in enumerate(keys):
        cache.put_report(key, {"i": i})
    cache.get_report(keys[1])
    cache.put_report(("h", "c", "analytic", (0.4,)), {"i": 3})
    assert cache.get_report(keys[0]) is None        # evicted (bound=2)
    assert cache.get_report(keys[2]) is None        # evicted by the put
    assert cache.get_report(keys[1]) == {"i": 1}    # refreshed, survived
    assert cache.cache_info()["report_evictions"] == 2


def test_clear_resets_contents_not_counters():
    cache = ArtifactCache()
    cache.intern_circuit(_chain("x"))
    cache.put_report(("h", "c", "analytic", ()), {})
    cache.clear()
    info = cache.cache_info()
    assert info["circuits"] == 0 and info["reports"] == 0
    assert info["circuit_misses"] == 1      # history survives a clear


@pytest.mark.parametrize("kwargs", [
    {"max_circuits": 0}, {"max_reports": 0}, {"max_circuits": -3},
])
def test_invalid_bounds_rejected(kwargs):
    with pytest.raises(ServiceError):
        ArtifactCache(**kwargs)
