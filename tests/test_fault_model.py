"""Unit tests for the stuck-at fault model and fault universes."""

from __future__ import annotations

import pytest

from repro.circuits import c17
from repro.errors import ReproError
from repro.faults import (
    Fault,
    branch_faults,
    fault_universe,
    faults_for_nodes,
    stem_faults,
)


def test_fault_validation():
    with pytest.raises(ReproError):
        Fault("x", None, 2)
    with pytest.raises(ReproError):
        Fault("x", -1, 0)


def test_fault_site_and_str():
    stem = Fault("G10", None, 0)
    branch = Fault("G16", 1, 1)
    assert stem.is_stem and not branch.is_stem
    assert stem.site == "G10"
    assert branch.site == "G16.in1"
    assert str(stem) == "G10 s-a-0"
    assert str(branch) == "G16.in1 s-a-1"


def test_fault_hashable_and_sortable():
    faults = fault_universe(c17())
    assert len(set(faults)) == len(faults)
    ordered = sorted(faults, key=lambda f: f.sort_key)
    assert ordered[0].is_stem


def test_stem_fault_count():
    circuit = c17()
    stems = stem_faults(circuit)
    # 5 inputs + 6 gates, both polarities.
    assert len(stems) == 2 * 11


def test_branch_fault_count():
    circuit = c17()
    branches = branch_faults(circuit)
    total_pins = sum(g.arity for g in circuit.gates.values())
    assert len(branches) == 2 * total_pins


def test_branch_faults_fanout_stem_filter():
    circuit = c17()
    filtered = branch_faults(circuit, only_fanout_stems=True)
    full = branch_faults(circuit)
    assert 0 < len(filtered) < len(full)
    # Every kept pin is fed by a multi-fan-out stem.
    from repro.circuit import Topology

    topo = Topology(circuit)
    for fault in filtered:
        src = circuit.gates[fault.node].inputs[fault.pin]
        assert topo.fanout_degree(src) > 1


def test_fault_universe_composition():
    circuit = c17()
    universe = fault_universe(circuit)
    assert len(universe) == len(stem_faults(circuit)) + len(
        branch_faults(circuit)
    )
    stems_only = fault_universe(circuit, include_branches=False)
    assert len(stems_only) == len(stem_faults(circuit))


def test_faults_for_nodes():
    circuit = c17()
    faults = list(faults_for_nodes(circuit, ["G10", "G1"]))
    assert len(faults) == 4
    with pytest.raises(ReproError, match="unknown node"):
        list(faults_for_nodes(circuit, ["nope"]))
