"""Job engine lifecycle: progressive snapshots, caching, failure modes."""

from __future__ import annotations

import time

import pytest

from repro.api.config import ProtestConfig
from repro.api.engine import AnalysisEngine
from repro.api.results import canonical_payload
from repro.circuits.library import build
from repro.errors import ServiceError
from repro.service import ArtifactCache, JobManager

#: A sampled config small enough for test wall-clocks but guaranteed to
#: run at least two blocks (target unreachable before the pattern cap).
SAMPLED = ProtestConfig(
    method="sampled", max_patterns=2048, target_halfwidth=0.01,
    fault_sample=48, name="svc-test",
)

#: A config whose sampling never converges quickly (for cancel/timeout).
SLOW = ProtestConfig(
    method="sampled", max_patterns=1 << 18, target_halfwidth=0.002,
    fault_sample=128, name="svc-slow",
)


@pytest.fixture
def manager():
    mgr = JobManager(workers=2, cache=ArtifactCache())
    yield mgr
    mgr.shutdown(wait=False)


def test_full_lifecycle_progressive_snapshots(manager):
    job = manager.submit(circuit="c432", config=SAMPLED)
    assert job.state in ("queued", "running")
    job = manager.wait(job.id, timeout=120)
    assert job.state == "done", job.error

    # Progressive delivery: at least two snapshots, halfwidths
    # non-increasing, the last snapshot agreeing with the final result.
    assert len(job.snapshots) >= 2
    widths = [snap["max_halfwidth"] for snap in job.snapshots]
    assert widths == sorted(widths, reverse=True)
    patterns = [snap["n_patterns"] for snap in job.snapshots]
    assert patterns == sorted(patterns) and patterns[0] < patterns[-1]
    assert job.latest_snapshot["n_patterns"] == job.result["n_patterns"]

    # Bit-identical to the direct in-process run under the same seed.
    direct = AnalysisEngine(build("c432"), SAMPLED).sampled_analyze()
    assert canonical_payload(job.result) == canonical_payload(
        direct.to_dict()
    )


def test_resubmission_is_a_cache_hit(manager):
    first = manager.wait(manager.submit(circuit="c432", config=SAMPLED).id,
                         timeout=120)
    assert first.state == "done"
    again = manager.wait(manager.submit(circuit="c432", config=SAMPLED).id,
                         timeout=120)
    assert again.state == "done"
    assert again.from_cache is True
    assert again.snapshots == []            # served, not recomputed
    assert again.result == first.result
    info = manager.cache.cache_info()
    assert info["report_hits"] >= 1
    assert info["circuit_hits"] >= 1        # same kernel, not recompiled


def test_analytic_job_and_stats(manager):
    job = manager.wait(manager.submit(circuit="c17", config="fast").id,
                       timeout=60)
    assert job.state == "done"
    assert job.result["n_faults"] > 0
    stats = manager.stats()
    assert stats["jobs"]["done"] == 1
    assert stats["queue_depth"] == 0
    assert stats["workers"] == 2
    assert "cache" in stats and "throughput" in stats


def test_unknown_circuit_fails_structured(manager):
    job = manager.wait(manager.submit(circuit="no-such-circuit").id,
                       timeout=60)
    assert job.state == "failed"
    assert job.error["type"] == "ReproError"
    assert "no-such-circuit" in job.error["message"]


def test_bad_bench_fails_with_parse_error(manager):
    job = manager.wait(
        manager.submit(bench="INPUT(a)\nbad syntax here\n").id, timeout=60
    )
    assert job.state == "failed"
    assert job.error["type"] == "ParseError"
    assert "line 2" in job.error["message"]


def test_cancel_queued_job():
    mgr = JobManager(workers=1)
    try:
        # Occupy the single worker, then cancel a queued job behind it.
        blocker = mgr.submit(circuit="c880", config=SLOW)
        queued = mgr.submit(circuit="c17", config="fast")
        status = mgr.cancel(queued.id)
        assert status["state"] == "cancelled"
        mgr.cancel(blocker.id)
        assert mgr.wait(blocker.id, timeout=120).state == "cancelled"
    finally:
        mgr.shutdown(wait=False)


def test_cancel_running_sampled_job_and_no_partial_cache():
    mgr = JobManager(workers=1)
    try:
        job = mgr.submit(circuit="c880", config=SLOW)
        deadline = time.monotonic() + 60
        while not job.snapshots and time.monotonic() < deadline:
            time.sleep(0.01)
        assert job.snapshots, "job produced no snapshot to cancel after"
        mgr.cancel(job.id)
        job = mgr.wait(job.id, timeout=120)
        assert job.state == "cancelled"
        assert job.error["type"] == "JobCancelled"
        # The aborted sample must not have been cached as a result.
        assert mgr.cache.cache_info()["reports"] == 0
    finally:
        mgr.shutdown(wait=False)


def test_timeout_fails_the_job():
    mgr = JobManager(workers=1)
    try:
        job = mgr.submit(circuit="c880", config=SLOW, timeout=0.001)
        job = mgr.wait(job.id, timeout=120)
        assert job.state == "failed"
        assert job.error["type"] == "JobTimeout"
        assert "budget" in job.error["message"]
    finally:
        mgr.shutdown(wait=False)


def test_priority_orders_the_queue():
    mgr = JobManager(workers=1)
    try:
        blocker = mgr.submit(circuit="c432", config=SAMPLED)
        low = mgr.submit(circuit="c17", config="fast", priority=0)
        high = mgr.submit(circuit="c17", config="paper", priority=5)
        mgr.wait(blocker.id, timeout=120)
        high = mgr.wait(high.id, timeout=60)
        low = mgr.wait(low.id, timeout=60)
        assert high.started <= low.started
    finally:
        mgr.shutdown(wait=False)


def test_sweep_job(manager):
    job = manager.submit(
        sweep={"circuits": ["c17", "tree-does-not-exist"],
               "presets": ["fast"]},
    )
    job = manager.wait(job.id, timeout=120)
    assert job.state == "done"
    runs = job.result["runs"]
    assert len(runs) == 2
    by_name = {run["circuit"]: run for run in runs}
    assert by_name["c17"]["error"] is None
    assert by_name["tree-does-not-exist"]["error"] is not None


def test_submit_validation():
    mgr = JobManager(workers=1)
    try:
        with pytest.raises(ServiceError):
            mgr.submit()                                     # nothing chosen
        with pytest.raises(ServiceError):
            mgr.submit(circuit="c17", bench="INPUT(a)")      # both chosen
        with pytest.raises(ServiceError):
            mgr.submit(circuit="c17", timeout=-1.0)
        with pytest.raises(ServiceError):
            mgr.submit(circuit="c17", priority="high")
        with pytest.raises(ServiceError):
            mgr.submit(circuit="c17", config={"bogus_knob": 1})
        with pytest.raises(ServiceError):
            mgr.submit(sweep={"presets": ["fast"]})          # no circuits
        with pytest.raises(ServiceError):
            mgr.get("j999999")
    finally:
        mgr.shutdown(wait=False)


def test_shutdown_cancels_queued_jobs():
    mgr = JobManager(workers=1)
    blocker = mgr.submit(circuit="c432", config=SAMPLED)
    queued = mgr.submit(circuit="c17", config="fast")
    mgr.shutdown(wait=True)
    assert queued.state == "cancelled"
    assert blocker.state in ("done", "cancelled")
    with pytest.raises(ServiceError):
        mgr.submit(circuit="c17")


def test_verilog_upload_job(manager):
    verilog = (
        "module tiny (a, b, y);\ninput a, b;\noutput y;\n"
        "nand (y, a, b);\nendmodule\n"
    )
    job = manager.wait(
        manager.submit(verilog=verilog, config="fast").id, timeout=60
    )
    assert job.state == "done", job.error
    assert job.result["n_faults"] > 0


def test_bad_verilog_fails_with_parse_error(manager):
    job = manager.wait(
        manager.submit(verilog="module m (a);\ninput a;\nfrob (a);\n").id,
        timeout=60,
    )
    assert job.state == "failed"
    assert job.error["type"] == "ParseError"
    assert "line 3" in job.error["message"]


def test_verilog_exclusive_with_other_sources():
    mgr = JobManager(workers=1)
    try:
        with pytest.raises(ServiceError):
            mgr.submit(circuit="c17", verilog="module m; endmodule")
        with pytest.raises(ServiceError):
            mgr.submit(bench="INPUT(a)", verilog="module m; endmodule")
        with pytest.raises(ServiceError):
            mgr.submit(verilog=123)
    finally:
        mgr.shutdown(wait=False)
