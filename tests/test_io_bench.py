"""Hardened .bench reader: dialect tolerance and diagnostics."""

from __future__ import annotations

import pytest

from repro.circuit.io import (
    is_netlist_path,
    load_bench,
    load_netlist,
    parse_bench,
    read_bench,
)
from repro.circuit.types import GateType
from repro.errors import ParseError
from repro.logicsim import PatternSet, simulate


def test_out_of_order_definitions():
    circuit = parse_bench(
        "OUTPUT(y)\ny = NOT(n1)\nn1 = NAND(a, b)\nINPUT(a)\nINPUT(b)\n"
    )
    assert circuit.inputs == ("a", "b")
    assert circuit.gate("y").inputs == ("n1",)


def test_multi_line_definitions_and_crlf():
    text = (
        "INPUT(a)\r\nINPUT(b)\r\nINPUT(c)\r\nOUTPUT(y)\r\n"
        "y = AND(a,   # wide fan-in wraps in the historical files\r\n"
        "        b,\r\n"
        "        c)   # trailing comment\r\n"
    )
    circuit = parse_bench(text)
    assert circuit.gate("y").inputs == ("a", "b", "c")


def test_continuation_on_trailing_equals():
    circuit = parse_bench("INPUT(a)\nOUTPUT(y)\ny =\n  NOT(a)\n")
    assert circuit.gate("y").gtype is GateType.NOT


def test_unterminated_definition_names_start_line():
    with pytest.raises(ParseError, match="line 3"):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a,\n")


def test_node_names_case_insensitive_first_seen_canonical():
    circuit = parse_bench(
        "INPUT(g1)\nOUTPUT(Y)\nn = NOT(G1)\nY = BUFF(N)\n"
    )
    # First-seen spelling wins; later spellings resolve to it.
    assert circuit.inputs == ("g1",)
    assert circuit.gate("n").inputs == ("g1",)
    assert circuit.gate("Y").inputs == ("n",)


def test_duplicate_input_rejected_with_both_lines():
    with pytest.raises(ParseError, match=r"line 3.*line 1") as err:
        parse_bench("INPUT(a)\nOUTPUT(y)\nINPUT(A)\ny = NOT(a)\n")
    assert "duplicate INPUT" in str(err.value)


def test_duplicate_output_rejected():
    with pytest.raises(ParseError, match="duplicate OUTPUT"):
        parse_bench("INPUT(a)\nOUTPUT(y)\nOUTPUT(y)\ny = NOT(a)\n")


def test_duplicate_gate_definition_rejected():
    with pytest.raises(ParseError, match=r"line 4.*driven twice.*line 3"):
        parse_bench(
            "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"
        )


def test_gate_driving_declared_input_rejected():
    with pytest.raises(ParseError, match="declared INPUT"):
        parse_bench("INPUT(a)\nOUTPUT(y)\na = NOT(y)\ny = CONST1()\n")


def test_undeclared_source_names_consuming_line():
    with pytest.raises(ParseError, match=r"line 3.*'ghost'"):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")


def test_undriven_output_rejected():
    with pytest.raises(ParseError, match=r"OUTPUT\(z\) is never driven"):
        parse_bench("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = NOT(a)\n")


def test_const_gates_take_no_args():
    circuit = parse_bench(
        "INPUT(a)\nOUTPUT(y)\nzero = CONST0()\ny = OR(a, zero)\n"
    )
    assert circuit.gate("zero").gtype is GateType.CONST0
    ps = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, ps)
    assert values["y"] == values["a"]  # OR with constant 0 is identity


def test_empty_args_on_non_const_rejected():
    with pytest.raises(ParseError):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND()\n")


def test_dff_cut_records_info():
    text = (
        "INPUT(d_in)\nOUTPUT(q_out)\n"
        "q1 = DFF(n1)\n"
        "n1 = AND(d_in, q1)\n"
        "q_out = BUFF(q1)\n"
    )
    circuit, info = read_bench(text)
    assert info.is_sequential
    assert info.flipflops == (("q1", "n1"),)
    assert info.pseudo_inputs == ("q1",)
    assert info.pseudo_outputs == ("n1",)
    assert circuit.inputs == ("d_in", "q1")
    assert circuit.outputs == ("q_out", "n1")


def test_dff_aliases_accepted():
    for cell in ("DFF", "FF", "FLIPFLOP", "dff"):
        circuit, info = read_bench(
            f"INPUT(a)\nOUTPUT(y)\nq = {cell}(a)\ny = NOT(q)\n"
        )
        assert info.flipflops == (("q", "a"),)


def test_dff_reject_mode():
    with pytest.raises(ParseError, match="sequential"):
        read_bench(
            "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = NOT(q)\n",
            sequential="reject",
        )


def test_bad_sequential_mode_rejected():
    with pytest.raises(ParseError, match="sequential mode"):
        read_bench("INPUT(a)\nOUTPUT(a)\n", sequential="nope")


def test_load_bench_names_circuit_from_stem(tmp_path):
    path = tmp_path / "sub dir" / "my_circ.bench"
    path.parent.mkdir()
    path.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    assert load_bench(path).name == "my_circ"
    assert load_bench(str(path)).name == "my_circ"
    assert load_bench(path, name="override").name == "override"


def test_is_netlist_path():
    assert is_netlist_path("nets/c880.bench")
    assert is_netlist_path("top.v")
    assert is_netlist_path("design.VERILOG")
    assert is_netlist_path("alu.sdl")
    assert not is_netlist_path("c880")
    assert not is_netlist_path("notes.txt")


def test_load_netlist_dispatches_on_suffix(tmp_path):
    bench = tmp_path / "tiny.bench"
    bench.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    verilog = tmp_path / "tiny.v"
    verilog.write_text(
        "module tinyv (a, y);\ninput a;\noutput y;\n"
        "not (y, a);\nendmodule\n"
    )
    assert load_netlist(bench).name == "tiny"
    assert load_netlist(verilog).name == "tinyv"
    with pytest.raises(Exception, match="unknown netlist format"):
        load_netlist(tmp_path / "tiny.xyz")
