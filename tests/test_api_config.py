"""Tests for repro.api.config: validation, presets, hashing."""

from __future__ import annotations

import pytest

from repro.api import PRESETS, ProtestConfig, available_presets
from repro.errors import EstimationError
from repro.probability.estimator import EstimatorParams


def test_defaults_match_estimator_params():
    config = ProtestConfig()
    params = config.estimator_params()
    assert params == EstimatorParams()
    assert config.stem_model == "chain"
    assert config.pin_model == "boolean_difference"


@pytest.mark.parametrize("name", ["paper", "fast", "accurate"])
def test_presets_exist_and_are_labelled(name):
    config = ProtestConfig.preset(name)
    assert config.name == name
    assert PRESETS[name] is config


def test_available_presets_sorted():
    assert available_presets() == sorted(available_presets())
    assert {"paper", "fast", "accurate"} <= set(available_presets())


def test_unknown_preset_raises():
    with pytest.raises(EstimationError, match="unknown preset"):
        ProtestConfig.preset("turbo")


@pytest.mark.parametrize("kwargs", [
    {"maxvers": -1},
    {"maxlist": 0},
    {"candidate_cap": 0},
    {"stem_model": "nope"},
    {"pin_model": "nope"},
    {"seed": "zero"},
])
def test_validation_rejects_bad_knobs(kwargs):
    with pytest.raises(EstimationError):
        ProtestConfig(**kwargs)


def test_coerce_accepts_config_name_and_none():
    assert ProtestConfig.coerce(None).name == "paper"
    assert ProtestConfig.coerce("fast").name == "fast"
    config = ProtestConfig(maxvers=2)
    assert ProtestConfig.coerce(config) is config
    with pytest.raises(EstimationError):
        ProtestConfig.coerce(42)


def test_replace_relabels_custom():
    fast = ProtestConfig.preset("fast")
    tweaked = fast.replace(maxvers=2)
    assert tweaked.maxvers == 2
    assert tweaked.maxlist == fast.maxlist
    assert tweaked.name == "custom"


def test_hash_ignores_name_but_tracks_knobs():
    a = ProtestConfig(name="a")
    b = ProtestConfig(name="b")
    assert a.config_hash == b.config_hash
    assert a.config_hash != ProtestConfig(maxvers=4).config_hash


def test_dict_round_trip():
    config = ProtestConfig(maxvers=2, seed=7, name="mine")
    again = ProtestConfig.from_dict(config.to_dict())
    assert again == config


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(EstimationError, match="unknown ProtestConfig keys"):
        ProtestConfig.from_dict({"maxvers": 2, "speed": "ludicrous"})
