"""Unit tests for the fluent CircuitBuilder."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.errors import CircuitError
from repro.logicsim import PatternSet, simulate


def test_basic_build():
    b = CircuitBuilder("demo")
    a, bb = b.inputs("a", "b")
    n = b.and_("n", a, bb)
    b.output(n)
    circuit = b.build()
    assert circuit.inputs == ("a", "b")
    assert circuit.outputs == ("n",)


def test_bus_naming():
    b = CircuitBuilder("demo")
    bus = b.bus("D", 4)
    assert bus == ["D0", "D1", "D2", "D3"]


def test_output_alias_inserts_buffer():
    b = CircuitBuilder("demo")
    a = b.input("a")
    n = b.not_("n", a)
    b.output(n, alias="OUT")
    circuit = b.build()
    assert "OUT" in circuit.outputs
    assert circuit.gate("OUT").gtype is GateType.BUF


def test_fresh_names_unique():
    b = CircuitBuilder("demo")
    b.input("a")
    names = {b.fresh() for _ in range(100)}
    assert len(names) == 100


def test_auto_named_gate():
    b = CircuitBuilder("demo")
    a = b.input("a")
    node = b.not_(None, a)
    assert node.startswith("not")


def test_duplicate_name_rejected():
    b = CircuitBuilder("demo")
    b.input("a")
    with pytest.raises(CircuitError, match="already defined"):
        b.input("a")
    with pytest.raises(CircuitError, match="already defined"):
        b.not_("a", "a")


def test_unknown_source_rejected():
    b = CircuitBuilder("demo")
    b.input("a")
    with pytest.raises(CircuitError, match="unknown node"):
        b.and_("n", "a", "ghost")


def test_output_unknown_node_rejected():
    b = CircuitBuilder("demo")
    b.input("a")
    with pytest.raises(CircuitError, match="unknown node"):
        b.output("ghost")


def test_duplicate_output_rejected():
    b = CircuitBuilder("demo")
    a = b.input("a")
    b.output(a)
    with pytest.raises(CircuitError, match="already declared"):
        b.output(a)


def test_no_outputs_rejected():
    b = CircuitBuilder("demo")
    b.input("a")
    with pytest.raises(CircuitError, match="no outputs"):
        b.build()


def test_illegal_names_rejected():
    b = CircuitBuilder("demo")
    for bad in ("", "a b", "x(1)", None):
        with pytest.raises(CircuitError):
            b.input(bad)  # type: ignore[arg-type]


def test_mux_semantics():
    b = CircuitBuilder("demo")
    s, x, y = b.inputs("s", "x", "y")
    m = b.mux("m", s, x, y)
    b.output(m)
    circuit = b.build()
    values = simulate(circuit, PatternSet.exhaustive(circuit.inputs))
    for j in range(8):
        vec = {n: (values[n] >> j) & 1 for n in ("s", "x", "y", "m")}
        expected = vec["y"] if vec["s"] else vec["x"]
        assert vec["m"] == expected


def test_const_gates():
    b = CircuitBuilder("demo")
    b.input("a")
    one = b.const1("one")
    zero = b.const0("zero")
    n = b.or_("n", one, zero)
    b.output(n)
    circuit = b.build()
    ps = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, ps)
    assert values["n"] == ps.mask


def test_lut_gate_through_builder():
    b = CircuitBuilder("demo")
    a, bb = b.inputs("a", "b")
    n = b.lut("n", 0b0110, a, bb)  # XOR truth table
    b.output(n)
    circuit = b.build()
    values = simulate(circuit, PatternSet.exhaustive(circuit.inputs))
    assert values["n"] == values["a"] ^ values["b"]
