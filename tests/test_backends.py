"""The backend registry, selection rules and the compile-cache seam.

Cross-backend *numerical* parity lives in ``test_kernel_parity.py``
(the numpy backend must be bit-identical to the python one); this file
covers the subsystem mechanics: registration and generations, auto
selection, graceful degradation when numpy is missing, per-backend
compile-cache keying (a compiled artifact can never outlive the backend
registration it was compiled for), and the engine/provenance plumbing.
"""

from __future__ import annotations

import pytest

from repro.api import AnalysisEngine, ProtestConfig
from repro.backends import (
    AUTO_BACKEND,
    NUMPY_AUTO_MIN_BLOCK_BITS,
    NUMPY_AUTO_MIN_GATES,
    EvalBackend,
    NumpyBackend,
    PythonBackend,
    available_backends,
    backend_identity,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.backends import base as backends_base
from repro.circuits.library import build
from repro.errors import BackendError, EstimationError, SimulationError
from repro.faults.simulator import FaultSimulator
from repro.kernel import compile_circuit
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate
from repro.sampling.montecarlo import MonteCarloEstimator

numpy_available = get_backend("numpy").is_available()
needs_numpy = pytest.mark.skipif(not numpy_available, reason="numpy not installed")


# -- registry ------------------------------------------------------------------


def test_builtin_backends_registered():
    assert "python" in registered_backends()
    assert "numpy" in registered_backends()
    assert "python" in available_backends()
    assert isinstance(get_backend("python"), PythonBackend)
    assert isinstance(get_backend("numpy"), NumpyBackend)


def test_capability_contracts():
    python = get_backend("python")
    assert {"simulate", "fault_sim", "sample"} <= python.capabilities()
    assert "overrides" in python.capabilities()
    numpy = get_backend("numpy")
    assert {"simulate", "fault_sim", "sample", "vectorized"} <= \
        numpy.capabilities()


def test_unknown_backend_raises():
    with pytest.raises(BackendError):
        get_backend("cuda")
    with pytest.raises(BackendError):
        resolve_backend("cuda")


def test_duplicate_registration_requires_replace():
    with pytest.raises(BackendError):
        register_backend(PythonBackend())


def test_auto_name_is_reserved():
    class Weird(PythonBackend):
        name = AUTO_BACKEND

    with pytest.raises(BackendError):
        register_backend(Weird())


class _ThirdParty(PythonBackend):
    """A third-party engine: subclass, new name, plain registration."""

    name = "third-party-test"


def test_third_party_registration_and_selection():
    backend = _ThirdParty()
    register_backend(backend)
    try:
        assert "third-party-test" in registered_backends()
        assert resolve_backend("third-party-test") is backend
        circuit = build("c17")
        engine = AnalysisEngine(
            circuit, ProtestConfig(backend="third-party-test")
        )
        assert engine.backend_name == "third-party-test"
        # Analytic stages run on the python kernel and say so; the
        # packed-pattern stages record the third-party engine.
        report = engine.analyze()
        assert report.provenance.backend == "python"
        sim = engine.fault_simulate(engine.generate_patterns(32))
        assert sim.provenance.backend == "third-party-test"
    finally:
        backends_base._REGISTRY.pop("third-party-test", None)


# -- auto selection ------------------------------------------------------------


def test_resolve_none_is_python():
    assert resolve_backend(None).name == "python"


def test_resolve_instance_passes_through():
    backend = get_backend("python")
    assert resolve_backend(backend) is backend


def test_auto_small_circuit_is_python():
    assert resolve_backend(AUTO_BACKEND, build("c17")).name == "python"


@needs_numpy
def test_auto_large_circuit_is_numpy():
    circuit = build("mul16")
    assert circuit.n_gates >= NUMPY_AUTO_MIN_GATES
    assert resolve_backend(AUTO_BACKEND, circuit).name == "numpy"


def test_auto_without_circuit_is_python():
    assert resolve_backend(AUTO_BACKEND, None).name == "python"


@needs_numpy
def test_auto_is_workload_aware():
    """Narrow blocks stay on python even for large circuits: the word
    engine only wins when the pattern axis amortizes its call overhead."""
    circuit = build("mul16")
    narrow = resolve_backend(AUTO_BACKEND, circuit, block_bits=1024)
    wide = resolve_backend(
        AUTO_BACKEND, circuit, block_bits=NUMPY_AUTO_MIN_BLOCK_BITS
    )
    assert narrow.name == "python"
    assert wide.name == "numpy"


@needs_numpy
def test_auto_sampler_keeps_python_at_default_blocks():
    """The tracked Monte-Carlo workload (1024-pattern blocks) must not
    regress to the numpy engine under backend='auto'."""
    from repro.sampling.montecarlo import MonteCarloEstimator, SamplingPlan

    circuit = build("mul16")
    default_blocks = MonteCarloEstimator(
        circuit, plan=SamplingPlan(max_patterns=1024), backend="auto"
    )
    assert default_blocks.backend_name == "python"
    wide_blocks = MonteCarloEstimator(
        circuit,
        plan=SamplingPlan(
            max_patterns=NUMPY_AUTO_MIN_BLOCK_BITS,
            block_size=NUMPY_AUTO_MIN_BLOCK_BITS,
        ),
        backend="auto",
    )
    assert wide_blocks.backend_name == "numpy"


def test_auto_degrades_when_numpy_missing(monkeypatch):
    numpy = get_backend("numpy")
    monkeypatch.setattr(type(numpy), "is_available", lambda self: False)
    assert resolve_backend(AUTO_BACKEND, build("mul16")).name == "python"
    # ... but asking for it by name is an explicit error with a hint.
    with pytest.raises(BackendError, match="not available"):
        resolve_backend("numpy")


# -- compile-cache keying (the stale-dispatch fix) -----------------------------


def test_compile_cache_shared_per_backend():
    circuit = build("alu")
    default = compile_circuit(circuit)
    assert compile_circuit(circuit) is default
    assert compile_circuit(circuit, get_backend("python")) is default
    other = compile_circuit(circuit, get_backend("numpy"))
    assert other is not default
    assert compile_circuit(circuit, "numpy") is other


def test_replacing_a_backend_invalidates_its_compiled_artifacts():
    circuit = build("comp8")
    stale = compile_circuit(circuit)  # keyed on the current python identity
    old_identity = backend_identity(None)
    replacement = register_backend(PythonBackend(), replace=True)
    try:
        assert backend_identity(None) != old_identity
        fresh = compile_circuit(circuit)
        # The replacement can never be served the artifact compiled for
        # its predecessor: the cache key includes the generation.
        assert fresh is not stale
        assert compile_circuit(circuit, replacement) is fresh
    finally:
        register_backend(PythonBackend(), replace=True)


def test_backend_identity_tracks_generation():
    first = backend_identity("python")
    register_backend(PythonBackend(), replace=True)
    try:
        second = backend_identity("python")
        assert first != second
        assert second.startswith("python#")
    finally:
        register_backend(PythonBackend(), replace=True)


# -- engine / config / provenance plumbing -------------------------------------


def test_config_backend_knob_validation():
    assert ProtestConfig().backend == "auto"
    assert ProtestConfig(backend="python").backend == "python"
    with pytest.raises(EstimationError):
        ProtestConfig(backend="")
    with pytest.raises(EstimationError):
        ProtestConfig(backend=7)


def test_config_backend_changes_hash():
    assert ProtestConfig(backend="python").config_hash != \
        ProtestConfig(backend="numpy").config_hash


def test_engine_resolves_and_reports_backend():
    engine = AnalysisEngine("c17", ProtestConfig(backend="python"))
    assert engine.backend_name == "python"
    assert engine.cache_info()["backend"] == "python"
    report = engine.analyze()
    assert report.provenance.backend == "python"
    round_tripped = type(report).from_dict(report.to_dict())
    assert round_tripped.provenance.backend == "python"


def test_legacy_engine_reports_legacy_backend():
    engine = AnalysisEngine("c17", "fast", use_kernel=False)
    assert engine.backend is None
    assert engine.backend_name == "legacy"
    assert engine.analyze().provenance.backend == "legacy"


def test_engine_unknown_backend_fails_fast():
    # The config itself stays lazy (third-party backends may register
    # later), but engine construction resolves the name and raises.
    with pytest.raises(BackendError):
        AnalysisEngine("c17", ProtestConfig(backend="not-a-backend"))


def test_legacy_paths_reject_backend_selection():
    circuit = build("c17")
    patterns = PatternSet.random(circuit.inputs, 16, seed=1)
    with pytest.raises(SimulationError):
        simulate(circuit, patterns, use_kernel=False, backend="python")
    with pytest.raises(SimulationError):
        FaultSimulator(circuit, use_kernel=False, backend="python")
    with pytest.raises(SimulationError):
        MonteCarloEstimator(circuit, use_kernel=False, backend="python")


@needs_numpy
def test_numpy_engine_end_to_end_matches_python():
    python_engine = AnalysisEngine("alu", ProtestConfig(backend="python"))
    numpy_engine = AnalysisEngine("alu", ProtestConfig(backend="numpy"))
    assert numpy_engine.backend_name == "numpy"
    patterns = python_engine.generate_patterns(96)
    py = python_engine.fault_simulate(patterns, drop_detected=False)
    np_ = numpy_engine.fault_simulate(patterns, drop_detected=False)
    assert py.coverage == np_.coverage
    assert py.curve == np_.curve
    assert np_.provenance.backend == "numpy"


# -- protocol shape ------------------------------------------------------------


def test_eval_backend_is_abstract():
    with pytest.raises(TypeError):
        EvalBackend()  # abstract methods missing
