"""Exhaustive verification of the SN74181 ALU netlist."""

from __future__ import annotations

import pytest

from repro.circuits import sn74181, sn74181_reference
from repro.logicsim import PatternSet, simulate
from tests.conftest import bits_to_int


@pytest.fixture(scope="module")
def alu_values():
    circuit = sn74181()
    ps = PatternSet.exhaustive(circuit.inputs)  # 2^14 = 16384 patterns
    return circuit, ps, simulate(circuit, ps)


def test_structure():
    circuit = sn74181()
    assert len(circuit.inputs) == 14
    assert len(circuit.outputs) == 8
    assert circuit.n_gates == 62  # the datasheet network


def test_full_exhaustive_against_reference(alu_values):
    circuit, ps, values = alu_values
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        a = bits_to_int(vec, ["A0", "A1", "A2", "A3"])
        b = bits_to_int(vec, ["B0", "B1", "B2", "B3"])
        s = bits_to_int(vec, ["S0", "S1", "S2", "S3"])
        expected = sn74181_reference(a, b, s, vec["M"], vec["CN"])
        for out, want in expected.items():
            assert (values[out] >> j) & 1 == want, (a, b, s, vec, out)


def _f_value(values, j):
    return sum(((values[f"F{i}"] >> j) & 1) << i for i in range(4))


def test_arithmetic_mode_a_plus_b(alu_values):
    """S=1001, M=0, CN=1 computes F = A plus B (datasheet function table)."""
    circuit, ps, values = alu_values
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        if bits_to_int(vec, ["S0", "S1", "S2", "S3"]) != 0b1001:
            continue
        if vec["M"] != 0 or vec["CN"] != 1:
            continue
        a = bits_to_int(vec, ["A0", "A1", "A2", "A3"])
        b = bits_to_int(vec, ["B0", "B1", "B2", "B3"])
        assert _f_value(values, j) == (a + b) % 16
        # CN4 is the active-low carry out.
        assert (values["CN4"] >> j) & 1 == (0 if a + b > 15 else 1)


def test_arithmetic_mode_a_minus_b(alu_values):
    """S=0110, M=0, CN=0 computes F = A minus B."""
    circuit, ps, values = alu_values
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        if bits_to_int(vec, ["S0", "S1", "S2", "S3"]) != 0b0110:
            continue
        if vec["M"] != 0 or vec["CN"] != 0:
            continue
        a = bits_to_int(vec, ["A0", "A1", "A2", "A3"])
        b = bits_to_int(vec, ["B0", "B1", "B2", "B3"])
        assert _f_value(values, j) == (a - b) % 16


def test_logic_mode_functions(alu_values):
    """M=1: S=0110 -> XOR, S=1011 -> AND, S=1110 -> OR, S=0000 -> NOT A."""
    circuit, ps, values = alu_values
    table = {
        0b0110: lambda a, b: a ^ b,
        0b1011: lambda a, b: a & b,
        0b1110: lambda a, b: a | b,
        0b0000: lambda a, b: (~a) % 16 & 0xF,
    }
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        if vec["M"] != 1:
            continue
        s = bits_to_int(vec, ["S0", "S1", "S2", "S3"])
        if s not in table:
            continue
        a = bits_to_int(vec, ["A0", "A1", "A2", "A3"])
        b = bits_to_int(vec, ["B0", "B1", "B2", "B3"])
        assert _f_value(values, j) == table[s](a, b) & 0xF, (a, b, s)


def test_aeb_open_collector_semantics(alu_values):
    """AEB is high exactly when F = 1111 (subtract-mode equality flag)."""
    circuit, ps, values = alu_values
    for j in range(0, ps.n_patterns, 7):  # sampled: property is simple
        assert (values["AEB"] >> j) & 1 == (
            1 if _f_value(values, j) == 0xF else 0
        )


def test_logic_mode_carry_independence(alu_values):
    """In logic mode (M=1) the F outputs must not depend on CN."""
    circuit, ps, values = alu_values
    by_key = {}
    for j in range(ps.n_patterns):
        vec = ps.vector(j)
        if vec["M"] != 1:
            continue
        key = (
            bits_to_int(vec, ["A0", "A1", "A2", "A3"]),
            bits_to_int(vec, ["B0", "B1", "B2", "B3"]),
            bits_to_int(vec, ["S0", "S1", "S2", "S3"]),
        )
        f = _f_value(values, j)
        if key in by_key:
            assert by_key[key] == f
        else:
            by_key[key] = f
