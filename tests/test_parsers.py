"""Unit tests for the .bench and SDL parsers / writers."""

from __future__ import annotations

import pytest

from repro.circuit import (
    GateType,
    format_bench,
    format_sdl,
    parse_bench,
    parse_sdl,
)
from repro.circuit.bench_parser import load_bench
from repro.circuit.sdl import load_sdl, save_sdl
from repro.circuit.writer import save_bench
from repro.circuits import c17, sn74181
from repro.errors import CircuitError, ParseError
from repro.logicsim import PatternSet, simulate

BENCH_TEXT = """
# a comment
INPUT(a)
INPUT(b)
OUTPUT(y)
n1 = NAND(a, b)
y  = NOT(n1)
"""


def test_parse_bench_basic():
    circuit = parse_bench(BENCH_TEXT, "demo")
    assert circuit.inputs == ("a", "b")
    assert circuit.outputs == ("y",)
    assert circuit.gate("n1").gtype is GateType.NAND
    assert circuit.gate("y").gtype is GateType.NOT


def test_parse_bench_case_insensitive_types():
    circuit = parse_bench("INPUT(a)\nOUTPUT(y)\ny = nand(a, a)\n")
    assert circuit.gate("y").gtype is GateType.NAND


def test_parse_bench_aliases():
    circuit = parse_bench(
        "INPUT(a)\nOUTPUT(y)\nn = INV(a)\ny = BUFF(n)\n"
    )
    assert circuit.gate("n").gtype is GateType.NOT
    assert circuit.gate("y").gtype is GateType.BUF


def test_parse_bench_errors_carry_line_numbers():
    with pytest.raises(ParseError, match="line 2"):
        parse_bench("INPUT(a)\nthis is garbage\n")


def test_parse_bench_cuts_dff_by_default():
    circuit = parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n")
    assert "q" in circuit.inputs      # state output -> pseudo-PI
    assert "a" in circuit.outputs     # data node -> pseudo-PO


def test_parse_bench_rejects_dff_in_reject_mode():
    with pytest.raises(ParseError, match="DFF"):
        parse_bench(
            "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n", sequential="reject"
        )


def test_parse_bench_rejects_unknown_gate():
    with pytest.raises(ParseError, match="unknown gate type"):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")


def test_parse_bench_requires_output():
    with pytest.raises(ParseError, match="no OUTPUT"):
        parse_bench("INPUT(a)\n")


def test_parse_bench_malformed_args():
    with pytest.raises(ParseError, match="malformed"):
        parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, , a)\n")


def test_bench_roundtrip_c17():
    circuit = c17()
    text = format_bench(circuit)
    back = parse_bench(text, circuit.name)
    assert back.inputs == circuit.inputs
    assert back.outputs == circuit.outputs
    assert set(back.gates) == set(circuit.gates)
    # Functional identity over the full input space.
    ps = PatternSet.exhaustive(circuit.inputs)
    v1 = simulate(circuit, ps)
    v2 = simulate(back, ps)
    for out in circuit.outputs:
        assert v1[out] == v2[out]


def test_bench_file_io(tmp_path):
    path = str(tmp_path / "c17.bench")
    save_bench(c17(), path)
    circuit = load_bench(path)
    assert circuit.name == "c17"
    assert circuit.n_gates == 6


SDL_TEXT = """
circuit demo
input a b       ; two inputs
output y
n1 = and a b
n2 = lut 0x6 a b    # xor via LUT
y = or n1 n2
end
"""


def test_parse_sdl_basic():
    circuit = parse_sdl(SDL_TEXT)
    assert circuit.name == "demo"
    assert circuit.inputs == ("a", "b")
    assert circuit.gate("n2").gtype is GateType.LUT
    assert circuit.gate("n2").table == 6


def test_sdl_roundtrip_preserves_function():
    circuit = parse_sdl(SDL_TEXT)
    back = parse_sdl(format_sdl(circuit))
    ps = PatternSet.exhaustive(circuit.inputs)
    v1 = simulate(circuit, ps)
    v2 = simulate(back, ps)
    assert v1["y"] == v2["y"]


def test_sdl_roundtrip_alu():
    circuit = sn74181()
    back = parse_sdl(format_sdl(circuit))
    assert back.inputs == circuit.inputs
    assert back.outputs == circuit.outputs
    assert set(back.gates) == set(circuit.gates)


def test_sdl_errors():
    with pytest.raises(ParseError, match="unknown gate type"):
        parse_sdl("circuit x\ninput a\noutput y\ny = frobnicate a\n")
    with pytest.raises(ParseError, match="truth table"):
        parse_sdl("circuit x\ninput a\noutput y\ny = lut zz a\n")
    with pytest.raises(ParseError, match="no outputs"):
        parse_sdl("circuit x\ninput a\n")
    with pytest.raises(ParseError, match="duplicate 'circuit'"):
        parse_sdl("circuit x\ncircuit y\n")
    with pytest.raises(ParseError, match="exactly one name"):
        parse_sdl("circuit x y\n")


def test_sdl_file_io(tmp_path):
    path = str(tmp_path / "demo.sdl")
    save_sdl(parse_sdl(SDL_TEXT), path)
    circuit = load_sdl(path)
    assert circuit.name == "demo"


def test_bench_writer_rejects_lut():
    circuit = parse_sdl(SDL_TEXT)
    with pytest.raises(CircuitError, match="cannot be written"):
        format_bench(circuit)


def test_sdl_end_stops_parsing():
    circuit = parse_sdl(
        "circuit x\ninput a\noutput a\nend\nthis would be garbage\n"
    )
    assert circuit.name == "x"
