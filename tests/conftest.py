"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.circuit import CircuitBuilder


@pytest.fixture
def tree_circuit():
    """Fan-out-free circuit: the tree rule is exact on it."""
    b = CircuitBuilder("tree")
    a, bb, c, d = b.inputs("a", "b", "c", "d")
    n1 = b.and_("n1", a, bb)
    n2 = b.or_("n2", c, d)
    n3 = b.xor("n3", n1, n2)
    b.output(n3)
    return b.build()


@pytest.fixture
def reconvergent_circuit():
    """k = AND(AND(x, y), AND(x, z)) — exact P(k) = P(x)P(y)P(z)."""
    b = CircuitBuilder("reconv")
    x, y, z = b.inputs("x", "y", "z")
    a = b.and_("a", x, y)
    c = b.and_("c", x, z)
    k = b.and_("k", a, c)
    b.output(k)
    return b.build()


@pytest.fixture
def xor_pair_circuit():
    """AND of two identical XNORs: zero covariance but full correlation."""
    b = CircuitBuilder("xorpair")
    i1, i2 = b.inputs("i1", "i2")
    n1 = b.xnor("n1", i1, i2)
    n2 = b.xnor("n2", i1, i2)
    k = b.and_("k", n1, n2)
    b.output(k)
    return b.build()


def bits_to_int(values, names):
    """Pack named 0/1 values (LSB first) into an integer."""
    return sum(values[name] << i for i, name in enumerate(names))


def int_to_vec(value, names):
    """Inverse of :func:`bits_to_int`."""
    return {name: (value >> i) & 1 for i, name in enumerate(names)}
