"""Tests for SCOAP and the P_SCOAP transform."""

from __future__ import annotations

import math

import pytest

from repro.circuit import CircuitBuilder
from repro.circuits import c17
from repro.baselines import pscoap_detection_probabilities, scoap
from repro.faults import Fault, fault_universe


def test_primary_input_costs():
    result = scoap(c17())
    for node in ("G1", "G2", "G3", "G6", "G7"):
        assert result.cc0[node] == 1.0
        assert result.cc1[node] == 1.0


def test_and_gate_textbook_values():
    b = CircuitBuilder("and2")
    x, y = b.inputs("x", "y")
    b.output(b.and_("z", x, y))
    result = scoap(b.build())
    assert result.cc1["z"] == 3.0  # both inputs to 1, +1
    assert result.cc0["z"] == 2.0  # cheapest input to 0, +1
    # Observability of x: set y to 1 (cost 1) + CO(z)=0 + 1.
    assert result.co["x"] == 2.0


def test_inverter_swaps_controllabilities():
    b = CircuitBuilder("inv")
    a = b.input("a")
    b.output(b.not_("y", a))
    result = scoap(b.build())
    assert result.cc0["y"] == 2.0
    assert result.cc1["y"] == 2.0
    assert result.co["a"] == 1.0


def test_xor_gate_minimum_assignment():
    b = CircuitBuilder("xor2")
    x, y = b.inputs("x", "y")
    b.output(b.xor("z", x, y))
    result = scoap(b.build())
    # z=1: one input 1, the other 0: cost 2 + 1.
    assert result.cc1["z"] == 3.0
    assert result.cc0["z"] == 3.0
    # Pin observability: the side input can take either value: cost 1 + 1.
    assert result.co["x"] == 2.0


def test_constant_gates_infinite_cost():
    b = CircuitBuilder("const")
    a = b.input("a")
    one = b.const1("one")
    b.output(b.and_("y", a, one))
    result = scoap(b.build())
    assert result.cc1["one"] == 1.0
    assert math.isinf(result.cc0["one"])


def test_stem_observability_is_min_over_branches():
    circuit = c17()
    result = scoap(circuit)
    branch_values = [
        result.co_pin[("G16", 1)],
        result.co_pin[("G19", 0)],
    ]
    assert result.co["G11"] == min(branch_values)


def test_deeper_nodes_cost_more():
    circuit = c17()
    result = scoap(circuit)
    assert result.cc1["G22"] > result.cc1["G10"] - 1e-9
    assert result.co["G1"] > result.co["G22"]


def test_pscoap_probabilities_in_range():
    circuit = c17()
    probs = pscoap_detection_probabilities(circuit)
    assert set(probs) == set(fault_universe(circuit))
    for fault, p in probs.items():
        assert 0.0 <= p <= 1.0, str(fault)


def test_pscoap_monotone_in_cost():
    """Cheaper faults get higher pseudo-probability."""
    b = CircuitBuilder("chain")
    current = b.input("i0")
    for level in range(1, 6):
        nxt = b.input(f"i{level}")
        current = b.and_(f"n{level}", current, nxt)
    b.output(current)
    circuit = b.build()
    probs = pscoap_detection_probabilities(circuit)
    # A fault deep in the chain (i0 s-a-1: all sides must be 1) is rated
    # below the output fault.
    assert probs[Fault("i0", None, 1)] < probs[Fault("n5", None, 1)]


def test_pscoap_undetectable_is_zero():
    b = CircuitBuilder("const")
    a = b.input("a")
    one = b.const1("one")
    b.output(b.and_("y", a, one))
    probs = pscoap_detection_probabilities(b.build())
    assert probs[Fault("one", None, 1)] == 0.0  # can never be excited
