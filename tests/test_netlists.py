"""Vendored ISCAS-85-class netlists: shape, registration, analyzability."""

from __future__ import annotations

import pytest

from repro.api.engine import AnalysisEngine
from repro.circuit.netlist import Circuit
from repro.circuits.library import NETLIST_NAMES, build, names
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate

#: Published primary input/output counts the reconstructions must match.
EXPECTED_IO = {
    "c432": (36, 7),
    "c880": (60, 26),
    "c1355": (41, 32),
}


def test_registered_in_library():
    for name in NETLIST_NAMES:
        assert name in names()


@pytest.mark.parametrize("name", NETLIST_NAMES)
def test_io_shape(name):
    circuit = build(name)
    assert isinstance(circuit, Circuit)
    assert (len(circuit.inputs), len(circuit.outputs)) == EXPECTED_IO[name]
    assert circuit.n_gates >= 90           # multi-hundred-gate payloads
    assert circuit.name == name


@pytest.mark.parametrize("name", NETLIST_NAMES)
def test_structural_hash_stable_across_loads(name):
    assert build(name).structural_hash() == build(name).structural_hash()


def test_structural_hash_ignores_display_name():
    a = build("c432")
    renamed = Circuit("other-name", a.inputs, a.outputs,
                      list(a.gates.values()))
    assert renamed.structural_hash() == a.structural_hash()
    assert renamed.structural_hash() != build("c880").structural_hash()


def test_c1355_is_all_nand_not():
    circuit = build("c1355")
    kinds = {gate.gtype.value for gate in circuit.gates.values()}
    assert kinds <= {"NAND", "NOT"}


@pytest.mark.parametrize("name", NETLIST_NAMES)
def test_simulates_and_responds_to_inputs(name):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 64, None, seed=7)
    values = simulate(circuit, patterns)
    # At least one output toggles over 64 random patterns — the
    # reconstruction is live logic, not a constant block.
    mask = (1 << 64) - 1
    toggling = [
        node for node in circuit.outputs
        if values[node] & mask not in (0, mask)
    ]
    assert toggling


def test_c432_analyzable():
    report = AnalysisEngine(build("c432"), "fast").analyze()
    assert report.n_faults > 500
    assert 0.0 <= report.min_detection <= report.median_detection <= 1.0
