"""Vendored ISCAS-class netlists: shape, registration, analyzability."""

from __future__ import annotations

from importlib import resources

import pytest

from repro.api.engine import AnalysisEngine
from repro.circuit.io import read_bench
from repro.circuit.netlist import Circuit
from repro.circuit.writer import format_bench
from repro.circuits.library import NETLIST_NAMES, build, names
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate

#: Input/output counts the reconstructions must match after loading.  For
#: the combinational c-series these are the published ISCAS-85 PI/PO
#: counts; for the sequential s-series they are the post-cut counts
#: (published PI/PO plus one pseudo-PI and pseudo-PO per flip-flop).
EXPECTED_IO = {
    "c432": (36, 7),
    "c499": (41, 32),
    "c880": (60, 26),
    "c1355": (41, 32),
    "c1908": (33, 25),
    "c2670": (233, 140),
    "c3540": (50, 22),
    "c5315": (178, 123),
    "c6288": (32, 32),
    "c7552": (207, 108),
    "s1196": (32, 32),
    "s15850": (611, 684),
}

#: Flip-flop counts for the sequential reconstructions.
EXPECTED_DFFS = {"s1196": 18, "s15850": 534}


def _netlist_text(name):
    return (
        resources.files("repro.circuits") / "netlists" / f"{name}.bench"
    ).read_text(encoding="utf-8")


def test_registered_in_library():
    for name in NETLIST_NAMES:
        assert name in names()


@pytest.mark.parametrize("name", NETLIST_NAMES)
def test_io_shape(name):
    circuit = build(name)
    assert isinstance(circuit, Circuit)
    assert (len(circuit.inputs), len(circuit.outputs)) == EXPECTED_IO[name]
    assert circuit.n_gates >= 90           # multi-hundred-gate payloads
    assert circuit.name == name


@pytest.mark.parametrize("name", NETLIST_NAMES)
def test_structural_hash_stable_across_loads(name):
    assert build(name).structural_hash() == build(name).structural_hash()


def test_structural_hash_ignores_display_name():
    a = build("c432")
    renamed = Circuit("other-name", a.inputs, a.outputs,
                      list(a.gates.values()))
    assert renamed.structural_hash() == a.structural_hash()
    assert renamed.structural_hash() != build("c880").structural_hash()


def test_c1355_is_all_nand_not():
    circuit = build("c1355")
    kinds = {gate.gtype.value for gate in circuit.gates.values()}
    assert kinds <= {"NAND", "NOT"}


@pytest.mark.parametrize("name", NETLIST_NAMES)
def test_simulates_and_responds_to_inputs(name):
    circuit = build(name)
    patterns = PatternSet.random(circuit.inputs, 64, None, seed=7)
    values = simulate(circuit, patterns)
    # At least one output toggles over 64 random patterns — the
    # reconstruction is live logic, not a constant block.
    mask = (1 << 64) - 1
    toggling = [
        node for node in circuit.outputs
        if values[node] & mask not in (0, mask)
    ]
    assert toggling


def test_c432_analyzable():
    report = AnalysisEngine(build("c432"), "fast").analyze()
    assert report.n_faults > 500
    assert 0.0 <= report.min_detection <= report.median_detection <= 1.0


@pytest.mark.parametrize("name", sorted(EXPECTED_DFFS))
def test_sequential_netlists_are_cut(name):
    circuit, info = read_bench(_netlist_text(name), name=name)
    assert len(info.flipflops) == EXPECTED_DFFS[name]
    assert len(info.pseudo_inputs) == EXPECTED_DFFS[name]
    assert len(info.pseudo_outputs) == EXPECTED_DFFS[name]
    # Every flip-flop Q becomes a pseudo-PI, every D a pseudo-PO.
    for q, d in info.flipflops:
        assert circuit.is_input(q)
        assert d in circuit.outputs


def test_s15850_exceeds_ten_thousand_gates():
    # The corpus must contain a 10k+-gate stress circuit for the large-
    # circuit benchmark track (ROADMAP: scale past mul24).
    assert build("s15850").n_gates >= 10_000


@pytest.mark.parametrize("name", NETLIST_NAMES)
def test_round_trip_through_writer(name):
    circuit, info = read_bench(_netlist_text(name), name=name)
    text = format_bench(circuit, info.flipflops)
    again, info2 = read_bench(text, name=name)
    assert again.inputs == circuit.inputs
    assert again.outputs == circuit.outputs
    assert info2.flipflops == info.flipflops
    assert again.structural_hash() == circuit.structural_hash()
