"""Binomial proportion confidence intervals for Monte-Carlo grading.

Every sampled quantity in :mod:`repro.sampling` is a binomial proportion
(a fault detected ``k`` times in ``n`` patterns, a node at one ``k``
times in ``n`` patterns), so the interval machinery lives here once:

* :func:`wilson_interval` — the Wilson score interval.  Good coverage
  at every ``p`` including the extremes, cheap enough to evaluate per
  fault per block inside the sequential stopping rule.
* :func:`clopper_pearson_interval` — the "exact" interval from the beta
  quantiles.  Conservative (never under-covers) and the right choice
  when an interval endpoint feeds a guarantee; costs a few bisection
  steps of the regularized incomplete beta function, all in pure
  ``math`` (no scipy in the container).

:class:`IntervalEstimate` packages one proportion with its bounds; it is
re-exported by :mod:`repro.api.results` and serialized inside
``SampledReport`` payloads.
"""

from __future__ import annotations

import dataclasses
import math
from statistics import NormalDist
from typing import Any, Dict, Mapping, Tuple

from repro.errors import EstimationError

__all__ = [
    "INTERVAL_METHODS",
    "IntervalEstimate",
    "clopper_pearson_interval",
    "patterns_for_halfwidth",
    "proportion_interval",
    "regularized_incomplete_beta",
    "wilson_halfwidth",
    "wilson_interval",
    "z_quantile",
]

#: Recognized values of the ``interval_method`` knob.
INTERVAL_METHODS = ("wilson", "clopper_pearson")


def _check_counts(successes: int, n: int) -> None:
    if n <= 0:
        raise EstimationError(f"sample size must be positive, got {n}")
    if not 0 <= successes <= n:
        raise EstimationError(
            f"successes must be in [0, {n}], got {successes}"
        )


def _check_confidence(confidence: float) -> None:
    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}"
        )


def z_quantile(confidence: float) -> float:
    """Two-sided normal critical value: ``P(|Z| <= z) = confidence``."""
    _check_confidence(confidence)
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def wilson_interval(
    successes: int, n: int, confidence: float = 0.99
) -> Tuple[float, float]:
    """Wilson score interval for ``successes`` out of ``n`` trials."""
    _check_counts(successes, n)
    z = z_quantile(confidence)
    p_hat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p_hat + z2 / (2.0 * n)) / denom
    half = (z / denom) * math.sqrt(
        p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)
    )
    return max(0.0, center - half), min(1.0, center + half)


def wilson_halfwidth(
    successes: int, n: int, confidence: float = 0.99
) -> float:
    """Half the width of :func:`wilson_interval` (stopping-rule metric)."""
    low, high = wilson_interval(successes, n, confidence)
    return (high - low) / 2.0


def patterns_for_halfwidth(
    halfwidth: float, confidence: float = 0.99
) -> int:
    """Smallest ``n`` whose *worst-case* Wilson halfwidth is ``<= halfwidth``.

    Worst case is ``p_hat = 0.5``; the sequential stopping rule can never
    need more patterns than this, so it doubles as a planning bound.
    """
    if not 0.0 < halfwidth < 0.5:
        raise EstimationError(
            f"target halfwidth must be in (0, 0.5), got {halfwidth}"
        )
    z = z_quantile(confidence)
    # Normal-approximation seed, then walk to the exact boundary.
    n = max(1, int(z * z * 0.25 / (halfwidth * halfwidth)))
    while wilson_halfwidth(n // 2, n, confidence) > halfwidth:
        n += max(1, n // 64)
    while n > 1 and wilson_halfwidth((n - 1) // 2, n - 1, confidence) <= halfwidth:
        n -= 1
    return n


# -- Clopper-Pearson via the regularized incomplete beta function ---------------


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Lentz evaluation of the continued fraction for ``I_x(a, b)``."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 300):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the CDF of the Beta(a, b) distribution at ``x``."""
    if a <= 0.0 or b <= 0.0:
        raise EstimationError("beta parameters must be positive")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (
        a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    )
    front = math.exp(log_front)
    # The continued fraction converges fast on one side of the mean.
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def _beta_quantile(p: float, a: float, b: float) -> float:
    """Inverse of :func:`regularized_incomplete_beta` by bisection."""
    low, high = 0.0, 1.0
    for _ in range(80):
        mid = 0.5 * (low + high)
        if regularized_incomplete_beta(a, b, mid) < p:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def clopper_pearson_interval(
    successes: int, n: int, confidence: float = 0.99
) -> Tuple[float, float]:
    """Exact (conservative) Clopper-Pearson interval from beta quantiles."""
    _check_counts(successes, n)
    _check_confidence(confidence)
    alpha = 1.0 - confidence
    if successes == 0:
        low = 0.0
    else:
        low = _beta_quantile(alpha / 2.0, successes, n - successes + 1)
    if successes == n:
        high = 1.0
    else:
        high = _beta_quantile(1.0 - alpha / 2.0, successes + 1, n - successes)
    return low, high


def proportion_interval(
    successes: int, n: int, confidence: float, method: str
) -> Tuple[float, float]:
    """Dispatch on ``method`` (one of :data:`INTERVAL_METHODS`)."""
    if method == "wilson":
        return wilson_interval(successes, n, confidence)
    if method == "clopper_pearson":
        return clopper_pearson_interval(successes, n, confidence)
    raise EstimationError(
        f"interval method must be one of {INTERVAL_METHODS}, got {method!r}"
    )


@dataclasses.dataclass(frozen=True)
class IntervalEstimate:
    """One sampled proportion with its confidence interval.

    ``estimate`` is the plain ``successes / n_samples`` point estimate;
    ``low`` / ``high`` bound the true proportion at ``confidence`` under
    ``method``.  Frozen and hashable so result objects can share them.
    """

    estimate: float
    low: float
    high: float
    n_samples: int
    successes: int
    confidence: float
    method: str = "wilson"

    @classmethod
    def from_counts(
        cls,
        successes: int,
        n: int,
        confidence: float = 0.99,
        method: str = "wilson",
    ) -> "IntervalEstimate":
        low, high = proportion_interval(successes, n, confidence, method)
        return cls(
            estimate=successes / n,
            low=low,
            high=high,
            n_samples=n,
            successes=successes,
            confidence=confidence,
            method=method,
        )

    @property
    def halfwidth(self) -> float:
        return (self.high - self.low) / 2.0

    def contains(self, value: float, tolerance: float = 0.0) -> bool:
        """Whether ``value`` lies inside the (tolerance-widened) interval."""
        return self.low - tolerance <= value <= self.high + tolerance

    def excess(self, value: float) -> float:
        """How far ``value`` falls outside the interval (0 when inside)."""
        if value < self.low:
            return self.low - value
        if value > self.high:
            return value - self.high
        return 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "estimate": self.estimate,
            "low": self.low,
            "high": self.high,
            "n_samples": self.n_samples,
            "successes": self.successes,
            "confidence": self.confidence,
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "IntervalEstimate":
        return cls(
            estimate=data["estimate"],
            low=data["low"],
            high=data["high"],
            n_samples=data["n_samples"],
            successes=data["successes"],
            confidence=data["confidence"],
            method=data.get("method", "wilson"),
        )
