"""Monte-Carlo testability grading on the compiled circuit kernel.

The analytic estimator (cutting + conditional probabilities, paper §2-3)
is a heuristic with a documented error envelope (Table 1 reports max
errors of 0.15-0.48 on the evaluation circuits).  This module is its
independent statistical check: grade the same quantities by simulating
random pattern blocks on the :class:`~repro.kernel.CompiledCircuit` —
reusing the fault-parallel lane packing of the
:class:`~repro.faults.simulator.FaultSimulator` — and report every
number as an :class:`~repro.sampling.intervals.IntervalEstimate` whose
bounds hold at a requested confidence.

Sampling is *sequential*: pattern blocks are simulated until the widest
per-fault (or per-node) interval is narrower than ``target_halfwidth``,
or ``max_patterns`` is reached.  Because the interval halfwidth depends
on the counts only through ``successes`` at a given ``n``, the stopping
rule costs one interval evaluation per block (at the success count
closest to ``n/2``), not one per fault.

For very large fault lists :func:`stratified_fault_sample` grades a
proportional stratified subsample (stems/branches x stuck-at-0/1), which
keeps the per-block cost bounded while the coverage estimate stays an
unbiased proportion over the sampled faults.

Everything is seeded: the block seed stream is derived from one integer
seed via :class:`random.Random` over a string key (SHA-512 based, stable
across processes), so a run is byte-reproducible regardless of the
executor it runs under.
"""

from __future__ import annotations

import contextlib
import dataclasses
import random
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.circuit.netlist import Circuit
from repro.errors import (
    BackendFailure,
    EstimationError,
    ResilienceError,
    SimulationError,
)
from repro.faults.model import Fault, fault_universe
from repro.faults.simulator import FaultSimulator
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate
from repro.resilience.chaos import chaos_point
from repro.sampling.intervals import (
    INTERVAL_METHODS,
    IntervalEstimate,
    proportion_interval,
    wilson_halfwidth,
)
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.profiling import PhaseProfiler, phase_if_active
from repro.telemetry.tracing import span

_BLOCKS_TOTAL = REGISTRY.counter(
    "protest_sampling_blocks_total",
    "Monte-Carlo pattern blocks simulated",
    ("kind",),
)
_PATTERNS_TOTAL = REGISTRY.counter(
    "protest_sampling_patterns_total",
    "Random patterns drawn by the Monte-Carlo estimator",
    ("kind",),
)
_BLOCK_SECONDS = REGISTRY.histogram(
    "protest_sampling_block_seconds",
    "Latency of one sampled block (draw + simulate + intervals)",
    ("kind",),
)
_HALFWIDTH = REGISTRY.gauge(
    "protest_sampling_halfwidth",
    "Widest interval halfwidth after the most recent sampled block",
    ("kind",),
)

__all__ = [
    "DetectionSample",
    "MonteCarloEstimator",
    "SamplingPlan",
    "SamplingState",
    "SignalSample",
    "stratified_fault_sample",
]


@dataclasses.dataclass(frozen=True)
class SamplingPlan:
    """All knobs of one Monte-Carlo grading run.

    Attributes
    ----------
    target_halfwidth:
        Sequential stopping target: sampling stops once the *widest*
        interval is at most this wide on each side.
    confidence_level:
        Two-sided confidence of every reported interval.
    max_patterns:
        Hard cap on the number of simulated patterns; a run that hits it
        before reaching the target reports ``converged=False``.
    block_size:
        Patterns per sampling block (one stopping-rule evaluation per
        block).
    interval_method:
        ``"wilson"`` (default) or ``"clopper_pearson"``.
    seed:
        Root seed of the per-block pattern seed stream.
    fault_sample:
        When set and smaller than the fault universe, grade only a
        stratified subsample of this many faults.
    """

    target_halfwidth: float = 0.02
    confidence_level: float = 0.99
    max_patterns: int = 1 << 16
    block_size: int = 1024
    interval_method: str = "wilson"
    seed: int = 0
    fault_sample: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.target_halfwidth < 0.5:
            raise EstimationError(
                f"target_halfwidth must be in (0, 0.5), "
                f"got {self.target_halfwidth}"
            )
        if not 0.0 < self.confidence_level < 1.0:
            raise EstimationError(
                f"confidence_level must be in (0, 1), "
                f"got {self.confidence_level}"
            )
        if self.max_patterns < 1:
            raise EstimationError(
                f"max_patterns must be positive, got {self.max_patterns}"
            )
        if self.block_size < 1:
            raise EstimationError(
                f"block_size must be positive, got {self.block_size}"
            )
        if self.interval_method not in INTERVAL_METHODS:
            raise EstimationError(
                f"interval_method must be one of {INTERVAL_METHODS}, "
                f"got {self.interval_method!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise EstimationError(f"seed must be an int, got {self.seed!r}")
        if self.fault_sample is not None and self.fault_sample < 1:
            raise EstimationError(
                f"fault_sample must be positive or None, "
                f"got {self.fault_sample}"
            )


def stratified_fault_sample(
    faults: Sequence[Fault], k: "int | None", seed: int = 0
) -> List[Fault]:
    """A proportional stratified subsample of ``k`` faults.

    Strata are (stem/branch) x (stuck-at value); allocation is
    proportional with largest-remainder rounding, and selection inside a
    stratum is a seeded ``random.sample`` over the stratum sorted by the
    fault's stable sort key — deterministic for a given seed.  With
    ``k`` ``None`` or not smaller than the universe, the input order is
    returned unchanged.
    """
    fault_list = list(faults)
    if k is None or k >= len(fault_list):
        return fault_list
    if k < 1:
        raise EstimationError(f"fault sample size must be positive, got {k}")
    strata: Dict[Tuple[bool, int], List[Fault]] = {}
    for fault in fault_list:
        strata.setdefault((fault.is_stem, fault.value), []).append(fault)
    keys = sorted(strata)
    total = len(fault_list)
    quotas = {key: k * len(strata[key]) / total for key in keys}
    counts = {key: int(quotas[key]) for key in keys}
    remainder = k - sum(counts.values())
    by_fraction = sorted(
        keys, key=lambda key: (quotas[key] - counts[key], key), reverse=True
    )
    for key in by_fraction[:remainder]:
        counts[key] += 1
    rng = random.Random(f"protest-fault-sample:{seed}")
    chosen: List[Fault] = []
    for key in keys:
        # Every allocation fits its stratum: the quota is < the stratum
        # size (k < total), so int(quota) + 1 never exceeds it, and
        # largest-remainder rounding makes the counts sum to exactly k.
        members = sorted(strata[key], key=lambda f: f.sort_key)
        chosen.extend(rng.sample(members, counts[key]))
    chosen.sort(key=lambda f: f.sort_key)
    return chosen


@dataclasses.dataclass
class SignalSample:
    """Sampled signal probabilities: one interval per node."""

    intervals: Dict[str, IntervalEstimate]
    n_patterns: int
    converged: bool
    max_halfwidth: float
    history: List[Tuple[int, float]]

    def __getitem__(self, node: str) -> IntervalEstimate:
        return self.intervals[node]


@dataclasses.dataclass
class DetectionSample:
    """Sampled detection probabilities plus the fault-coverage proportion.

    ``intervals`` has one entry per *graded* fault (the stratified
    subsample when one was requested); ``coverage`` is the proportion of
    graded faults detected at least once by the sampled patterns.  When
    the graded faults are a random subsample its interval bounds the
    universe-wide proportion over the fault-sampling randomness; when
    the full universe was graded there is no fault-sampling randomness
    and the interval is degenerate (``low == high == estimate``).
    ``history`` records the stopping-rule trajectory as ``(n_patterns,
    max_halfwidth)`` pairs per block.
    """

    intervals: Dict[Fault, IntervalEstimate]
    coverage: IntervalEstimate
    n_patterns: int
    converged: bool
    max_halfwidth: float
    n_universe: int
    history: List[Tuple[int, float]]
    first_detect: Dict[Fault, Optional[int]]

    def __getitem__(self, fault: Fault) -> IntervalEstimate:
        return self.intervals[fault]


@dataclasses.dataclass
class SamplingState:
    """Resumable counter state of one detection-sampling run.

    Everything the sequential loop accumulates, keyed portably: faults
    by their stable string form (``str(fault)``), the block trajectory
    as plain pairs.  Because the per-block seed stream is a pure
    function of ``(seed, block index)``, a run resumed from this state
    — same circuit, same plan — continues with exactly the patterns an
    uninterrupted run would have drawn next, so the final sample is
    **bit-identical** to never having stopped.  That property is what
    the job journal (:mod:`repro.resilience.journal`) persists per
    block, and what the service's crash-retry and restart-resume paths
    are verified against.
    """

    seed: int
    n_patterns: int
    counts: Dict[str, int]
    first: Dict[str, Optional[int]]
    history: List[Tuple[int, float]]

    @property
    def blocks_done(self) -> int:
        return len(self.history)

    def to_payload(self) -> Dict[str, object]:
        """A JSON-safe rendering (journal format v1)."""
        return {
            "version": 1,
            "seed": self.seed,
            "n_patterns": self.n_patterns,
            "counts": dict(self.counts),
            "first": dict(self.first),
            "history": [[n, hw] for n, hw in self.history],
        }

    @classmethod
    def from_payload(cls, data: Mapping[str, object]) -> "SamplingState":
        try:
            if data["version"] != 1:
                raise ResilienceError(
                    f"unknown sampling-state version {data['version']!r}"
                )
            return cls(
                seed=int(data["seed"]),              # type: ignore[arg-type]
                n_patterns=int(data["n_patterns"]),  # type: ignore[arg-type]
                counts={k: int(v) for k, v in data["counts"].items()},  # type: ignore[union-attr]
                first={
                    k: (None if v is None else int(v))
                    for k, v in data["first"].items()  # type: ignore[union-attr]
                },
                history=[(int(n), float(hw)) for n, hw in data["history"]],  # type: ignore[union-attr]
            )
        except (KeyError, TypeError, ValueError, AttributeError) as error:
            raise ResilienceError(
                f"malformed sampling state: {error}"
            ) from error


def _block_seeds(seed: int, salt: str):
    """Deterministic, process-independent stream of per-block seeds."""
    rng = random.Random(f"protest-sampling:{salt}:{seed}")
    while True:
        yield rng.getrandbits(64)


class MonteCarloEstimator:
    """Statistical grading of one circuit under one sampling plan.

    Parameters mirror the analytic estimator's: a circuit, a fault list
    (defaulting to the full uncollapsed universe) and the plan.  All
    simulation runs on the shared compiled kernel through the selected
    evaluation ``backend`` (:mod:`repro.backends`; ``None`` is the
    pure-python engine) unless ``use_kernel=False`` selects the legacy
    interpreters.  Every backend produces bit-identical detection words
    and block counts, hence seed-identical samples.
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: "Iterable[Fault] | None" = None,
        plan: "SamplingPlan | None" = None,
        use_kernel: bool = True,
        backend=None,
        fallback: bool = True,
        profile: bool = False,
    ) -> None:
        self.circuit = circuit
        self.plan = plan if plan is not None else SamplingPlan()
        self.use_kernel = use_kernel
        # Opt-in phase profiler (repro.telemetry.profiling): the two
        # sampling entry points activate it, so block spans and backend
        # word calls aggregate per phase.  Honours the telemetry
        # kill-switch; ``None`` keeps the hot loop on its no-op branch.
        self.profiler: "PhaseProfiler | None" = (
            PhaseProfiler() if profile else None
        )
        #: Degrade to the ``"python"`` engine when the selected backend
        #: raises mid-run (recorded in :attr:`degraded`); ``False``
        #: propagates the failure as :class:`BackendFailure` instead.
        self.fallback = fallback
        #: Degradation events: ``{"block", "backend", "error"}`` per
        #: mid-run fallback, in occurrence order.
        self.degraded: List[Dict[str, object]] = []
        if use_kernel:
            from repro.backends import resolve_backend

            # "auto" resolves against this estimator's real workload
            # shape: blocks of ``plan.block_size`` patterns.
            self.backend = resolve_backend(
                backend, circuit, block_bits=self.plan.block_size
            )
        else:
            if backend is not None:
                raise SimulationError(
                    "backend selection requires the compiled kernel "
                    "(use_kernel=True)"
                )
            self.backend = None
        universe = list(faults) if faults is not None else fault_universe(circuit)
        self.fault_universe = universe
        self.faults = stratified_fault_sample(
            universe, self.plan.fault_sample, self.plan.seed
        )
        self._simulator: "FaultSimulator | None" = None

    @property
    def backend_name(self) -> str:
        """The resolved backend's name (``"legacy"`` off-kernel).

        After a mid-run degradation the name records the event
        truthfully as ``"<original>-><fallback>"`` (e.g.
        ``"numpy->python"``) — the string that ends up in
        ``Provenance.backend``, so a report computed on a degraded
        engine can never masquerade as a clean run.
        """
        if self.backend is None:
            return "legacy"
        if self.degraded:
            return f"{self.degraded[0]['backend']}->{self.backend.name}"
        return self.backend.name

    def _profiled(self):
        """Activation context of :attr:`profiler` (no-op when ``None``)."""
        if self.profiler is None:
            return contextlib.nullcontext()
        return self.profiler.activate()

    def profile_report(self) -> "Dict[str, object] | None":
        """The phase-profile payload, or ``None`` off ``profile=True``."""
        return None if self.profiler is None else self.profiler.to_payload()

    @property
    def simulator(self) -> FaultSimulator:
        if self._simulator is None:
            self._simulator = FaultSimulator(
                self.circuit, self.faults, use_kernel=self.use_kernel,
                backend=self.backend,
            )
        return self._simulator

    # -- block scheduling -----------------------------------------------------------

    def _blocks(self, done: int = 0):
        """Block sizes covering ``max_patterns`` exactly, lazily.

        ``done`` skips patterns already accumulated by a resumed run:
        the remaining sizes are exactly the sizes an uninterrupted run
        would still have ahead of it.
        """
        plan = self.plan
        remaining = plan.max_patterns - done
        while remaining > 0:
            size = min(plan.block_size, remaining)
            yield size
            remaining -= size

    def _block_counter(self):
        """Per-node one-counts of one pattern block, backend-dispatched.

        On the kernel path the block stream stays in the backend's word
        domain (the numpy engine counts bits on the value matrix without
        materializing python integers); every backend produces identical
        counts, so sampled results are seed-identical across backends.
        """
        if not self.use_kernel:
            def legacy(patterns):
                values = simulate(self.circuit, patterns, use_kernel=False)
                return [
                    (node, word.bit_count()) for node, word in values.items()
                ]
            return legacy
        from repro.kernel import compile_circuit

        backend = self.backend
        compiled = compile_circuit(self.circuit, backend)
        names = compiled.names

        backend_name = backend.name

        def counted(patterns):
            with span(
                "backend.sample_block",
                backend=backend_name, patterns=patterns.n_patterns,
            ), phase_if_active(backend_name):
                counts = backend.sample_block(compiled, patterns)
            return zip(names, counts)

        return counted

    def _interval(self, successes: int, n: int) -> IntervalEstimate:
        return IntervalEstimate.from_counts(
            successes, n, self.plan.confidence_level, self.plan.interval_method
        )

    def _worst_halfwidth(self, counts: "Iterable[int]", n: int) -> float:
        """Max interval halfwidth over all counts, in O(1) intervals.

        At fixed ``n`` the halfwidth is maximal for the success count
        closest to ``n/2`` (both Wilson and Clopper-Pearson widths are
        unimodal in the count), so only that one interval is evaluated.
        """
        worst = min(counts, key=lambda c: abs(2 * c - n))
        if self.plan.interval_method == "wilson":
            return wilson_halfwidth(worst, n, self.plan.confidence_level)
        low, high = proportion_interval(
            worst, n, self.plan.confidence_level, self.plan.interval_method
        )
        return (high - low) / 2.0

    # -- signal probabilities ---------------------------------------------------------

    def sample_signal_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> SignalSample:
        """Empirical 1-probability of every node, with intervals."""
        with self._profiled():
            return self._sample_signal_probabilities(input_probs)

    def _sample_signal_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> SignalSample:
        plan = self.plan
        inputs = self.circuit.inputs
        counts = {node: 0 for node in self.circuit.nodes}
        seeds = _block_seeds(plan.seed, "signal")
        n_total = 0
        history: List[Tuple[int, float]] = []
        max_halfwidth = 1.0
        block_counts = self._block_counter()
        block_index = 0
        for size in self._blocks():
            block_index += 1
            with span(
                "sampling.block",
                kind="signal",
                block=block_index,
                patterns=size,
            ) as block_span:
                patterns = PatternSet.random(
                    inputs, size, input_probs, next(seeds)
                )
                for node, count in block_counts(patterns):
                    counts[node] += count
                n_total += size
                max_halfwidth = self._worst_halfwidth(counts.values(), n_total)
                block_span.set("max_halfwidth", max_halfwidth)
            _BLOCKS_TOTAL.labels(kind="signal").inc()
            _PATTERNS_TOTAL.labels(kind="signal").inc(size)
            _BLOCK_SECONDS.labels(kind="signal").observe(block_span.duration)
            _HALFWIDTH.labels(kind="signal").set(max_halfwidth)
            history.append((n_total, max_halfwidth))
            if max_halfwidth <= plan.target_halfwidth:
                break
        return SignalSample(
            intervals={
                node: self._interval(count, n_total)
                for node, count in counts.items()
            },
            n_patterns=n_total,
            converged=max_halfwidth <= plan.target_halfwidth,
            max_halfwidth=max_halfwidth,
            history=history,
        )

    # -- detection probabilities ------------------------------------------------------

    def sample_detection_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        checkpoint: "Callable[[DetectionSample], object] | None" = None,
        state_hook: "Callable[[SamplingState], object] | None" = None,
        resume: "SamplingState | None" = None,
    ) -> DetectionSample:
        """Empirical detection probability of every graded fault.

        Each block is fault-simulated without dropping (counts stay
        exact); detection counts accumulate across blocks and the
        stopping rule checks the widest interval after every block.

        ``checkpoint``, when given, is called after every block with the
        *partial* :class:`DetectionSample` accumulated so far (the same
        object shape as the final return value; ``converged`` is only
        true on the block that satisfies the stopping rule).  Because
        the stopping rule is sequential, successive checkpoints carry
        non-increasing ``max_halfwidth`` — the property progressive
        result delivery (:mod:`repro.service`) relies on.  Exceptions
        raised by the checkpoint (cancellation, timeouts) propagate and
        abort the sampling loop; the return value of the callback is
        ignored.

        ``state_hook`` is the durability counterpart: it receives the
        raw :class:`SamplingState` after every block (before
        ``checkpoint``, so persisted state always covers the block a
        kill-at-checkpoint interrupts).  ``resume`` restarts the loop
        from such a state — seed-exact, so the final sample is
        bit-identical to an uninterrupted run (see
        :class:`SamplingState`).

        When the evaluation backend raises mid-run and :attr:`fallback`
        is enabled, the run **degrades**: the failed block is re-run on
        the ``"python"`` engine (identical counts by the backend parity
        contract), the event is recorded in :attr:`degraded`, and
        :attr:`backend_name` reports ``"<failed>->python"``.  With no
        fallback possible the failure surfaces as
        :class:`~repro.errors.BackendFailure`.
        """
        with self._profiled():
            return self._sample_detection(
                input_probs, checkpoint, state_hook, resume
            )

    def _sample_detection(
        self,
        input_probs: "float | Mapping[str, float] | None",
        checkpoint: "Callable[[DetectionSample], object] | None",
        state_hook: "Callable[[SamplingState], object] | None",
        resume: "SamplingState | None",
    ) -> DetectionSample:
        if not self.faults:
            raise SimulationError("no faults to grade")
        plan = self.plan
        inputs = self.circuit.inputs
        counts, first, n_total, history = self._initial_state(resume)
        max_halfwidth = history[-1][1] if history else 1.0
        if resume is not None and (
            max_halfwidth <= plan.target_halfwidth
            or n_total >= plan.max_patterns
        ):
            # The interrupted run had already stopped; nothing to redo.
            return self._detection_sample(
                counts, first, n_total, max_halfwidth, history
            )
        seeds = _block_seeds(plan.seed, "detection")
        for _ in range(len(history)):
            next(seeds)
        block_index = len(history)
        for size in self._blocks(n_total):
            block_index += 1
            with span(
                "sampling.block",
                kind="detection",
                block=block_index,
                patterns=size,
                backend=self.backend_name,
            ) as block_span:
                patterns = PatternSet.random(
                    inputs, size, input_probs, next(seeds)
                )
                result = self._run_block(patterns, size, block_index)
                for fault, record in result.records.items():
                    counts[fault] += record.detect_count
                    if first[fault] is None and record.first_detect is not None:
                        first[fault] = n_total + record.first_detect
                n_total += size
                max_halfwidth = self._worst_halfwidth(counts.values(), n_total)
                block_span.set("max_halfwidth", max_halfwidth)
            _BLOCKS_TOTAL.labels(kind="detection").inc()
            _PATTERNS_TOTAL.labels(kind="detection").inc(size)
            _BLOCK_SECONDS.labels(kind="detection").observe(block_span.duration)
            _HALFWIDTH.labels(kind="detection").set(max_halfwidth)
            history.append((n_total, max_halfwidth))
            if state_hook is not None:
                state_hook(SamplingState(
                    seed=plan.seed,
                    n_patterns=n_total,
                    counts={str(f): c for f, c in counts.items()},
                    first={str(f): v for f, v in first.items()},
                    history=list(history),
                ))
            if checkpoint is not None:
                checkpoint(
                    self._detection_sample(
                        counts, first, n_total, max_halfwidth, history
                    )
                )
            if max_halfwidth <= plan.target_halfwidth:
                break
        return self._detection_sample(
            counts, first, n_total, max_halfwidth, history
        )

    def _initial_state(self, resume: "SamplingState | None"):
        """Fresh or resumed accumulators, validated against this run."""
        if resume is None:
            return (
                {fault: 0 for fault in self.faults},
                {fault: None for fault in self.faults},
                0,
                [],
            )
        if resume.seed != self.plan.seed:
            raise ResilienceError(
                f"resume state was sampled under seed {resume.seed}, "
                f"this plan uses {self.plan.seed}"
            )
        keys = [str(fault) for fault in self.faults]
        if set(keys) != set(resume.counts) or set(keys) != set(resume.first):
            raise ResilienceError(
                "resume state does not cover this run's fault list "
                f"({len(resume.counts)} stored vs {len(keys)} graded)"
            )
        if resume.history and resume.history[-1][0] != resume.n_patterns:
            raise ResilienceError(
                "resume state is torn: history does not end at n_patterns"
            )
        counts = {f: resume.counts[str(f)] for f in self.faults}
        first = {f: resume.first[str(f)] for f in self.faults}
        return counts, first, resume.n_patterns, list(resume.history)

    def _run_block(self, patterns: PatternSet, size: int, index: int):
        """One fault-simulated block, with chaos seam and degradation."""
        try:
            chaos_point("sampling.block", block=index, backend=self.backend_name)
            return self.simulator.run(
                patterns, block_size=size, drop_detected=False
            )
        except Exception as error:
            self._degrade_or_raise(error, index)
            chaos_point("sampling.block", block=index, backend=self.backend_name)
            return self.simulator.run(
                patterns, block_size=size, drop_detected=False
            )

    def _degrade_or_raise(self, error: Exception, index: int) -> None:
        """Fall back to the python engine, or surface a BackendFailure.

        Degradation requires the kernel path, an enabled fallback, and
        a backend that is not already the pure-python engine; the
        failed block is then re-run on ``"python"`` — bit-identical
        counts by the parity contract, so a degraded run continues the
        *same* statistical stream.
        """
        can_fall_back = (
            self.use_kernel
            and self.fallback
            and self.backend is not None
            and self.backend.name != "python"
        )
        if not can_fall_back:
            raise BackendFailure(
                f"evaluation backend {self.backend_name!r} failed at "
                f"block {index}: {type(error).__name__}: {error}"
            ) from error
        from repro.backends import get_backend

        self.degraded.append({
            "block": index,
            "backend": self.backend.name,
            "error": f"{type(error).__name__}: {error}",
        })
        self.backend = get_backend("python")
        self._simulator = None      # rebuilt lazily on the fallback engine

    def _detection_sample(
        self,
        counts: Dict[Fault, int],
        first: Dict[Fault, Optional[int]],
        n_total: int,
        max_halfwidth: float,
        history: List[Tuple[int, float]],
    ) -> DetectionSample:
        """Materialize the accumulated counts as a :class:`DetectionSample`."""
        detected = sum(1 for f in self.faults if first[f] is not None)
        n_graded = len(self.faults)
        if n_graded < len(self.fault_universe):
            # Subsample: the interval bounds the universe-wide coverage
            # over the fault-sampling randomness.
            coverage = self._interval(detected, n_graded)
        else:
            # Full universe: the proportion is exact for this pattern
            # set — no fault-sampling randomness to bound.
            coverage = IntervalEstimate(
                estimate=detected / n_graded,
                low=detected / n_graded,
                high=detected / n_graded,
                n_samples=n_graded,
                successes=detected,
                confidence=self.plan.confidence_level,
                method="exact",
            )
        return DetectionSample(
            intervals={
                fault: self._interval(count, n_total)
                for fault, count in counts.items()
            },
            coverage=coverage,
            n_patterns=n_total,
            converged=max_halfwidth <= self.plan.target_halfwidth,
            max_halfwidth=max_halfwidth,
            n_universe=len(self.fault_universe),
            history=list(history),
            first_detect=dict(first),
        )
