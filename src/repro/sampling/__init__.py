"""Monte-Carlo testability grading with confidence intervals.

The statistical counterpart of the analytic pipeline: sample random
pattern blocks on the compiled kernel, grade signal probabilities,
detection probabilities and fault coverage, and report every quantity
with a Wilson or Clopper-Pearson confidence interval plus a sequential
stopping rule.  The :class:`~repro.api.engine.AnalysisEngine` front-end
(``sampled_analyze`` / ``cross_validate``) lives one layer up in
:mod:`repro.api`.
"""

from repro.sampling.intervals import (
    INTERVAL_METHODS,
    IntervalEstimate,
    clopper_pearson_interval,
    patterns_for_halfwidth,
    proportion_interval,
    wilson_halfwidth,
    wilson_interval,
    z_quantile,
)
from repro.sampling.montecarlo import (
    DetectionSample,
    MonteCarloEstimator,
    SamplingPlan,
    SignalSample,
    stratified_fault_sample,
)

__all__ = [
    "DetectionSample",
    "INTERVAL_METHODS",
    "IntervalEstimate",
    "MonteCarloEstimator",
    "SamplingPlan",
    "SignalSample",
    "clopper_pearson_interval",
    "patterns_for_halfwidth",
    "proportion_interval",
    "stratified_fault_sample",
    "wilson_halfwidth",
    "wilson_interval",
    "z_quantile",
]
