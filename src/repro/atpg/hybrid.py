"""The hybrid ATPG flow of paper §8.

"The use of PROTEST also reduces the computing time of ordinary ATPG …
Most ATPG first use fault simulation by random patterns, and second, when
this becomes inefficient, they use other procedures like the D-algorithm.
Computing time for fault simulation is drastically reduced by using
optimized pattern sets … Additionally the number of faults which are to
be created by the more expensive second procedure decreases."

:func:`hybrid_atpg` implements exactly that pipeline: a (possibly
weighted) random phase with fault dropping, then PODEM for whatever
survives.  The returned statistics let the bench compare conventional vs
PROTEST-optimized random phases.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Mapping, Optional

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, fault_universe
from repro.faults.simulator import FaultSimulator
from repro.logicsim.patterns import PatternSet
from repro.atpg.podem import PodemGenerator, TestResult

__all__ = ["HybridAtpgResult", "hybrid_atpg"]


@dataclasses.dataclass
class HybridAtpgResult:
    """Statistics of one hybrid ATPG run."""

    n_faults: int
    detected_by_random: int
    detected_by_podem: int
    proven_redundant: int
    aborted: int
    random_patterns: int
    deterministic_patterns: List[Dict[str, int]]
    random_seconds: float
    podem_seconds: float

    @property
    def coverage(self) -> float:
        """Fault efficiency: detected or proven redundant."""
        resolved = (
            self.detected_by_random
            + self.detected_by_podem
            + self.proven_redundant
        )
        return resolved / self.n_faults if self.n_faults else 0.0

    @property
    def podem_workload(self) -> int:
        """Faults handed to the expensive second procedure."""
        return (
            self.n_faults - self.detected_by_random
        )


def hybrid_atpg(
    circuit: Circuit,
    faults: "Iterable[Fault] | None" = None,
    n_random: int = 1000,
    input_probs: "float | Mapping[str, float] | None" = None,
    seed: int = 0,
    max_backtracks: int = 2000,
) -> HybridAtpgResult:
    """Random-pattern phase (with dropping) followed by PODEM."""
    fault_list: List[Fault] = (
        list(faults) if faults is not None else fault_universe(circuit)
    )
    start = time.perf_counter()
    detected_random = 0
    survivors: List[Fault] = fault_list
    if n_random > 0:
        patterns = PatternSet.random(
            circuit.inputs, n_random, input_probs, seed
        )
        simulator = FaultSimulator(circuit, fault_list)
        result = simulator.run(
            patterns, block_size=min(n_random, 1024), drop_detected=True
        )
        survivors = result.undetected()
        detected_random = len(fault_list) - len(survivors)
    random_seconds = time.perf_counter() - start

    start = time.perf_counter()
    generator = PodemGenerator(circuit, max_backtracks=max_backtracks)
    detected_podem = 0
    redundant = 0
    aborted = 0
    tests: List[Dict[str, int]] = []
    for fault in survivors:
        outcome: TestResult = generator.generate(fault)
        if outcome.detected:
            detected_podem += 1
            assert outcome.pattern is not None
            tests.append(outcome.pattern)
        elif outcome.proven_redundant:
            redundant += 1
        else:
            aborted += 1
    podem_seconds = time.perf_counter() - start

    return HybridAtpgResult(
        n_faults=len(fault_list),
        detected_by_random=detected_random,
        detected_by_podem=detected_podem,
        proven_redundant=redundant,
        aborted=aborted,
        random_patterns=n_random,
        deterministic_patterns=tests,
        random_seconds=random_seconds,
        podem_seconds=podem_seconds,
    )
