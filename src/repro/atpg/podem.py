"""PODEM — deterministic test pattern generation for stuck-at faults.

Paper §8: "Most ATPG first use fault simulation by random patterns, and
second, when this becomes inefficient, they use other procedures like the
D-algorithm."  This module supplies that second, expensive procedure so
the repository can reproduce the §8 claim end to end: PROTEST-optimized
random patterns shrink the fault list that deterministic ATPG must still
handle.

The implementation is classic PODEM (Goel 1981, the paper's [Goel81])
over five-valued logic: every node carries a (good, faulty) pair of
three-valued signals; ``D = (1, 0)`` and ``D' = (0, 1)`` arise from the
fault site.  Decisions are made only on primary inputs, found by
backtracing objectives through X-paths, with chronological backtracking
bounded by ``max_backtracks``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.circuit.types import GateType, controlling_value, eval_bool
from repro.errors import ReproError
from repro.faults.model import Fault

__all__ = ["TestResult", "PodemGenerator"]

X = None  # three-valued unknown


@dataclasses.dataclass
class TestResult:
    """Outcome of one PODEM run."""

    fault: Fault
    #: Complete input assignment detecting the fault, or ``None``.
    pattern: Optional[Dict[str, int]]
    #: True when the search space was exhausted: the fault is redundant.
    proven_redundant: bool
    backtracks: int
    aborted: bool = False

    @property
    def detected(self) -> bool:
        return self.pattern is not None


def _eval3(gtype: GateType, operands: List[Optional[int]], table: int) -> Optional[int]:
    """Three-valued gate evaluation (X = unknown)."""
    if gtype is GateType.CONST0:
        return 0
    if gtype is GateType.CONST1:
        return 1
    if gtype in (GateType.NOT, GateType.BUF):
        value = operands[0]
        if value is X:
            return X
        return value ^ 1 if gtype is GateType.NOT else value
    ctrl = controlling_value(gtype)
    if ctrl is not None:
        inverted = gtype in (GateType.NAND, GateType.NOR)
        if any(op == ctrl for op in operands):
            out = ctrl
        elif any(op is X for op in operands):
            return X
        else:
            out = ctrl ^ 1
        return out ^ 1 if inverted else out
    if gtype in (GateType.XOR, GateType.XNOR):
        acc = 0
        for op in operands:
            if op is X:
                return X
            acc ^= op
        return acc ^ 1 if gtype is GateType.XNOR else acc
    if gtype is GateType.LUT:
        unknown = [i for i, op in enumerate(operands) if op is X]
        if len(unknown) > 8:
            return X
        seen = set()
        probe = list(operands)
        for mask in range(1 << len(unknown)):
            for k, i in enumerate(unknown):
                probe[i] = (mask >> k) & 1
            seen.add(eval_bool(gtype, probe, table))
            if len(seen) == 2:
                return X
        return seen.pop()
    raise ReproError(f"unknown gate type {gtype!r}")


class PodemGenerator:
    """Deterministic test generation for one circuit."""

    def __init__(self, circuit: Circuit, max_backtracks: int = 2000) -> None:
        self.circuit = circuit
        self.topology = Topology(circuit)
        self.max_backtracks = max_backtracks

    # -- five-valued simulation -------------------------------------------------

    def _simulate(
        self, fault: Fault, assignment: Dict[str, int]
    ) -> Tuple[Dict[str, Optional[int]], Dict[str, Optional[int]]]:
        """(good, faulty) three-valued values under a partial assignment."""
        good: Dict[str, Optional[int]] = {}
        faulty: Dict[str, Optional[int]] = {}
        for name in self.circuit.inputs:
            value = assignment.get(name, X)
            good[name] = value
            faulty[name] = value
        if fault.pin is None and fault.node in good:
            faulty[fault.node] = fault.value
        for node in self.circuit.nodes:
            if self.circuit.is_input(node):
                continue
            gate = self.circuit.gates[node]
            good[node] = _eval3(
                gate.gtype, [good[s] for s in gate.inputs], gate.table
            )
            f_ops = [faulty[s] for s in gate.inputs]
            if fault.pin is not None and node == fault.node:
                f_ops[fault.pin] = fault.value
            value = _eval3(gate.gtype, f_ops, gate.table)
            if fault.pin is None and node == fault.node:
                value = fault.value
            faulty[node] = value
        return good, faulty

    # -- objectives and backtrace -------------------------------------------------

    def _fault_site_line(self, fault: Fault) -> str:
        if fault.pin is None:
            return fault.node
        return self.circuit.gates[fault.node].inputs[fault.pin]

    def _objective(
        self,
        fault: Fault,
        good: Dict[str, Optional[int]],
        faulty: Dict[str, Optional[int]],
    ) -> Optional[Tuple[str, int]]:
        """Next (line, value) goal, or None when no useful goal exists."""
        site = self._fault_site_line(fault)
        if good[site] is X:
            return (site, fault.value ^ 1)  # excite the fault
        if good[site] == fault.value:
            return None  # excitation contradicted: backtrack
        # Fault is excited; extend the D-frontier.
        for node in self.circuit.nodes:
            if self.circuit.is_input(node):
                continue
            if good[node] is not X or faulty[node] is not X:
                pass
            gate = self.circuit.gates[node]
            out_unknown = good[node] is X or faulty[node] is X
            if not out_unknown:
                continue
            carries_d = any(
                good[s] is not X
                and faulty[s] is not X
                and good[s] != faulty[s]
                for s in gate.inputs
            )
            if fault.pin is not None and node == fault.node:
                carries_d = True
            if not carries_d:
                continue
            ctrl = controlling_value(gate.gtype)
            for pin, src in enumerate(gate.inputs):
                if good[src] is X:
                    want = (ctrl ^ 1) if ctrl is not None else 0
                    return (src, want)
        return None

    def _backtrace(
        self, line: str, value: int, good: Dict[str, Optional[int]]
    ) -> Optional[Tuple[str, int]]:
        """Walk an objective back to an unassigned primary input."""
        current, want = line, value
        for _hop in range(self.circuit.n_nodes + 1):
            if self.circuit.is_input(current):
                if good[current] is not X:
                    return None
                return (current, want)
            gate = self.circuit.gates[current]
            gtype = gate.gtype
            if gtype is GateType.NOT:
                current, want = gate.inputs[0], want ^ 1
                continue
            if gtype is GateType.BUF:
                current = gate.inputs[0]
                continue
            if gtype in (GateType.CONST0, GateType.CONST1):
                return None
            unknown = [s for s in gate.inputs if good[s] is X]
            if not unknown:
                return None
            inverted = gtype in (GateType.NAND, GateType.NOR, GateType.XNOR)
            goal = want ^ 1 if inverted else want
            ctrl = controlling_value(gtype)
            if ctrl is not None and goal == ctrl:
                # One controlling input suffices: take the easiest.
                current, want = unknown[0], ctrl
            elif ctrl is not None:
                # All inputs must be non-controlling.
                current, want = unknown[0], ctrl ^ 1
            else:
                # XOR/XNOR/LUT: aim the first unknown input at `goal`
                # (heuristic; correctness comes from implication).
                current, want = unknown[0], goal
        return None

    # -- main loop -------------------------------------------------------------------

    def generate(self, fault: Fault) -> TestResult:
        """Find a test pattern for ``fault`` or prove it redundant."""
        assignment: Dict[str, int] = {}
        decisions: List[Tuple[str, int, bool]] = []  # (pi, value, flipped)
        backtracks = 0

        while True:
            good, faulty = self._simulate(fault, assignment)
            if self._detected(good, faulty):
                pattern = {
                    name: assignment.get(name, 0)
                    for name in self.circuit.inputs
                }
                return TestResult(fault, pattern, False, backtracks)
            failed = self._hopeless(fault, good, faulty)
            target: Optional[Tuple[str, int]] = None
            if not failed:
                objective = self._objective(fault, good, faulty)
                if objective is not None:
                    target = self._backtrace(
                        objective[0], objective[1], good
                    )
                failed = target is None
            if failed:
                # Chronological backtracking.
                while decisions and decisions[-1][2]:
                    name, _value, _flipped = decisions.pop()
                    del assignment[name]
                if not decisions:
                    return TestResult(fault, None, True, backtracks)
                name, value, _ = decisions.pop()
                backtracks += 1
                if backtracks > self.max_backtracks:
                    return TestResult(
                        fault, None, False, backtracks, aborted=True
                    )
                decisions.append((name, value ^ 1, True))
                assignment[name] = value ^ 1
                continue
            assert target is not None
            name, value = target
            decisions.append((name, value, False))
            assignment[name] = value

    def _detected(
        self,
        good: Dict[str, Optional[int]],
        faulty: Dict[str, Optional[int]],
    ) -> bool:
        return any(
            good[o] is not X
            and faulty[o] is not X
            and good[o] != faulty[o]
            for o in self.circuit.outputs
        )

    def _hopeless(
        self,
        fault: Fault,
        good: Dict[str, Optional[int]],
        faulty: Dict[str, Optional[int]],
    ) -> bool:
        """True when the current assignment can no longer detect the fault."""
        site = self._fault_site_line(fault)
        if good[site] is not X and good[site] == fault.value:
            return True
        # Every output already settled identical in both machines, and no
        # difference can still appear: difference requires some node pair
        # (good, faulty) unequal or undetermined on a path to an output.
        for out in self.circuit.outputs:
            g, f = good[out], faulty[out]
            if g is X or f is X or g != f:
                return False
        return True
