"""Deterministic ATPG (PODEM) and the §8 hybrid random-first flow."""

from repro.atpg.hybrid import HybridAtpgResult, hybrid_atpg
from repro.atpg.podem import PodemGenerator, TestResult

__all__ = [
    "HybridAtpgResult",
    "PodemGenerator",
    "TestResult",
    "hybrid_atpg",
]
