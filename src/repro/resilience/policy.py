"""Retry policy and the structured error taxonomy.

One classification, one payload shape, one backoff schedule — shared by
the job engine (:mod:`repro.service.jobs`), the sweep front-end
(:func:`repro.api.sweep.run_sweep`) and the chaos harness, so every
failure in the system is described the same way:

``{"type", "message", "transient", "attempts", "cause"}``

``transient`` comes from the error taxonomy (:mod:`repro.errors`):
every :class:`~repro.errors.ReproError` carries a ``transient`` flag,
and a handful of stdlib failure shapes (a broken executor, a dropped
connection) are known-transient.  Backoff is exponential with
deterministic jitter — the jitter stream is seeded per (job, attempt),
so a retry schedule is reproducible in tests while still decorrelating
a thundering herd in production.
"""

from __future__ import annotations

import dataclasses
import random
from concurrent.futures import BrokenExecutor
from typing import Any, Dict, Optional

from repro.errors import ReproError, ResilienceError

__all__ = ["RetryPolicy", "error_payload", "is_transient"]

#: Stdlib exception types that are transient regardless of taxonomy
#: flags: the failure is a property of the execution substrate (a died
#: pool process, a dropped socket), not of the submitted work.
_TRANSIENT_STDLIB = (BrokenExecutor, ConnectionError, InterruptedError)


def is_transient(error: BaseException) -> bool:
    """Whether retrying the operation that raised ``error`` can succeed."""
    if isinstance(error, _TRANSIENT_STDLIB):
        return True
    return bool(getattr(error, "transient", False))


def error_payload(
    error: BaseException, attempts: int = 1
) -> Dict[str, Any]:
    """The structured failure body every failed job/run carries.

    ``cause`` records the chained origin (``raise ... from ...`` or an
    implicit context), rendered as ``"TypeName: message"`` — enough for
    a client to distinguish "the retry budget ran out on a worker
    crash" from "the circuit never parsed" without a traceback.
    """
    cause = error.__cause__ if error.__cause__ is not None else error.__context__
    return {
        "type": type(error).__name__,
        "message": str(error),
        "transient": is_transient(error),
        "attempts": attempts,
        "cause": f"{type(cause).__name__}: {cause}" if cause is not None else None,
    }


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    Attributes
    ----------
    max_attempts:
        Total execution attempts per job, the first one included.  1
        disables retries.
    base_delay:
        Backoff before the first retry; doubles per attempt.
    max_delay:
        Cap on the un-jittered backoff.
    jitter:
        Symmetric jitter fraction: the actual delay is the exponential
        backoff scaled by a factor in ``[1 - jitter, 1 + jitter]``.
    seed:
        Root of the jitter stream.  Delays are a pure function of
        (seed, token, attempt), so schedules are reproducible.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 5.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ResilienceError(
                f"max_attempts must be positive, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ResilienceError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ResilienceError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def classify(self, error: BaseException) -> bool:
        """Whether this policy would retry ``error`` (budget permitting)."""
        return is_transient(error)

    def should_retry(self, error: BaseException, attempts: int) -> bool:
        """Retry decision after ``attempts`` completed executions."""
        return self.classify(error) and attempts < self.max_attempts

    def delay(self, attempt: int, token: str = "") -> float:
        """Seconds to wait before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ResilienceError(f"attempt must be >= 1, got {attempt}")
        backoff = min(self.max_delay, self.base_delay * (2.0 ** (attempt - 1)))
        if self.jitter == 0.0 or backoff == 0.0:
            return backoff
        rng = random.Random(f"protest-retry:{self.seed}:{token}:{attempt}")
        return backoff * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
