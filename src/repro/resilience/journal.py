"""The job journal: durable per-job checkpoint state.

A :class:`JobJournal` maps string keys — the job engine keys entries by
``(circuit_hash, config_hash, method, input-probability hash)``, the
same identity as the artifact cache, so a cancelled-then-resubmitted or
crashed-and-retried job finds its own progress — to JSON-safe payloads
(the :class:`~repro.sampling.montecarlo.SamplingState` of a sampled
run, persisted once per Monte-Carlo block).

With a ``path`` the journal is file-backed: every mutation rewrites the
file atomically (write-temp-then-rename), so a restarted ``protest
serve --journal <path>`` resumes interrupted sampling from the last
completed block instead of restarting it.  Without a path it is a
process-local store — still enough for worker-crash retries inside one
service lifetime.

A journal that cannot be read (corrupt JSON, wrong shape) is treated as
empty rather than fatal: losing a checkpoint costs recomputation, never
availability.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Any, Dict, List, Optional

from repro.errors import ResilienceError

__all__ = ["JobJournal"]


class JobJournal:
    """Thread-safe key → payload store with optional atomic file backing."""

    def __init__(self, path: "str | os.PathLike | None" = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._lock = threading.Lock()
        self._entries: Dict[str, Dict[str, Any]] = {}
        self._writes = 0
        if self.path is not None:
            self._entries = self._load(self.path)

    @staticmethod
    def _load(path: str) -> Dict[str, Dict[str, Any]]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return {}
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # A torn or corrupt journal costs the checkpoints, not the
            # service: start empty.
            return {}
        if not isinstance(data, dict):
            return {}
        return {
            key: value
            for key, value in data.items()
            if isinstance(key, str) and isinstance(value, dict)
        }

    def _sync_locked(self) -> None:
        if self.path is None:
            return
        directory = os.path.dirname(os.path.abspath(self.path)) or "."
        fd, tmp = tempfile.mkstemp(
            prefix=".protest-journal-", suffix=".tmp", dir=directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self._entries, handle, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError as error:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise ResilienceError(
                f"cannot persist journal to {self.path!r}: {error}"
            ) from error
        self._writes += 1

    # -- store API -----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            entry = self._entries.get(key)
            return dict(entry) if entry is not None else None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        if not isinstance(payload, dict):
            raise ResilienceError(
                f"journal payloads must be dicts, got {type(payload).__name__}"
            )
        with self._lock:
            self._entries[key] = dict(payload)
            self._sync_locked()

    def discard(self, key: str) -> bool:
        """Drop an entry (a finished job retires its checkpoint)."""
        with self._lock:
            existed = self._entries.pop(key, None) is not None
            if existed:
                self._sync_locked()
            return existed

    def sync(self) -> None:
        """Force a rewrite of the backing file (drain/shutdown path)."""
        with self._lock:
            self._sync_locked()

    def keys(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries
