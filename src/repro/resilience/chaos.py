"""Deterministic chaos injection at the service's failure seams.

The operational counterpart of the kernel's parity oracle: instead of
trusting that the retry/resume/degrade machinery works, every recovery
path is *exercised* by injecting the failure it exists for.  Injection
is deterministic — rules fire on exact site/context matches with a
bounded fire count, never on wall-clock or randomness — so a chaos test
is as reproducible as a seeded Monte-Carlo run.

Instrumented sites (``chaos_point(site, **ctx)`` is a no-op unless a
plan is installed):

=====================  ====================================================
site                   where / context
=====================  ====================================================
``service.worker``     job worker, before a job executes
                       (``job``, ``kind``, ``attempt``)
``service.checkpoint`` per sampled block in the job snapshot hook
                       (``job``, ``block``)
``sampling.block``     Monte-Carlo block loop, before backend evaluation
                       (``block``, ``backend``)
``sweep.cell``         inside one sweep cell (``circuit``, ``attempt``)
``cache.put``          artifact-cache report insertion (``kind``)
``cache.get``          artifact-cache report lookup (``kind``)
=====================  ====================================================

Actions:

* ``kill``  — raise :class:`ChaosKill` (a ``BaseException``: it rips
  through ``except Exception`` worker guards exactly like a real thread
  death, exercising worker replenishment and job retry);
* ``die``   — ``os._exit(13)`` (a real process death, for process-pool
  workers: the parent observes a broken pool);
* ``fail``  — raise :class:`~repro.errors.InjectedFault` (or a custom
  exception factory), exercising backend degradation and the error
  taxonomy;
* ``sleep`` — delay for ``seconds``, exercising timeout/hung-job paths.

Usage::

    plan = ChaosPlan()
    plan.kill("service.checkpoint", block=2)        # worker dies at block 2
    plan.fail("sampling.block", block=1, transient=False)
    with inject(plan):
        ...                                          # run the workload

Across processes, a plan can be carried in the ``PROTEST_CHAOS``
environment variable (``install_from_env`` is called by ``protest
serve``): semicolon-separated ``action:site[:key=value,...]`` rules,
e.g. ``kill:service.checkpoint:block=2;fail:sampling.block:block=1``.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Optional

from repro.errors import InjectedFault, ResilienceError

__all__ = [
    "CHAOS_ENV",
    "ChaosKill",
    "ChaosPlan",
    "ChaosRule",
    "active_plan",
    "chaos_point",
    "inject",
    "install",
    "install_from_env",
    "uninstall",
]

#: Environment variable carrying a chaos spec across process spawns.
CHAOS_ENV = "PROTEST_CHAOS"

#: Exit status of a ``die`` action (a recognizably chaotic corpse).
DIE_STATUS = 13


class ChaosKill(BaseException):
    """An injected worker death.

    Deliberately **not** an :class:`Exception`: the job worker's
    catch-all survives ordinary failures, so only a ``BaseException``
    reproduces what a genuine thread death looks like to the manager —
    the thread unwinds, the watchdog replenishes the slot, and the
    orphaned job is retried as :class:`~repro.errors.WorkerCrashed`.
    """


@dataclasses.dataclass
class ChaosRule:
    """One injection: ``action`` at ``site`` when ``match`` ⊆ context."""

    action: str                      # "kill" | "die" | "fail" | "sleep"
    site: str
    match: Dict[str, Any] = dataclasses.field(default_factory=dict)
    times: Optional[int] = 1         # max fires; None = unlimited
    seconds: float = 0.0             # sleep action
    message: str = ""
    transient: bool = False          # fail action: InjectedFault flag
    exc: Optional[Callable[[], BaseException]] = None
    fired: int = 0

    _ACTIONS = ("kill", "die", "fail", "sleep")

    def __post_init__(self) -> None:
        if self.action not in self._ACTIONS:
            raise ResilienceError(
                f"chaos action must be one of {self._ACTIONS}, "
                f"got {self.action!r}"
            )

    def matches(self, site: str, ctx: Dict[str, Any]) -> bool:
        if site != self.site:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return all(ctx.get(key) == value for key, value in self.match.items())


class ChaosPlan:
    """An ordered rule set plus a log of everything that fired."""

    def __init__(self) -> None:
        self.rules: List[ChaosRule] = []
        self.log: List[Dict[str, Any]] = []
        self._lock = threading.Lock()

    # -- rule builders -------------------------------------------------------

    def add(self, rule: ChaosRule) -> "ChaosPlan":
        self.rules.append(rule)
        return self

    def kill(self, site: str, times: "int | None" = 1, **match) -> "ChaosPlan":
        return self.add(ChaosRule("kill", site, match, times=times))

    def die(self, site: str, times: "int | None" = 1, **match) -> "ChaosPlan":
        return self.add(ChaosRule("die", site, match, times=times))

    def fail(
        self,
        site: str,
        times: "int | None" = 1,
        message: str = "",
        transient: bool = False,
        exc: "Callable[[], BaseException] | None" = None,
        **match,
    ) -> "ChaosPlan":
        return self.add(ChaosRule(
            "fail", site, match, times=times, message=message,
            transient=transient, exc=exc,
        ))

    def sleep(
        self, site: str, seconds: float, times: "int | None" = 1, **match
    ) -> "ChaosPlan":
        return self.add(ChaosRule("sleep", site, match, times=times,
                                  seconds=seconds))

    # -- firing --------------------------------------------------------------

    def fired(self, site: "str | None" = None) -> int:
        """How many injections fired (optionally: at one site)."""
        with self._lock:
            return sum(
                1 for entry in self.log
                if site is None or entry["site"] == site
            )

    def trigger(self, site: str, ctx: Dict[str, Any]) -> None:
        with self._lock:
            rule = next(
                (r for r in self.rules if r.matches(site, ctx)), None
            )
            if rule is None:
                return
            rule.fired += 1
            self.log.append({"site": site, "action": rule.action, **ctx})
        if rule.action == "sleep":
            time.sleep(rule.seconds)
            return
        if rule.action == "die":
            os._exit(DIE_STATUS)
        if rule.action == "kill":
            raise ChaosKill(f"chaos kill at {site} {ctx!r}")
        if rule.exc is not None:
            raise rule.exc()
        raise InjectedFault(
            rule.message or f"chaos fault at {site} {ctx!r}",
            transient=rule.transient,
        )


# ---------------------------------------------------------------------------
# Global installation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[ChaosPlan] = None


def active_plan() -> Optional[ChaosPlan]:
    return _ACTIVE


def install(plan: "ChaosPlan | None") -> Optional[ChaosPlan]:
    """Install (or, with ``None``, clear) the process-wide plan."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    return previous


def uninstall() -> None:
    install(None)


@contextmanager
def inject(plan: ChaosPlan):
    """Scoped installation: the previous plan is restored on exit."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def chaos_point(site: str, **ctx: Any) -> None:
    """Instrumentation hook; free when no plan is installed."""
    plan = _ACTIVE
    if plan is not None:
        plan.trigger(site, ctx)


# ---------------------------------------------------------------------------
# Environment-variable transport (for spawned servers / CI smokes)
# ---------------------------------------------------------------------------

def parse_spec(spec: str) -> ChaosPlan:
    """Build a plan from a ``PROTEST_CHAOS`` spec string.

    Grammar: rules split on ``;``, each ``action:site[:k=v,...]``.
    Values parse as int, then float, then string; the keys ``times``
    (int or ``always``), ``seconds`` (float), ``message`` and
    ``transient`` (``true``/``false``) configure the rule itself, any
    other key becomes a context match.
    """
    plan = ChaosPlan()
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":", 2)
        if len(parts) < 2:
            raise ResilienceError(
                f"chaos rule {chunk!r} must be action:site[:k=v,...]"
            )
        action, site = parts[0].strip(), parts[1].strip()
        match: Dict[str, Any] = {}
        times: "int | None" = 1
        seconds = 0.0
        message = ""
        transient = False
        if len(parts) == 3 and parts[2].strip():
            for pair in parts[2].split(","):
                if "=" not in pair:
                    raise ResilienceError(
                        f"chaos option {pair!r} must be key=value"
                    )
                key, raw = (s.strip() for s in pair.split("=", 1))
                value: Any = raw
                try:
                    value = int(raw)
                except ValueError:
                    try:
                        value = float(raw)
                    except ValueError:
                        pass
                if key == "times":
                    times = None if raw == "always" else int(raw)
                elif key == "seconds":
                    seconds = float(raw)
                elif key == "message":
                    message = raw
                elif key == "transient":
                    transient = raw.lower() in ("1", "true", "yes")
                else:
                    match[key] = value
        plan.add(ChaosRule(
            action, site, match, times=times, seconds=seconds,
            message=message, transient=transient,
        ))
    return plan


def install_from_env(environ: "Dict[str, str] | None" = None) -> Optional[ChaosPlan]:
    """Install the plan described by ``PROTEST_CHAOS``, if any.

    Called by ``protest serve`` at startup so spawned smoke servers can
    be put under chaos from the outside (see
    ``benchmarks/bench_service.py --chaos`` and the CI chaos-smoke job).
    """
    spec = (environ if environ is not None else os.environ).get(CHAOS_ENV)
    if not spec:
        return None
    plan = parse_spec(spec)
    install(plan)
    return plan
