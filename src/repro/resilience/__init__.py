"""Fault tolerance for the analysis service and its substrates.

PR 6 made the reproduction a long-running service; this package makes
it survive its own machinery failing, in the spirit of the
secondary-toolchain validation literature: the tool must systematically
distrust itself.  Four cooperating pieces:

* :mod:`repro.resilience.policy` — the transient/permanent error
  taxonomy (one structured ``{type, message, transient, attempts,
  cause}`` payload everywhere) and a :class:`RetryPolicy` with
  exponential backoff + deterministic jitter;
* :mod:`repro.resilience.journal` — the :class:`JobJournal`, durable
  per-job checkpoint state keyed by the same content identity as the
  artifact cache, enabling seed-exact checkpoint/resume of sampled
  jobs across worker crashes and service restarts;
* graceful degradation — a backend raising mid-run falls back to the
  ``"python"`` engine at the next block boundary (implemented in
  :class:`~repro.sampling.montecarlo.MonteCarloEstimator`), recorded
  truthfully in provenance as ``"<failed>-><fallback>"``;
* :mod:`repro.resilience.chaos` — deterministic failure injection at
  the seams (worker kill, backend fault at block *N*, slow jobs, cache
  races) so every recovery path above is exercised by tests and the CI
  chaos-smoke, exactly like the kernel's parity oracle exercises new
  backends.
"""

from repro.resilience.chaos import (
    ChaosKill,
    ChaosPlan,
    ChaosRule,
    chaos_point,
    inject,
    install_from_env,
    parse_spec,
)
from repro.resilience.journal import JobJournal
from repro.resilience.policy import RetryPolicy, error_payload, is_transient

__all__ = [
    "ChaosKill",
    "ChaosPlan",
    "ChaosRule",
    "JobJournal",
    "RetryPolicy",
    "chaos_point",
    "error_payload",
    "inject",
    "install_from_env",
    "is_transient",
    "parse_spec",
]
