"""Analysis-as-a-service: job engine, artifact cache, HTTP front-end.

The production-shaped front half of the reproduction: long-running
analyses submitted as jobs, executed on a bounded worker pool over the
existing :class:`~repro.api.engine.AnalysisEngine` / ``run_sweep``
machinery, with a circuit-hash-keyed artifact cache shared across jobs
and progressive Monte-Carlo results streamed while a sampled job runs.

>>> from repro.service import ArtifactCache, JobManager
>>> manager = JobManager(workers=2)
>>> job = manager.submit(circuit="c432", config="sampled")
>>> manager.wait(job.id).state
'done'
>>> manager.shutdown()

The HTTP layer (``protest serve``) is stdlib-only; see
:mod:`repro.service.http`.
"""

from repro.service.cache import ArtifactCache
from repro.service.jobs import JOB_STATES, Job, JobManager
from repro.service.http import ServiceHandler, make_server, serve

__all__ = [
    "ArtifactCache",
    "Job",
    "JobManager",
    "JOB_STATES",
    "ServiceHandler",
    "make_server",
    "serve",
]
