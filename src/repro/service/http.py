"""Stdlib HTTP/JSON front-end of the analysis service.

No third-party dependencies: a :class:`ThreadingHTTPServer` with a
small JSON router on top of :class:`~repro.service.jobs.JobManager`.

Routes
------
``GET  /healthz``          liveness + degradation: ``{"status": "ok" |
                           "degraded" | "draining", ...}`` (200 for ok
                           and degraded — the service still serves
                           correct results — 503 while draining)
``GET  /metrics``          Prometheus text exposition (version 0.0.4):
                           every live telemetry registry in the process
                           — queue depth, job states, cache hit/miss,
                           engine stage counters, per-backend
                           throughput, HTTP request series
``GET  /stats``            queue depth, job states, cache counters,
                           per-backend throughput, resilience counters,
                           uptime/version and a telemetry snapshot
``GET  /jobs``             all job summaries (no snapshot payloads)
``POST /jobs``             submit — body ``{"circuit": name}``,
                           ``{"bench": text}``, ``{"verilog": text}``
                           or ``{"sweep": {...}}``
                           plus optional ``config`` (preset name or
                           knob object), ``input_probs``, ``priority``,
                           ``timeout``, ``profile``; responds ``201`` with the
                           queued job's status
``GET  /jobs/<id>``        status + snapshot history + latest
                           progressive snapshot
``GET  /jobs/<id>/result`` the final report — ``200`` when done,
                           ``202`` while queued/running (body is the
                           status, so pollers see the snapshots),
                           ``500`` when failed, ``410`` when cancelled
``DELETE /jobs/<id>``      request cancellation

Every error body is structured: ``{"error": {"type", "message"}}``.
A submit that finds the (bounded) queue full is rejected with ``429``
and a ``Retry-After`` header instead of accepting unbounded work.

``serve()`` additionally installs SIGTERM/SIGINT handlers: on either
signal the server stops accepting connections, the job manager drains
(running jobs get a grace period, stragglers abort at their next
checkpoint with their progress journaled), the journal is synced, and
the process exits 0.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Optional, Tuple

from repro import __version__
from repro.errors import QueueFull, ServiceError
from repro.resilience.chaos import install_from_env
from repro.resilience.journal import JobJournal
from repro.resilience.policy import RetryPolicy
from repro.service.jobs import JobManager
from repro.telemetry.logs import configure as configure_logging
from repro.telemetry.logs import get_logger
from repro.telemetry.metrics import MetricsRegistry, render_prometheus
from repro.telemetry.tracing import span

__all__ = ["ServiceHandler", "make_server", "serve"]

#: Largest accepted request body (a multi-megabyte .bench is legitimate;
#: an unbounded one is a memory hole).
MAX_BODY_BYTES = 16 << 20

_ACCESS_LOG = get_logger("service.http")


class ServiceHandler(BaseHTTPRequestHandler):
    """JSON router; the server instance carries the ``manager``."""

    server_version = "protest-service/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        # Access logs go through the structured logger (quiet unless
        # telemetry logging is configured — `protest serve --log-level`),
        # instead of BaseHTTPRequestHandler's raw stderr writes.
        _ACCESS_LOG.info(
            format % args if args else format,
            extra={"client": self.client_address[0], "log_kind": "access"},
        )

    def send_response(self, code: int, message: "str | None" = None) -> None:
        self._last_status = code
        super().send_response(code, message)

    def _route_label(self) -> str:
        """Low-cardinality route label (job ids collapse to ``{id}``)."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if not parts:
            return "/"
        if parts[0] == "jobs" and len(parts) > 1:
            parts = ["jobs", "{id}"] + parts[2:]
        return "/" + "/".join(parts)

    def _traced(self, method: str, handler: "Callable[[], None]") -> None:
        """Run one verb handler inside a request span + request metrics."""
        route = self._route_label()
        self._last_status = 0
        with span(
            "http.request",
            method=method, route=route, path=self.path.split("?")[0],
        ) as request_span:
            handler()
            request_span.set("status", self._last_status)
        requests = getattr(self.server, "http_requests", None)
        if requests is not None:
            requests.labels(
                method=method, route=route, status=str(self._last_status)
            ).inc()
            self.server.http_seconds.labels(
                method=method, route=route
            ).observe(request_span.duration)

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, kind: str, message: str) -> None:
        self._send_json(status, {"error": {"type": kind, "message": message}})

    def _read_json(self) -> "Dict[str, Any] | None":
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._send_error_json(400, "BadRequest", "a JSON body is required")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(
                413, "BadRequest",
                f"body larger than {MAX_BODY_BYTES} bytes",
            )
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_json(400, "BadRequest", f"invalid JSON: {error}")
            return None
        if not isinstance(payload, dict):
            self._send_error_json(400, "BadRequest", "body must be an object")
            return None
        return payload

    def _job_id(self) -> "Tuple[str, Optional[str]] | None":
        """Split ``/jobs/<id>[/result]``; ``None`` after a 404."""
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if len(parts) == 2 and parts[0] == "jobs":
            return parts[1], None
        if len(parts) == 3 and parts[0] == "jobs":
            return parts[1], parts[2]
        self._send_error_json(404, "NotFound", f"no route {self.path!r}")
        return None

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._traced("GET", self._handle_get)

    def do_POST(self) -> None:  # noqa: N802
        self._traced("POST", self._handle_post)

    def do_DELETE(self) -> None:  # noqa: N802
        self._traced("DELETE", self._handle_delete)

    def _send_prometheus(self) -> None:
        text = render_prometheus(
            extra={"protest_uptime_seconds": self.manager.uptime_seconds()}
        )
        body = text.encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _handle_get(self) -> None:
        path = self.path.split("?")[0]
        if path in ("/metrics", "/metrics/"):
            self._send_prometheus()
            return
        if path in ("/healthz", "/healthz/"):
            health = self.manager.health()
            # Degraded still serves correct results (the fallback engine
            # is bit-identical); only a draining service turns away.
            status = 503 if health["status"] == "draining" else 200
            self._send_json(status, health)
            return
        if path in ("/stats", "/stats/"):
            self._send_json(200, self.manager.stats())
            return
        if path in ("/jobs", "/jobs/"):
            self._send_json(200, {"jobs": self.manager.jobs()})
            return
        route = self._job_id()
        if route is None:
            return
        job_id, tail = route
        try:
            status = self.manager.status(job_id)
        except ServiceError as error:
            self._send_error_json(404, "NotFound", str(error))
            return
        if tail is None:
            self._send_json(200, status)
            return
        if tail != "result":
            self._send_error_json(404, "NotFound", f"no route {self.path!r}")
            return
        state = status["state"]
        if state == "done":
            self._send_json(200, {
                "id": job_id, "state": state,
                "from_cache": status["from_cache"],
                "result": self.manager.result(job_id),
            })
        elif state == "failed":
            self._send_json(500, {
                "id": job_id, "state": state, "error": status["error"],
            })
        elif state == "cancelled":
            self._send_json(410, {
                "id": job_id, "state": state, "error": status["error"],
            })
        else:   # queued / running: expose progress so pollers can watch
            self._send_json(202, status)

    def _handle_post(self) -> None:
        if self.path.split("?")[0] not in ("/jobs", "/jobs/"):
            self._send_error_json(404, "NotFound", f"no route {self.path!r}")
            return
        payload = self._read_json()
        if payload is None:
            return
        known = {"circuit", "bench", "verilog", "sweep", "config",
                 "input_probs", "priority", "timeout", "profile"}
        unknown = set(payload) - known
        if unknown:
            self._send_error_json(
                400, "BadRequest", f"unknown keys: {sorted(unknown)}"
            )
            return
        try:
            job = self.manager.submit(
                circuit=payload.get("circuit"),
                bench=payload.get("bench"),
                verilog=payload.get("verilog"),
                sweep=payload.get("sweep"),
                config=payload.get("config"),
                input_probs=payload.get("input_probs"),
                priority=payload.get("priority", 0),
                timeout=payload.get("timeout"),
                profile=payload.get("profile", False),
            )
        except QueueFull as error:
            body = json.dumps(
                {"error": {"type": "QueueFull", "message": str(error)},
                 "retry_after": error.retry_after},
                sort_keys=True,
            ).encode("utf-8")
            self.send_response(429)
            self.send_header("Content-Type", "application/json")
            self.send_header("Retry-After", str(max(1, round(error.retry_after))))
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        except ServiceError as error:
            self._send_error_json(400, "BadRequest", str(error))
            return
        self._send_json(201, self.manager.status(job.id))

    def _handle_delete(self) -> None:
        route = self._job_id()
        if route is None:
            return
        job_id, tail = route
        if tail is not None:
            self._send_error_json(404, "NotFound", f"no route {self.path!r}")
            return
        try:
            self._send_json(200, self.manager.cancel(job_id))
        except ServiceError as error:
            self._send_error_json(404, "NotFound", str(error))


def make_server(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run server bound to ``host:port`` (0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.daemon_threads = True
    server.manager = manager          # type: ignore[attr-defined]
    server.verbose = verbose          # type: ignore[attr-defined]
    # Request series live on the manager's registry so /metrics shows
    # HTTP, queue and cache counters side by side.
    server.http_requests = manager.metrics.counter(       # type: ignore[attr-defined]
        "protest_http_requests_total",
        "HTTP requests by method, normalized route and status code",
        ("method", "route", "status"),
    )
    server.http_seconds = manager.metrics.histogram(      # type: ignore[attr-defined]
        "protest_http_request_seconds",
        "HTTP request handling latency",
        ("method", "route"),
    )
    manager.metrics.gauge(
        "protest_build_info",
        "Constant 1; the version label identifies the running build",
        ("version",),
    ).labels(version=__version__).set(1)
    return server


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    max_circuits: int = 64,
    max_reports: int = 256,
    default_timeout: "float | None" = None,
    verbose: bool = False,
    journal: "str | None" = None,
    max_queue: "int | None" = None,
    retries: int = 2,
    grace: float = 5.0,
    log_level: str = "info",
    trace_dir: "str | None" = None,
) -> int:
    """Run the service until interrupted (the ``protest serve`` body).

    Prints one ``serving on http://host:port`` line (flushed, so smoke
    harnesses spawning the process can parse the ephemeral port) and
    blocks in ``serve_forever``.

    ``journal`` names a checkpoint file: sampled jobs persist their
    per-block state there, and a restarted ``protest serve --journal
    <path>`` resumes interrupted runs seed-exactly.  ``max_queue``
    bounds admission (429 beyond it), ``retries`` grants transient
    failures extra attempts, and ``grace`` is the drain budget (in
    seconds) of the SIGTERM/SIGINT path.  A ``PROTEST_CHAOS``
    environment spec, when present, installs a fault-injection plan
    (see :mod:`repro.resilience.chaos`) — how the CI chaos-smoke puts a
    real spawned server under failure.

    ``log_level`` configures the structured JSON logger (``"off"``
    keeps the process silent); ``trace_dir`` names a directory where
    each finished job drops a Chrome/Perfetto ``trace-<job>.json``.
    """
    from repro.service.cache import ArtifactCache

    install_from_env()
    configure_logging(log_level)
    registry = MetricsRegistry()
    manager = JobManager(
        workers=workers,
        cache=ArtifactCache(max_circuits=max_circuits,
                            max_reports=max_reports,
                            registry=registry),
        registry=registry,
        default_timeout=default_timeout,
        retry=RetryPolicy(max_attempts=1 + max(0, retries)),
        max_queue=max_queue,
        journal=JobJournal(journal) if journal else None,
        trace_dir=trace_dir,
    )
    server = make_server(manager, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)

    stop_requested = threading.Event()

    def request_stop(signum=None, frame=None):
        if stop_requested.is_set():
            return
        stop_requested.set()
        # shutdown() blocks until serve_forever returns, so it must run
        # off the signal-handling (main) thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    installed = []
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                installed.append((signum, signal.signal(signum, request_stop)))
            except (ValueError, OSError):
                pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for signum, previous in installed:
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        server.shutdown()
        server.server_close()
        summary = manager.drain(grace=grace)
        if verbose:
            print(f"drained: {summary}", flush=True)
    return 0
