"""Shared artifact cache of the analysis service.

Two cooperating LRU maps, both keyed by content hashes so jobs share
work regardless of display names or upload order:

* **Circuit interning** — ``intern_circuit`` maps
  :meth:`~repro.circuit.netlist.Circuit.structural_hash` to one
  canonical :class:`Circuit` *object*.  The compiled-kernel cache
  (:func:`repro.kernel.compile_circuit`) is keyed by object identity,
  so every job that interns the same netlist — uploaded twice, under
  two names, by two clients — reuses the same compiled kernels instead
  of recompiling.

* **Report caching** — finished result payloads keyed by
  ``(circuit_hash, config_hash, method, input-probability tuple)``.
  Everything behavioural is in the key (:attr:`ProtestConfig.config_hash`
  covers seeds and sampling knobs), so a cached payload is exactly what
  a fresh run would have produced and can be served without touching
  the estimators.

Both maps are size-bounded (least recently used entry evicted) and
thread-safe; ``cache_info()`` surfaces hit/miss/eviction counters next
to :meth:`AnalysisEngine.cache_info`'s per-stage counters.

Every mutation happens entirely under one lock, so a lookup can never
observe a half-applied eviction.  The ``cache.get`` / ``cache.put``
chaos seams (:mod:`repro.resilience.chaos`) sit deliberately *outside*
the lock: an injected ``sleep`` there widens the get/put/evict races
the concurrency stress test hammers, without ever being able to
deadlock the cache itself.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.errors import ServiceError
from repro.resilience.chaos import chaos_point
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ArtifactCache"]

#: Key of one cached report: (circuit_hash, config_hash, method, probs key).
ReportKey = Tuple[str, str, str, Tuple[float, ...]]


class ArtifactCache:
    """Bounded, thread-safe artifact store shared by all jobs."""

    def __init__(
        self,
        max_circuits: int = 64,
        max_reports: int = 256,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if max_circuits < 1:
            raise ServiceError(
                f"max_circuits must be positive, got {max_circuits}"
            )
        if max_reports < 1:
            raise ServiceError(
                f"max_reports must be positive, got {max_reports}"
            )
        self.max_circuits = max_circuits
        self.max_reports = max_reports
        self._lock = threading.Lock()
        self._circuits: "OrderedDict[str, Circuit]" = OrderedDict()
        self._reports: "OrderedDict[ReportKey, Dict[str, Any]]" = OrderedDict()
        # Hit/miss/eviction counters live in a telemetry registry —
        # the JobManager passes its own so cache and queue series render
        # together on /metrics; standalone caches get a private one.
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._requests = self.metrics.counter(
            "protest_cache_requests_total",
            "Artifact cache lookups by cache (circuit|report) and outcome",
            ("cache", "outcome"),
        )
        self._evictions = self.metrics.counter(
            "protest_cache_evictions_total",
            "Artifact cache LRU/explicit evictions",
            ("cache",),
        )

    # -- circuit interning ----------------------------------------------------

    def intern_circuit(self, circuit: Circuit) -> Tuple[Circuit, bool]:
        """The canonical instance for this structure, plus the hit flag.

        On a hit the previously stored :class:`Circuit` object is
        returned (its compiled kernels come along for free via the
        identity-keyed kernel cache); on a miss ``circuit`` itself
        becomes the canonical instance.
        """
        digest = circuit.structural_hash()
        with self._lock:
            cached = self._circuits.get(digest)
            if cached is not None:
                self._circuits.move_to_end(digest)
                self._requests.labels(cache="circuit", outcome="hit").inc()
                return cached, True
            self._circuits[digest] = circuit
            self._requests.labels(cache="circuit", outcome="miss").inc()
            while len(self._circuits) > self.max_circuits:
                self._circuits.popitem(last=False)
                self._evictions.labels(cache="circuit").inc()
            return circuit, False

    # -- report caching -------------------------------------------------------

    def get_report(self, key: ReportKey) -> Optional[Dict[str, Any]]:
        chaos_point("cache.get", kind="report")
        with self._lock:
            payload = self._reports.get(key)
            if payload is None:
                self._requests.labels(cache="report", outcome="miss").inc()
                return None
            self._reports.move_to_end(key)
            self._requests.labels(cache="report", outcome="hit").inc()
            return payload

    def put_report(self, key: ReportKey, payload: Dict[str, Any]) -> None:
        chaos_point("cache.put", kind="report")
        with self._lock:
            self._reports[key] = payload
            self._reports.move_to_end(key)
            while len(self._reports) > self.max_reports:
                self._reports.popitem(last=False)
                self._evictions.labels(cache="report").inc()

    def evict_report(self, key: ReportKey) -> bool:
        """Drop one cached report (returns whether it existed).

        The explicit-eviction arm of the concurrency stress test: a get
        racing an evict must see either the full payload or a clean
        miss, never a torn entry.
        """
        with self._lock:
            existed = self._reports.pop(key, None) is not None
            if existed:
                self._evictions.labels(cache="report").inc()
            return existed

    def report_keys(self) -> List[ReportKey]:
        """Current report keys, LRU-first (a snapshot, for tests)."""
        with self._lock:
            return list(self._reports)

    # -- introspection --------------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current sizes and bounds.

        Read back from the telemetry registry — the same series
        ``GET /metrics`` exposes as ``protest_cache_requests_total`` /
        ``protest_cache_evictions_total``.
        """
        info: Dict[str, int] = {}
        for kind in ("circuit", "report"):
            for outcome, key in (("hit", "hits"), ("miss", "misses")):
                info[f"{kind}_{key}"] = int(
                    self._requests.value(cache=kind, outcome=outcome)
                )
            info[f"{kind}_evictions"] = int(
                self._evictions.value(cache=kind)
            )
        with self._lock:
            info["circuits"] = len(self._circuits)
            info["reports"] = len(self._reports)
        info["max_circuits"] = self.max_circuits
        info["max_reports"] = self.max_reports
        return info

    def clear(self) -> None:
        with self._lock:
            self._circuits.clear()
            self._reports.clear()
