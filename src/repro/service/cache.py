"""Shared artifact cache of the analysis service.

Two cooperating LRU maps, both keyed by content hashes so jobs share
work regardless of display names or upload order:

* **Circuit interning** — ``intern_circuit`` maps
  :meth:`~repro.circuit.netlist.Circuit.structural_hash` to one
  canonical :class:`Circuit` *object*.  The compiled-kernel cache
  (:func:`repro.kernel.compile_circuit`) is keyed by object identity,
  so every job that interns the same netlist — uploaded twice, under
  two names, by two clients — reuses the same compiled kernels instead
  of recompiling.

* **Report caching** — finished result payloads keyed by
  ``(circuit_hash, config_hash, method, input-probability tuple)``.
  Everything behavioural is in the key (:attr:`ProtestConfig.config_hash`
  covers seeds and sampling knobs), so a cached payload is exactly what
  a fresh run would have produced and can be served without touching
  the estimators.

Both maps are size-bounded (least recently used entry evicted) and
thread-safe; ``cache_info()`` surfaces hit/miss/eviction counters next
to :meth:`AnalysisEngine.cache_info`'s per-stage counters, plus byte
estimates per cache (JSON wire size for reports, a structural model for
circuits) that the ``protest_cache_bytes`` gauge mirrors on /metrics.

Every mutation happens entirely under one lock, so a lookup can never
observe a half-applied eviction.  The ``cache.get`` / ``cache.put``
chaos seams (:mod:`repro.resilience.chaos`) sit deliberately *outside*
the lock: an injected ``sleep`` there widens the get/put/evict races
the concurrency stress test hammers, without ever being able to
deadlock the cache itself.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.errors import ServiceError
from repro.resilience.chaos import chaos_point
from repro.telemetry.metrics import MetricsRegistry

__all__ = ["ArtifactCache"]

#: Key of one cached report: (circuit_hash, config_hash, method, probs key).
ReportKey = Tuple[str, str, str, Tuple[float, ...]]


def _report_bytes(payload: Dict[str, Any]) -> int:
    """Byte estimate of one cached report: its JSON wire size.

    That is exactly what the HTTP layer would serialize to serve it, so
    the estimate tracks what the cache actually holds hostage.  Payloads
    that fail to serialize (never produced by the engine) count as 0
    rather than raising inside the cache.
    """
    try:
        return len(json.dumps(payload, sort_keys=True))
    except (TypeError, ValueError):  # pragma: no cover - defensive
        return 0


def _circuit_bytes(circuit: Circuit) -> int:
    """Structural byte estimate of an interned circuit.

    Not ``sys.getsizeof`` recursion (which double-counts shared interned
    strings) but a model of the dominant containers: per node a name,
    and per gate its type tag plus input references.
    """
    total = 0
    for name in circuit.nodes:
        total += 64 + len(name)
    for gate in circuit.gates.values():
        total += 96 + sum(24 + len(src) for src in gate.inputs)
    return total


class ArtifactCache:
    """Bounded, thread-safe artifact store shared by all jobs."""

    def __init__(
        self,
        max_circuits: int = 64,
        max_reports: int = 256,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if max_circuits < 1:
            raise ServiceError(
                f"max_circuits must be positive, got {max_circuits}"
            )
        if max_reports < 1:
            raise ServiceError(
                f"max_reports must be positive, got {max_reports}"
            )
        self.max_circuits = max_circuits
        self.max_reports = max_reports
        self._lock = threading.Lock()
        self._circuits: "OrderedDict[str, Circuit]" = OrderedDict()
        self._reports: "OrderedDict[ReportKey, Dict[str, Any]]" = OrderedDict()
        # Hit/miss/eviction counters live in a telemetry registry —
        # the JobManager passes its own so cache and queue series render
        # together on /metrics; standalone caches get a private one.
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._requests = self.metrics.counter(
            "protest_cache_requests_total",
            "Artifact cache lookups by cache (circuit|report) and outcome",
            ("cache", "outcome"),
        )
        self._evictions = self.metrics.counter(
            "protest_cache_evictions_total",
            "Artifact cache LRU/explicit evictions",
            ("cache",),
        )
        # Byte estimates per entry (same keys as the LRU maps) plus a
        # gauge per cache, adjusted on insert and eviction so /metrics
        # and stats() report what the cache currently pins in memory.
        self._circuit_sizes: Dict[str, int] = {}
        self._report_sizes: Dict[ReportKey, int] = {}
        self._bytes_gauge = self.metrics.gauge(
            "protest_cache_bytes",
            "Estimated bytes held by the artifact cache, by cache",
            ("cache",),
        )

    # -- circuit interning ----------------------------------------------------

    def intern_circuit(self, circuit: Circuit) -> Tuple[Circuit, bool]:
        """The canonical instance for this structure, plus the hit flag.

        On a hit the previously stored :class:`Circuit` object is
        returned (its compiled kernels come along for free via the
        identity-keyed kernel cache); on a miss ``circuit`` itself
        becomes the canonical instance.
        """
        digest = circuit.structural_hash()
        with self._lock:
            cached = self._circuits.get(digest)
            if cached is not None:
                self._circuits.move_to_end(digest)
                self._requests.labels(cache="circuit", outcome="hit").inc()
                return cached, True
            self._circuits[digest] = circuit
            self._circuit_sizes[digest] = _circuit_bytes(circuit)
            self._requests.labels(cache="circuit", outcome="miss").inc()
            while len(self._circuits) > self.max_circuits:
                evicted, _ = self._circuits.popitem(last=False)
                self._circuit_sizes.pop(evicted, None)
                self._evictions.labels(cache="circuit").inc()
            self._bytes_gauge.labels(cache="circuit").set(
                sum(self._circuit_sizes.values())
            )
            return circuit, False

    # -- report caching -------------------------------------------------------

    def get_report(self, key: ReportKey) -> Optional[Dict[str, Any]]:
        chaos_point("cache.get", kind="report")
        with self._lock:
            payload = self._reports.get(key)
            if payload is None:
                self._requests.labels(cache="report", outcome="miss").inc()
                return None
            self._reports.move_to_end(key)
            self._requests.labels(cache="report", outcome="hit").inc()
            return payload

    def put_report(self, key: ReportKey, payload: Dict[str, Any]) -> None:
        chaos_point("cache.put", kind="report")
        size = _report_bytes(payload)
        with self._lock:
            self._reports[key] = payload
            self._report_sizes[key] = size
            self._reports.move_to_end(key)
            while len(self._reports) > self.max_reports:
                evicted, _ = self._reports.popitem(last=False)
                self._report_sizes.pop(evicted, None)
                self._evictions.labels(cache="report").inc()
            self._bytes_gauge.labels(cache="report").set(
                sum(self._report_sizes.values())
            )

    def evict_report(self, key: ReportKey) -> bool:
        """Drop one cached report (returns whether it existed).

        The explicit-eviction arm of the concurrency stress test: a get
        racing an evict must see either the full payload or a clean
        miss, never a torn entry.
        """
        with self._lock:
            existed = self._reports.pop(key, None) is not None
            if existed:
                self._report_sizes.pop(key, None)
                self._evictions.labels(cache="report").inc()
                self._bytes_gauge.labels(cache="report").set(
                    sum(self._report_sizes.values())
                )
            return existed

    def report_keys(self) -> List[ReportKey]:
        """Current report keys, LRU-first (a snapshot, for tests)."""
        with self._lock:
            return list(self._reports)

    # -- introspection --------------------------------------------------------

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current sizes and bounds.

        Read back from the telemetry registry — the same series
        ``GET /metrics`` exposes as ``protest_cache_requests_total`` /
        ``protest_cache_evictions_total``.
        """
        info: Dict[str, int] = {}
        for kind in ("circuit", "report"):
            for outcome, key in (("hit", "hits"), ("miss", "misses")):
                info[f"{kind}_{key}"] = int(
                    self._requests.value(cache=kind, outcome=outcome)
                )
            info[f"{kind}_evictions"] = int(
                self._evictions.value(cache=kind)
            )
        with self._lock:
            info["circuits"] = len(self._circuits)
            info["reports"] = len(self._reports)
            info["circuit_bytes"] = sum(self._circuit_sizes.values())
            info["report_bytes"] = sum(self._report_sizes.values())
        info["total_bytes"] = info["circuit_bytes"] + info["report_bytes"]
        info["max_circuits"] = self.max_circuits
        info["max_reports"] = self.max_reports
        return info

    def clear(self) -> None:
        with self._lock:
            self._circuits.clear()
            self._reports.clear()
            self._circuit_sizes.clear()
            self._report_sizes.clear()
            self._bytes_gauge.labels(cache="circuit").set(0)
            self._bytes_gauge.labels(cache="report").set(0)
