"""The job engine: queued analyses on a bounded worker pool.

A :class:`JobManager` owns a priority queue of :class:`Job` records and
``workers`` daemon threads that execute them on the existing analysis
machinery — :class:`~repro.api.engine.AnalysisEngine` for single-circuit
jobs, :func:`~repro.api.sweep.run_sweep` for batch jobs — sharing one
:class:`~repro.service.cache.ArtifactCache` so repeated payloads reuse
interned circuits (and therefore compiled kernels) and finished report
payloads.

Lifecycle::

    queued -> running -> done
                      -> failed     (structured {"type", "message"} error)
                      -> cancelled  (client DELETE, or revoked while queued)

Sampled jobs additionally publish **progressive snapshots**: the
engine's per-block checkpoint (see
:meth:`AnalysisEngine.sampled_analyze`) appends a summary row per
sampled block and keeps the latest full partial
:class:`~repro.api.results.SampledReport` payload, so clients polling
``GET /jobs/<id>`` watch ``max_halfwidth`` shrink monotonically while
the job runs.  The same checkpoint enforces cancellation and the
per-job wall-clock budget (:class:`~repro.errors.JobCancelled` /
:class:`~repro.errors.JobTimeout` abort the sampling loop between
blocks); analytic stages are not preemptible mid-stage, so for them
both are best-effort boundaries (checked before the stage runs, and
between sweep cells).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.config import ProtestConfig
from repro.api.engine import AnalysisEngine
from repro.api.sweep import run_sweep
from repro.circuit.bench_parser import parse_bench
from repro.errors import JobCancelled, JobTimeout, ReproError, ServiceError
from repro.probability.estimator import input_probs_key
from repro.service.cache import ArtifactCache

__all__ = ["Job", "JobManager", "JOB_STATES"]

#: Every state a job can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


class Job:
    """One queued analysis.  Mutable state is guarded by the manager lock."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        payload: Dict[str, Any],
        config: ProtestConfig,
        input_probs,
        priority: int,
        timeout: Optional[float],
    ) -> None:
        self.id = job_id
        self.kind = kind                      # "analyze" | "sweep"
        self.payload = payload                # kind-specific request body
        self.config = config
        self.input_probs = input_probs
        self.priority = priority
        self.timeout = timeout
        self.state = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.deadline: Optional[float] = None      # monotonic, set at start
        self.cancel_event = threading.Event()
        self.circuit_name: Optional[str] = payload.get("circuit")
        self.circuit_hash: Optional[str] = None
        self.from_cache = False
        self.circuit_interned = False
        self.error: Optional[Dict[str, str]] = None
        self.snapshots: List[Dict[str, Any]] = []
        self.latest_snapshot: Optional[Dict[str, Any]] = None
        self.result: Optional[Dict[str, Any]] = None

    # -- views (call under the manager lock) ---------------------------------

    def elapsed(self) -> float:
        if self.started is None:
            return 0.0
        end = self.finished if self.finished is not None else time.time()
        return end - self.started

    def status_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` body: status plus the latest snapshot."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "circuit": self.circuit_name,
            "circuit_hash": self.circuit_hash,
            "config_name": self.config.name,
            "config_hash": self.config.config_hash,
            "method": self.config.method,
            "priority": self.priority,
            "timeout": self.timeout,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "elapsed": self.elapsed(),
            "from_cache": self.from_cache,
            "error": self.error,
            "n_snapshots": len(self.snapshots),
            "snapshots": list(self.snapshots),
            "snapshot": self.latest_snapshot,
        }

    def summary_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs`` row: status without snapshot payloads."""
        summary = self.status_dict()
        del summary["snapshots"]
        del summary["snapshot"]
        return summary


class JobManager:
    """Priority-ordered job queue on a bounded worker-thread pool."""

    def __init__(
        self,
        workers: int = 2,
        cache: "ArtifactCache | None" = None,
        default_timeout: "float | None" = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be positive, got {workers}")
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        self.cache = cache if cache is not None else ArtifactCache()
        self.default_timeout = default_timeout
        # Reentrant: cancel()/shutdown() finish jobs while already
        # holding the lock; the worker loop finishes them without it.
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: List[Tuple[int, int, str]] = []   # (-priority, seq, id)
        self._seq = itertools.count()
        self._jobs: Dict[str, Job] = {}
        self._stopping = False
        # Per-backend sampled-pattern throughput, keyed by the resolved
        # backend name recorded in each finished report's provenance.
        self._throughput: Dict[str, Dict[str, float]] = {}
        self._workers = [
            threading.Thread(
                target=self._worker, name=f"protest-job-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        circuit: "str | None" = None,
        bench: "str | None" = None,
        sweep: "Mapping[str, Any] | None" = None,
        config: "ProtestConfig | str | Mapping[str, Any] | None" = None,
        input_probs=None,
        priority: int = 0,
        timeout: "float | None" = None,
    ) -> Job:
        """Enqueue a job and return its (queued) :class:`Job` record.

        Exactly one of ``circuit`` (a registered library name), ``bench``
        (``.bench`` source text) or ``sweep`` (a ``run_sweep`` request:
        ``{"circuits": [...], "presets": [...], ...}``) selects the
        work.  Request-shape problems raise :class:`ServiceError` here
        (the HTTP layer maps them to 400); problems with the *content*
        — an unknown circuit name, unparseable bench text, estimation
        failures — surface later as a ``failed`` job with a structured
        error body, so one bad payload can never take down the service.
        """
        chosen = [x for x in (circuit, bench, sweep) if x is not None]
        if len(chosen) != 1:
            raise ServiceError(
                "exactly one of 'circuit', 'bench' or 'sweep' is required"
            )
        if circuit is not None and not isinstance(circuit, str):
            raise ServiceError(f"'circuit' must be a name, got {circuit!r}")
        if bench is not None and not isinstance(bench, str):
            raise ServiceError("'bench' must be .bench source text")
        if sweep is not None:
            if not isinstance(sweep, Mapping):
                raise ServiceError("'sweep' must be an object")
            if not sweep.get("circuits"):
                raise ServiceError("'sweep' requires a 'circuits' list")
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(f"priority must be an int, got {priority!r}")
        if timeout is None:
            timeout = self.default_timeout
        elif timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {timeout}")
        try:
            if isinstance(config, Mapping):
                config = ProtestConfig.from_dict(config)
            else:
                config = ProtestConfig.coerce(config)
        except ReproError as error:
            raise ServiceError(f"invalid config: {error}") from error
        if sweep is not None:
            kind = "sweep"
            payload: Dict[str, Any] = dict(sweep)
        elif bench is not None:
            kind = "analyze"
            payload = {"bench": bench, "circuit": "uploaded"}
        else:
            kind = "analyze"
            payload = {"circuit": circuit}
        with self._cond:
            if self._stopping:
                raise ServiceError("the job manager is shutting down")
            job_id = f"j{next(self._seq):06d}"
            job = Job(
                job_id, kind, payload, config, input_probs, priority, timeout
            )
            self._jobs[job_id] = job
            heapq.heappush(self._queue, (-priority, int(job_id[1:]), job_id))
            self._cond.notify()
            return job

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> Dict[str, Any]:
        job = self.get(job_id)
        with self._lock:
            return job.status_dict()

    def result(self, job_id: str) -> "Dict[str, Any] | None":
        job = self.get(job_id)
        with self._lock:
            return job.result

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                job.summary_dict()
                for _, job in sorted(self._jobs.items())
            ]

    def wait(self, job_id: str, timeout: "float | None" = None) -> Job:
        """Block until the job reaches a terminal state (or ``timeout``)."""
        job = self.get(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while job.state not in TERMINAL_STATES:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(remaining)
            return job

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; returns the (possibly terminal) status.

        A queued job is cancelled immediately; a running sampled or
        sweep job aborts at its next checkpoint / cell boundary; a job
        already in a terminal state is left untouched.
        """
        job = self.get(job_id)
        with self._cond:
            job.cancel_event.set()
            if job.state == "queued":
                self._finish(job, "cancelled",
                             error={"type": "JobCancelled",
                                    "message": "cancelled while queued"})
            return job.status_dict()

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` body: queue, states, cache, throughput."""
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            throughput = {
                backend: {
                    **dict(data),
                    "patterns_per_second": (
                        data["patterns"] / data["seconds"]
                        if data["seconds"] > 0 else 0.0
                    ),
                }
                for backend, data in self._throughput.items()
            }
            queue_depth = states["queued"]
        return {
            "workers": len(self._workers),
            "queue_depth": queue_depth,
            "jobs": states,
            "cache": self.cache.cache_info(),
            "throughput": throughput,
        }

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; still-queued jobs are marked cancelled."""
        with self._cond:
            self._stopping = True
            while self._queue:
                _, _, job_id = heapq.heappop(self._queue)
                job = self._jobs[job_id]
                if job.state == "queued":
                    self._finish(job, "cancelled",
                                 error={"type": "JobCancelled",
                                        "message": "service shutdown"})
            self._cond.notify_all()
        if wait:
            for thread in self._workers:
                thread.join()

    # -- worker internals ----------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._stopping:
                    self._cond.wait()
                if not self._queue:
                    return          # stopping and drained
                _, _, job_id = heapq.heappop(self._queue)
                job = self._jobs[job_id]
                if job.state != "queued":
                    continue        # revoked while queued
                job.state = "running"
                job.started = time.time()
                if job.timeout is not None:
                    job.deadline = time.monotonic() + job.timeout
            try:
                self._execute(job)
            except JobCancelled as error:
                self._finish(job, "cancelled",
                             error={"type": "JobCancelled",
                                    "message": str(error)})
            except JobTimeout as error:
                self._finish(job, "failed",
                             error={"type": "JobTimeout",
                                    "message": str(error)})
            except ReproError as error:
                self._finish(job, "failed",
                             error={"type": type(error).__name__,
                                    "message": str(error)})
            except Exception as error:  # noqa: BLE001 - worker must survive
                self._finish(job, "failed",
                             error={"type": type(error).__name__,
                                    "message": str(error)})

    def _finish(
        self,
        job: Job,
        state: str,
        result: "Dict[str, Any] | None" = None,
        error: "Dict[str, str] | None" = None,
    ) -> None:
        with self._cond:
            if job.state in TERMINAL_STATES:
                return
            job.state = state
            job.result = result
            job.error = error
            job.finished = time.time()
            self._cond.notify_all()

    def _check_abort(self, job: Job) -> None:
        if job.cancel_event.is_set():
            raise JobCancelled(f"job {job.id} cancelled")
        if job.deadline is not None and time.monotonic() > job.deadline:
            raise JobTimeout(
                f"job {job.id} exceeded its {job.timeout:g}s budget"
            )

    def _execute(self, job: Job) -> None:
        self._check_abort(job)
        if job.kind == "sweep":
            self._execute_sweep(job)
        else:
            self._execute_analyze(job)

    def _execute_sweep(self, job: Job) -> None:
        payload = job.payload
        configs = payload.get("presets") or [job.config]
        result = run_sweep(
            payload["circuits"],
            configs,
            workers=payload.get("workers"),
            input_probs=job.input_probs,
            executor=payload.get("executor", "inline"),
            timeout=job.timeout,
            cancel=job.cancel_event,
        )
        self._check_abort(job)
        self._finish(job, "done", result=result.to_dict())

    def _execute_analyze(self, job: Job) -> None:
        bench = job.payload.get("bench")
        if bench is not None:
            # Parsed in the worker on purpose: a syntax error is a
            # property of this job ("failed", with the parser's
            # line-numbered message), not of the submission API.
            circuit = parse_bench(bench, name=job.payload["circuit"])
        else:
            from repro.circuits.library import build

            circuit = build(job.payload["circuit"])
        circuit, interned = self.cache.intern_circuit(circuit)
        config = job.config
        probs_key = input_probs_key(circuit.inputs, job.input_probs)
        report_key = (
            circuit.structural_hash(), config.config_hash,
            config.method, probs_key,
        )
        with self._lock:
            job.circuit_name = circuit.name
            job.circuit_hash = report_key[0]
            job.circuit_interned = interned
        cached = self.cache.get_report(report_key)
        if cached is not None:
            with self._lock:
                job.from_cache = True
            self._finish(job, "done", result=cached)
            return
        engine = AnalysisEngine(circuit, config)
        self._check_abort(job)
        if config.method == "sampled":
            report = engine.sampled_analyze(
                job.input_probs, checkpoint=lambda p: self._snapshot(job, p)
            )
        else:
            report = engine.analyze(job.input_probs)
        self._check_abort(job)
        payload = report.to_dict()
        self.cache.put_report(report_key, payload)
        self._record_throughput(job, payload)
        self._finish(job, "done", result=payload)

    def _snapshot(self, job: Job, partial) -> None:
        """Per-block checkpoint: abort check + progressive publication."""
        self._check_abort(job)
        payload = partial.to_dict()
        summary = {
            "n_patterns": payload.get("n_patterns"),
            "max_halfwidth": payload.get("max_halfwidth"),
            "converged": payload.get("converged"),
            "coverage": (payload.get("coverage") or {}).get("estimate"),
            "elapsed": job.elapsed(),
        }
        with self._lock:
            job.snapshots.append(summary)
            job.latest_snapshot = payload
            self._cond.notify_all()

    def _record_throughput(self, job: Job, payload: Dict[str, Any]) -> None:
        backend = (payload.get("provenance") or {}).get("backend", "unknown")
        patterns = payload.get("n_patterns", 0) or 0
        with self._lock:
            data = self._throughput.setdefault(
                backend, {"jobs": 0, "patterns": 0, "seconds": 0.0}
            )
            data["jobs"] += 1
            data["patterns"] += patterns
            data["seconds"] += job.elapsed()
