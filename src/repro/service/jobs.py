"""The job engine: queued analyses on a bounded worker pool.

A :class:`JobManager` owns a priority queue of :class:`Job` records and
``workers`` daemon threads that execute them on the existing analysis
machinery — :class:`~repro.api.engine.AnalysisEngine` for single-circuit
jobs, :func:`~repro.api.sweep.run_sweep` for batch jobs — sharing one
:class:`~repro.service.cache.ArtifactCache` so repeated payloads reuse
interned circuits (and therefore compiled kernels) and finished report
payloads.

Lifecycle::

    queued -> running -> done
                      -> failed     (structured {"type", "message",
                                     "transient", "attempts", "cause"})
                      -> cancelled  (client DELETE, or revoked while queued)
                      -> queued     (transient failure, retried with backoff)

Sampled jobs additionally publish **progressive snapshots**: the
engine's per-block checkpoint (see
:meth:`AnalysisEngine.sampled_analyze`) appends a summary row per
sampled block and keeps the latest full partial
:class:`~repro.api.results.SampledReport` payload, so clients polling
``GET /jobs/<id>`` watch ``max_halfwidth`` shrink monotonically while
the job runs.  The same checkpoint enforces cancellation and the
per-job wall-clock budget (:class:`~repro.errors.JobCancelled` /
:class:`~repro.errors.JobTimeout` abort the sampling loop between
blocks); analytic stages are not preemptible mid-stage, so for them
both are best-effort boundaries (checked before the stage runs, and
between sweep cells).

Fault tolerance (:mod:`repro.resilience`):

* **Retries** — a job failing with a *transient* error (a worker crash,
  a broken executor, an injected transient fault) goes back to the
  queue with exponential backoff + deterministic jitter, up to the
  :class:`~repro.resilience.policy.RetryPolicy` budget; every attempt
  is logged on the job.  Permanent errors (a parse error, a timeout, an
  estimation failure) fail immediately with the structured payload.
* **Worker crash detection** — each worker thread runs under a watchdog
  (:meth:`JobManager._worker_main`): a ``BaseException`` unwinding the
  loop (a :class:`~repro.resilience.chaos.ChaosKill`, a real thread
  death) replenishes the pool slot with a fresh thread and routes the
  orphaned job through the retry path as
  :class:`~repro.errors.WorkerCrashed`.
* **Checkpoint/resume** — sampled jobs persist their
  :class:`~repro.sampling.montecarlo.SamplingState` to the
  :class:`~repro.resilience.journal.JobJournal` once per block, keyed
  by the same content identity as the artifact cache.  A retried,
  resubmitted, or restarted (``--journal``) job resumes seed-exactly
  from the last completed block — the final report is bit-identical to
  an uninterrupted run.
* **Admission control** — with ``max_queue`` set, a submit that finds
  the queue full raises :class:`~repro.errors.QueueFull` (HTTP 429 +
  ``Retry-After``) instead of accepting unbounded work.
* **Degradation accounting** — sampled jobs that fell back from a
  failing backend to the ``"python"`` engine mid-run are counted and
  surface in :meth:`health` as status ``"degraded"``; their provenance
  records the event as ``"<failed>->python"``.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import os
import threading
import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import __version__
from repro.api.config import ProtestConfig
from repro.api.engine import AnalysisEngine
from repro.api.sweep import run_sweep
from repro.circuit.io import parse_bench, parse_verilog
from repro.errors import (
    JobCancelled,
    JobTimeout,
    QueueFull,
    ReproError,
    ResilienceError,
    ServiceError,
    WorkerCrashed,
)
from repro.probability.estimator import input_probs_key
from repro.resilience.chaos import ChaosKill, chaos_point
from repro.resilience.journal import JobJournal
from repro.resilience.policy import RetryPolicy, error_payload
from repro.sampling.montecarlo import SamplingState
from repro.service.cache import ArtifactCache
from repro.telemetry.logs import get_logger
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import peak_rss_bytes
from repro.telemetry.tracing import (
    SpanContext,
    current_context,
    export_chrome_trace,
    span,
    use_context,
)

__all__ = ["Job", "JobManager", "JOB_STATES"]

#: Every state a job can be in.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


class Job:
    """One queued analysis.  Mutable state is guarded by the manager lock."""

    def __init__(
        self,
        job_id: str,
        kind: str,
        payload: Dict[str, Any],
        config: ProtestConfig,
        input_probs,
        priority: int,
        timeout: Optional[float],
        profile: bool = False,
    ) -> None:
        self.id = job_id
        self.kind = kind                      # "analyze" | "sweep"
        self.payload = payload                # kind-specific request body
        self.config = config
        self.input_probs = input_probs
        self.priority = priority
        self.timeout = timeout
        #: Request a phase profile of this job's engine run; the payload
        #: (table + collapsed stacks + memory) lands in the job status.
        self.profile = profile
        self.profile_payload: Optional[Dict[str, Any]] = None
        self.state = "queued"
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.deadline: Optional[float] = None      # monotonic, set at start
        self.cancel_event = threading.Event()
        self.circuit_name: Optional[str] = payload.get("circuit")
        self.circuit_hash: Optional[str] = None
        self.from_cache = False
        self.circuit_interned = False
        self.error: Optional[Dict[str, Any]] = None
        # Span context captured at submission (the HTTP request's), and
        # the trace id the job actually ran under — set by the worker.
        self.trace: Optional[Dict[str, str]] = None
        self.trace_id: Optional[str] = None
        self.snapshots: List[Dict[str, Any]] = []
        self.latest_snapshot: Optional[Dict[str, Any]] = None
        self.result: Optional[Dict[str, Any]] = None
        # -- resilience bookkeeping -----------------------------------
        self.attempts = 0                     # executions started
        self.retries: List[Dict[str, Any]] = []   # one entry per retry
        self.resumed = False                  # continued from the journal
        self.degraded: Optional[str] = None   # "numpy->python" etc.

    # -- views (call under the manager lock) ---------------------------------

    def elapsed(self) -> float:
        if self.started is None:
            return 0.0
        end = self.finished if self.finished is not None else time.time()
        return end - self.started

    def status_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` body: status plus the latest snapshot."""
        return {
            "id": self.id,
            "kind": self.kind,
            "state": self.state,
            "circuit": self.circuit_name,
            "circuit_hash": self.circuit_hash,
            "config_name": self.config.name,
            "config_hash": self.config.config_hash,
            "method": self.config.method,
            "priority": self.priority,
            "timeout": self.timeout,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "elapsed": self.elapsed(),
            "from_cache": self.from_cache,
            "trace_id": self.trace_id,
            "error": self.error,
            "attempts": self.attempts,
            "retries": list(self.retries),
            "resumed": self.resumed,
            "degraded": self.degraded,
            "n_snapshots": len(self.snapshots),
            "snapshots": list(self.snapshots),
            "snapshot": self.latest_snapshot,
            "profile": self.profile_payload,
        }

    def summary_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs`` row: status without snapshot payloads."""
        summary = self.status_dict()
        del summary["snapshots"]
        del summary["snapshot"]
        del summary["profile"]
        return summary


class JobManager:
    """Priority-ordered job queue on a bounded worker-thread pool.

    Parameters
    ----------
    workers:
        Worker-thread count.  Crashed workers are replenished, so the
        pool size is an invariant, not a best effort.
    cache:
        Shared :class:`ArtifactCache` (one is created when omitted).
    default_timeout:
        Per-attempt wall-clock budget applied to jobs submitted without
        their own ``timeout``.
    retry:
        The :class:`RetryPolicy` for transient failures; the default
        grants 3 attempts with exponential backoff.  ``max_attempts=1``
        disables retries.
    max_queue:
        Bound on the number of *queued* jobs; a submit beyond it raises
        :class:`~repro.errors.QueueFull` (mapped to HTTP 429).  ``None``
        (default) leaves admission unbounded.
    journal:
        The checkpoint :class:`JobJournal`.  Defaults to an in-memory
        journal (crash-retry resume within this manager); pass a
        file-backed one to survive service restarts.
    registry:
        The :class:`MetricsRegistry` carrying this manager's queue,
        retry and throughput series (one is created when omitted); an
        omitted ``cache`` shares it, so ``GET /metrics`` renders queue
        and cache series from one place.
    trace_dir:
        When set, every job that reaches a terminal state writes its
        trace as Chrome trace-event JSON to
        ``<trace_dir>/trace-<job_id>.json`` (``protest serve
        --trace-dir``).
    """

    def __init__(
        self,
        workers: int = 2,
        cache: "ArtifactCache | None" = None,
        default_timeout: "float | None" = None,
        retry: "RetryPolicy | None" = None,
        max_queue: "int | None" = None,
        journal: "JobJournal | None" = None,
        registry: "MetricsRegistry | None" = None,
        trace_dir: "str | None" = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be positive, got {workers}")
        if default_timeout is not None and default_timeout <= 0:
            raise ServiceError(
                f"default_timeout must be positive, got {default_timeout}"
            )
        if max_queue is not None and max_queue < 1:
            raise ServiceError(
                f"max_queue must be positive or None, got {max_queue}"
            )
        self.metrics = registry if registry is not None else MetricsRegistry()
        self.cache = (
            cache if cache is not None
            else ArtifactCache(registry=self.metrics)
        )
        self.default_timeout = default_timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.max_queue = max_queue
        self.journal = journal if journal is not None else JobJournal()
        self.trace_dir = trace_dir
        if trace_dir is not None:
            os.makedirs(trace_dir, exist_ok=True)
        self.started = time.time()
        self._started_mono = time.monotonic()
        self._log = get_logger("service.jobs")
        # Reentrant: cancel()/shutdown() finish jobs while already
        # holding the lock; the worker loop finishes them without it.
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._queue: List[Tuple[int, int, str]] = []   # (-priority, order, id)
        self._delayed: List[Tuple[float, int, str]] = []  # (ready, order, id)
        self._seq = itertools.count()
        self._order = itertools.count()       # heap tie-breaker stream
        self._jobs: Dict[str, Job] = {}
        self._stopping = False
        # The job each worker thread is executing, by thread ident —
        # what the crash watchdog consults to find the orphaned job.
        self._running: Dict[int, Job] = {}
        # Queue/retry/crash accounting and per-backend throughput live
        # in the telemetry registry; stats()/health() read them back and
        # GET /metrics renders them directly.
        self._submitted_total = self.metrics.counter(
            "protest_jobs_submitted_total", "Jobs accepted into the queue"
        )
        self._finished_total = self.metrics.counter(
            "protest_jobs_finished_total",
            "Jobs that reached a terminal state",
            ("state",),
        )
        self._retries_total = self.metrics.counter(
            "protest_job_retries_total",
            "Transient job failures sent back to the queue with backoff",
        )
        self._crashes_total = self.metrics.counter(
            "protest_worker_crashes_total",
            "Worker threads that died and were replenished",
        )
        self._resumes_total = self.metrics.counter(
            "protest_job_resumes_total",
            "Sampled jobs resumed from a journal checkpoint",
        )
        self._degraded_total = self.metrics.counter(
            "protest_degraded_jobs_total",
            "Jobs whose sampling fell back to the python engine mid-run",
        )
        self._rejected_total = self.metrics.counter(
            "protest_jobs_rejected_total",
            "Submissions rejected by admission control (queue full)",
        )
        self._queue_depth_gauge = self.metrics.gauge(
            "protest_job_queue_depth",
            "Jobs currently in state queued (including retry backoff)",
        )
        self._job_seconds = self.metrics.histogram(
            "protest_job_seconds",
            "Wall-clock seconds from job start to terminal state",
            ("kind",),
        )
        self._report_jobs = self.metrics.counter(
            "protest_job_reports_total",
            "Finished analyze reports per resolved backend",
            ("backend",),
        )
        self._report_patterns = self.metrics.counter(
            "protest_job_patterns_total",
            "Patterns behind finished reports per resolved backend",
            ("backend",),
        )
        self._report_seconds = self.metrics.counter(
            "protest_job_report_seconds_total",
            "Seconds behind finished reports per resolved backend",
            ("backend",),
        )
        self._workers = [
            threading.Thread(
                target=self._worker_main, args=(i,),
                name=f"protest-job-worker-{i}", daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        circuit: "str | None" = None,
        bench: "str | None" = None,
        verilog: "str | None" = None,
        sweep: "Mapping[str, Any] | None" = None,
        config: "ProtestConfig | str | Mapping[str, Any] | None" = None,
        input_probs=None,
        priority: int = 0,
        timeout: "float | None" = None,
        profile: bool = False,
    ) -> Job:
        """Enqueue a job and return its (queued) :class:`Job` record.

        Exactly one of ``circuit`` (a registered library name), ``bench``
        (ISCAS-85/89 ``.bench`` source text; sequential netlists are
        combinationally extracted), ``verilog`` (structural Verilog
        source text) or ``sweep`` (a ``run_sweep`` request:
        ``{"circuits": [...], "presets": [...], ...}``) selects the
        work.  Request-shape problems raise :class:`ServiceError` here
        (the HTTP layer maps them to 400); problems with the *content*
        — an unknown circuit name, unparseable netlist text, estimation
        failures — surface later as a ``failed`` job with a structured
        error body, so one bad payload can never take down the service.
        With ``max_queue`` set, a full queue raises
        :class:`~repro.errors.QueueFull` (429 + ``Retry-After``).

        ``profile=True`` runs the job's engine under a
        :class:`~repro.telemetry.profiling.PhaseProfiler`; the profile
        payload appears in the job status (and, with ``trace_dir`` set,
        as ``profile-<job_id>.json``).  A report served from the cache
        carries no profile — nothing was executed.
        """
        chosen = [x for x in (circuit, bench, verilog, sweep)
                  if x is not None]
        if len(chosen) != 1:
            raise ServiceError(
                "exactly one of 'circuit', 'bench', 'verilog' or 'sweep' "
                "is required"
            )
        if circuit is not None and not isinstance(circuit, str):
            raise ServiceError(f"'circuit' must be a name, got {circuit!r}")
        if bench is not None and not isinstance(bench, str):
            raise ServiceError("'bench' must be .bench source text")
        if verilog is not None and not isinstance(verilog, str):
            raise ServiceError("'verilog' must be Verilog source text")
        if sweep is not None:
            if not isinstance(sweep, Mapping):
                raise ServiceError("'sweep' must be an object")
            if not sweep.get("circuits"):
                raise ServiceError("'sweep' requires a 'circuits' list")
        if not isinstance(priority, int) or isinstance(priority, bool):
            raise ServiceError(f"priority must be an int, got {priority!r}")
        if not isinstance(profile, bool):
            raise ServiceError(f"profile must be a bool, got {profile!r}")
        if timeout is None:
            timeout = self.default_timeout
        elif timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {timeout}")
        try:
            if isinstance(config, Mapping):
                config = ProtestConfig.from_dict(config)
            else:
                config = ProtestConfig.coerce(config)
        except ReproError as error:
            raise ServiceError(f"invalid config: {error}") from error
        if sweep is not None:
            kind = "sweep"
            payload: Dict[str, Any] = dict(sweep)
        elif bench is not None:
            kind = "analyze"
            payload = {"bench": bench, "circuit": "uploaded"}
        elif verilog is not None:
            kind = "analyze"
            payload = {"verilog": verilog, "circuit": "uploaded"}
        else:
            kind = "analyze"
            payload = {"circuit": circuit}
        with self._cond:
            if self._stopping:
                raise ServiceError("the job manager is shutting down")
            if self.max_queue is not None:
                depth = self._queued_depth()
                if depth >= self.max_queue:
                    self._rejected_total.inc()
                    self._log.warning(
                        "submission rejected: queue full",
                        extra={"depth": depth, "max_queue": self.max_queue},
                    )
                    raise QueueFull(
                        f"queue is full ({depth} jobs queued, "
                        f"limit {self.max_queue})",
                        retry_after=max(1.0, self.retry.base_delay),
                    )
            job_id = f"j{next(self._seq):06d}"
            job = Job(
                job_id, kind, payload, config, input_probs, priority,
                timeout, profile=profile,
            )
            # Capture the submitter's span context (the HTTP request's),
            # so the worker's spans nest under it across the thread hop.
            context = current_context()
            if context is not None:
                job.trace = context.to_payload()
            self._jobs[job_id] = job
            heapq.heappush(
                self._queue, (-priority, next(self._order), job_id)
            )
            self._submitted_total.inc()
            self._queue_depth_gauge.set(self._queued_depth())
            self._log.debug(
                "job submitted",
                extra={
                    "job": job_id, "job_kind": kind,
                    "circuit": job.circuit_name, "priority": priority,
                },
            )
            self._cond.notify()
            return job

    def _queued_depth(self) -> int:
        """Jobs in state ``"queued"`` (call under the lock)."""
        return sum(1 for job in self._jobs.values() if job.state == "queued")

    def uptime_seconds(self) -> float:
        """Seconds since this manager started."""
        return time.monotonic() - self._started_mono

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ServiceError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> Dict[str, Any]:
        job = self.get(job_id)
        with self._lock:
            return job.status_dict()

    def result(self, job_id: str) -> "Dict[str, Any] | None":
        job = self.get(job_id)
        with self._lock:
            return job.result

    def jobs(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [
                job.summary_dict()
                for _, job in sorted(self._jobs.items())
            ]

    def wait(self, job_id: str, timeout: "float | None" = None) -> Job:
        """Block until the job reaches a terminal state (or ``timeout``)."""
        job = self.get(job_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while job.state not in TERMINAL_STATES:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(remaining)
            return job

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Request cancellation; returns the (possibly terminal) status.

        A queued job is cancelled immediately; a running sampled or
        sweep job aborts at its next checkpoint / cell boundary; a job
        already in a terminal state is left untouched.  A cancelled
        sampled job keeps its journal checkpoint — resubmitting the
        same work resumes instead of restarting.
        """
        job = self.get(job_id)
        with self._cond:
            job.cancel_event.set()
            if job.state == "queued":
                self._finish(
                    job, "cancelled",
                    error=error_payload(
                        JobCancelled("cancelled while queued"), job.attempts
                    ),
                )
            return job.status_dict()

    def health(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body: liveness plus truthful degradation.

        ``status`` is ``"ok"`` (all clear), ``"degraded"`` (a sampled
        job fell back from a failing backend, or a worker crashed —
        results are still correct, capacity or performance may not be),
        or ``"draining"`` (shutdown in progress; submissions are
        rejected).
        """
        crashes = int(self._crashes_total.value())
        degraded = int(self._degraded_total.value())
        with self._lock:
            if self._stopping:
                status = "draining"
            elif degraded > 0 or crashes > 0:
                status = "degraded"
            else:
                status = "ok"
            return {
                "status": status,
                "workers": len(self._workers),
                "queue_depth": self._queued_depth(),
                "worker_crashes": crashes,
                "degraded_jobs": degraded,
                "uptime_seconds": round(self.uptime_seconds(), 3),
                "version": __version__,
            }

    def stats(self) -> Dict[str, Any]:
        """The ``GET /stats`` body: queue, states, cache, throughput.

        Counters are read back from the telemetry registry — the same
        series ``GET /metrics`` renders — plus a full registry snapshot
        under ``"telemetry"``.
        """
        throughput: Dict[str, Dict[str, float]] = {}
        for labels, jobs_done in self._report_jobs.samples():
            backend = labels["backend"]
            patterns = self._report_patterns.value(backend=backend)
            seconds = self._report_seconds.value(backend=backend)
            throughput[backend] = {
                "jobs": int(jobs_done),
                "patterns": int(patterns),
                "seconds": seconds,
                "patterns_per_second": (
                    patterns / seconds if seconds > 0 else 0.0
                ),
            }
        resilience: Dict[str, Any] = {
            "retries": int(self._retries_total.value()),
            "worker_crashes": int(self._crashes_total.value()),
            "resumes": int(self._resumes_total.value()),
            "degraded_jobs": int(self._degraded_total.value()),
            "rejected": int(self._rejected_total.value()),
        }
        with self._lock:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            queue_depth = states["queued"]
            resilience["delayed"] = len(self._delayed)
            resilience["journal_entries"] = len(self.journal)
            resilience["max_queue"] = self.max_queue
            resilience["retry"] = {
                "max_attempts": self.retry.max_attempts,
                "base_delay": self.retry.base_delay,
                "max_delay": self.retry.max_delay,
            }
        cache_info = self.cache.cache_info()
        return {
            "workers": len(self._workers),
            "queue_depth": queue_depth,
            "jobs": states,
            "cache": cache_info,
            "throughput": throughput,
            "resilience": resilience,
            "memory": {
                "peak_rss_bytes": peak_rss_bytes(),
                "cache_bytes": cache_info.get("total_bytes", 0),
            },
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "version": __version__,
            "telemetry": self.metrics.snapshot(),
        }

    # -- shutdown ------------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; still-queued jobs are marked cancelled."""
        with self._cond:
            self._stopping = True
            self._revoke_queued("service shutdown")
            self._cond.notify_all()
        if wait:
            for thread in list(self._workers):
                thread.join()

    def drain(self, grace: float = 5.0) -> Dict[str, Any]:
        """Graceful shutdown: finish running jobs, persist the journal.

        The SIGTERM path of ``protest serve``: intake stops, queued jobs
        are revoked, running jobs get ``grace`` seconds to finish; any
        still running after that are cancelled — sampled jobs abort at
        their next block checkpoint with their progress already in the
        journal, so a restarted service resumes them seed-exactly.
        Returns a summary of what was drained.
        """
        if grace < 0:
            raise ServiceError(f"grace must be non-negative, got {grace}")
        with self._cond:
            self._stopping = True
            revoked = self._revoke_queued("service shutdown")
            self._cond.notify_all()
        deadline = time.monotonic() + grace
        aborted: List[str] = []
        with self._cond:
            while True:
                running = [
                    job for job in self._jobs.values()
                    if job.state == "running"
                ]
                if not running:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    # Grace expired: abort at the next checkpoint; the
                    # journal keeps each job's last completed block.
                    for job in running:
                        job.cancel_event.set()
                        aborted.append(job.id)
                    break
                self._cond.wait(remaining)
        for thread in list(self._workers):
            thread.join(timeout=max(grace, 1.0))
        try:
            self.journal.sync()
        except ResilienceError:
            pass        # an unwritable journal must not block shutdown
        with self._lock:
            return {
                "revoked": revoked,
                "aborted": aborted,
                "journal_entries": len(self.journal),
            }

    def _revoke_queued(self, reason: str) -> int:
        """Cancel everything still queued or awaiting retry (under lock)."""
        revoked = 0
        for heap in (self._queue, self._delayed):
            while heap:
                entry = heapq.heappop(heap)
                job = self._jobs[entry[2]]
                if job.state == "queued":
                    self._finish(
                        job, "cancelled",
                        error=error_payload(
                            JobCancelled(reason), job.attempts
                        ),
                    )
                    revoked += 1
        return revoked

    # -- worker internals ----------------------------------------------------

    def _worker_main(self, index: int) -> None:
        """Watchdog shell around the worker loop.

        A ``BaseException`` unwinding :meth:`_worker_loop` is a worker
        death — injected (:class:`ChaosKill`) or real.  The slot is
        replenished with a fresh thread, and the job the dead worker
        was holding goes through the retry path as
        :class:`WorkerCrashed` (transient: the failure belongs to the
        substrate, not the work).
        """
        try:
            self._worker_loop()
        except BaseException as error:  # noqa: BLE001 - thread death
            job = self._running.pop(threading.get_ident(), None)
            replacement = threading.Thread(
                target=self._worker_main, args=(index,),
                name=f"protest-job-worker-{index}", daemon=True,
            )
            with self._cond:
                self._crashes_total.inc()
                self._workers[index] = replacement
            self._log.warning(
                "worker crashed; slot replenished",
                extra={
                    "worker": index,
                    "job": job.id if job is not None else None,
                    "error": f"{type(error).__name__}: {error}",
                },
            )
            replacement.start()
            if job is not None:
                crash = WorkerCrashed(
                    f"worker died while running job {job.id}: "
                    f"{type(error).__name__}: {error}"
                )
                crash.__cause__ = error
                self._handle_failure(job, crash)
            if not isinstance(error, ChaosKill):
                raise

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                job = self._next_job()
                if job is None:
                    return          # stopping and drained
                self._running[threading.get_ident()] = job
            # Run under the submitter's span context: the job span (and
            # everything the engine opens below it) nests under the
            # originating HTTP request, across the thread hop.
            context = SpanContext.from_payload(job.trace)
            try:
                with use_context(context):
                    with span(
                        "service.job",
                        job=job.id, kind=job.kind,
                        circuit=job.circuit_name, attempt=job.attempts,
                    ) as job_span:
                        with self._lock:
                            job.trace_id = job_span.trace_id
                        chaos_point(
                            "service.worker",
                            job=job.id, kind=job.kind,
                            attempt=job.attempts - 1,
                        )
                        self._execute(job)
            except JobCancelled as error:
                self._finish(job, "cancelled",
                             error=error_payload(error, job.attempts))
            except ReproError as error:
                self._handle_failure(job, error)
            except Exception as error:  # noqa: BLE001 - worker must survive
                self._handle_failure(job, error)
            # Deliberately not a finally: on a BaseException (worker
            # death) the entry must survive for the watchdog to find.
            self._running.pop(threading.get_ident(), None)
            self._maybe_export_trace(job)
            self._maybe_export_profile(job)

    def _maybe_export_trace(self, job: Job) -> None:
        """Write the job's Chrome trace file once it is terminal."""
        if self.trace_dir is None or job.trace_id is None:
            return
        if job.state not in TERMINAL_STATES:
            return      # retrying: export once, after the final attempt
        path = os.path.join(self.trace_dir, f"trace-{job.id}.json")
        try:
            count = export_chrome_trace(path, trace_id=job.trace_id)
        except OSError as error:
            self._log.warning(
                "trace export failed",
                extra={"job": job.id, "path": path, "error": str(error)},
            )
            return
        self._log.debug(
            "trace exported",
            extra={"job": job.id, "path": path, "n_spans": count},
        )

    def _maybe_export_profile(self, job: Job) -> None:
        """Write ``profile-<job_id>.json`` next to the job's trace."""
        if self.trace_dir is None or job.profile_payload is None:
            return
        if job.state not in TERMINAL_STATES:
            return
        path = os.path.join(self.trace_dir, f"profile-{job.id}.json")
        try:
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(job.profile_payload, handle, indent=2,
                          sort_keys=True)
        except OSError as error:
            self._log.warning(
                "profile export failed",
                extra={"job": job.id, "path": path, "error": str(error)},
            )
            return
        self._log.debug("profile exported",
                        extra={"job": job.id, "path": path})

    def _next_job(self) -> Optional[Job]:
        """Claim the next runnable job (call under the condition)."""
        while True:
            now = time.monotonic()
            # Promote retry entries whose backoff has elapsed.
            while self._delayed and self._delayed[0][0] <= now:
                _, order, job_id = heapq.heappop(self._delayed)
                delayed = self._jobs[job_id]
                if delayed.state == "queued":
                    heapq.heappush(
                        self._queue, (-delayed.priority, order, job_id)
                    )
            while self._queue:
                _, _, job_id = heapq.heappop(self._queue)
                job = self._jobs[job_id]
                if job.state != "queued":
                    continue        # revoked while queued
                job.state = "running"
                job.started = time.time()
                job.finished = None
                job.attempts += 1
                if job.timeout is not None:
                    job.deadline = time.monotonic() + job.timeout
                self._queue_depth_gauge.set(self._queued_depth())
                return job
            if self._stopping:
                return None
            timeout = None
            if self._delayed:
                timeout = max(0.0, self._delayed[0][0] - now)
            self._cond.wait(timeout)

    def _handle_failure(self, job: Job, error: BaseException) -> None:
        """Retry a transient failure with backoff, or fail the job."""
        with self._cond:
            retryable = (
                not self._stopping
                and not job.cancel_event.is_set()
                and self.retry.should_retry(error, job.attempts)
            )
            if not retryable:
                self._finish(
                    job, "failed", error=error_payload(error, job.attempts)
                )
                return
            delay = self.retry.delay(job.attempts, token=job.id)
            job.retries.append({
                "attempt": job.attempts,
                "error": error_payload(error, job.attempts),
                "delay": delay,
            })
            self._retries_total.inc()
            job.state = "queued"
            job.started = None
            job.deadline = None
            heapq.heappush(
                self._delayed,
                (time.monotonic() + delay, next(self._order), job.id),
            )
            self._queue_depth_gauge.set(self._queued_depth())
            self._log.info(
                "job retrying after transient failure",
                extra={
                    "job": job.id, "attempt": job.attempts, "delay": delay,
                    "error": f"{type(error).__name__}: {error}",
                },
            )
            self._cond.notify_all()

    def _finish(
        self,
        job: Job,
        state: str,
        result: "Dict[str, Any] | None" = None,
        error: "Dict[str, Any] | None" = None,
    ) -> None:
        with self._cond:
            if job.state in TERMINAL_STATES:
                return
            job.state = state
            job.result = result
            job.error = error
            job.finished = time.time()
            self._finished_total.labels(state=state).inc()
            self._job_seconds.labels(kind=job.kind).observe(job.elapsed())
            self._queue_depth_gauge.set(self._queued_depth())
            self._log.info(
                "job finished",
                extra={
                    "job": job.id, "state": state, "job_kind": job.kind,
                    "attempts": job.attempts,
                    "elapsed": round(job.elapsed(), 6),
                    "from_cache": job.from_cache,
                },
            )
            self._cond.notify_all()

    def _check_abort(self, job: Job) -> None:
        if job.cancel_event.is_set():
            raise JobCancelled(f"job {job.id} cancelled")
        if job.deadline is not None and time.monotonic() > job.deadline:
            raise JobTimeout(
                f"job {job.id} exceeded its {job.timeout:g}s budget"
            )

    def _execute(self, job: Job) -> None:
        self._check_abort(job)
        if job.kind == "sweep":
            self._execute_sweep(job)
        else:
            self._execute_analyze(job)

    def _execute_sweep(self, job: Job) -> None:
        payload = job.payload
        configs = payload.get("presets") or [job.config]
        result = run_sweep(
            payload["circuits"],
            configs,
            workers=payload.get("workers"),
            input_probs=job.input_probs,
            executor=payload.get("executor", "inline"),
            timeout=job.timeout,
            cancel=job.cancel_event,
        )
        self._check_abort(job)
        self._finish(job, "done", result=result.to_dict())

    def _journal_key(
        self, circuit_hash: str, config: ProtestConfig, probs_key
    ) -> str:
        """Content identity of a sampled run — the journal's key.

        The same identity the report cache uses (circuit structure,
        config hash, method, input-probability tuple), flattened to a
        string: a crashed-and-retried job, a cancelled-then-resubmitted
        job, and a restarted service all find the same checkpoint.
        """
        probs_hash = hashlib.sha256(
            repr(probs_key).encode("utf-8")
        ).hexdigest()[:16]
        return "|".join(
            [circuit_hash, config.config_hash, config.method, probs_hash]
        )

    def _execute_analyze(self, job: Job) -> None:
        bench = job.payload.get("bench")
        verilog = job.payload.get("verilog")
        if bench is not None:
            # Parsed in the worker on purpose: a syntax error is a
            # property of this job ("failed", with the parser's
            # line-numbered message), not of the submission API.
            circuit = parse_bench(bench, name=job.payload["circuit"])
        elif verilog is not None:
            circuit = parse_verilog(verilog)
        else:
            from repro.circuits.library import build

            circuit = build(job.payload["circuit"])
        circuit, interned = self.cache.intern_circuit(circuit)
        config = job.config
        probs_key = input_probs_key(circuit.inputs, job.input_probs)
        report_key = (
            circuit.structural_hash(), config.config_hash,
            config.method, probs_key,
        )
        with self._lock:
            job.circuit_name = circuit.name
            job.circuit_hash = report_key[0]
            job.circuit_interned = interned
        cached = self.cache.get_report(report_key)
        if cached is not None:
            with self._lock:
                job.from_cache = True
            self._finish(job, "done", result=cached)
            return
        engine = AnalysisEngine(
            circuit, config, registry=self.metrics, profile=job.profile
        )
        self._check_abort(job)
        if config.method == "sampled":
            report = self._run_sampled(job, engine, report_key)
        else:
            report = engine.analyze(job.input_probs)
        self._check_abort(job)
        payload = report.to_dict()
        if job.profile:
            with self._lock:
                job.profile_payload = engine.profile_report()
        self.cache.put_report(report_key, payload)
        self._record_throughput(job, payload)
        self._finish(job, "done", result=payload)

    def _run_sampled(self, job: Job, engine: AnalysisEngine, report_key):
        """One sampled analysis with journal checkpoint/resume."""
        journal_key = self._journal_key(
            report_key[0], job.config, report_key[3]
        )
        resume = None
        entry = self.journal.get(journal_key)
        if entry is not None:
            try:
                resume = SamplingState.from_payload(entry)
            except ResilienceError:
                self.journal.discard(journal_key)   # corrupt: recompute

        def state_hook(state: SamplingState) -> None:
            try:
                self.journal.put(journal_key, state.to_payload())
            except ResilienceError:
                # A lost checkpoint costs recomputation, never the job.
                pass

        if resume is not None:
            with self._lock:
                job.resumed = True
                self._resumes_total.inc()
        try:
            report = engine.sampled_analyze(
                job.input_probs,
                checkpoint=lambda p: self._snapshot(job, p),
                state_hook=state_hook,
                resume=resume,
            )
        except ResilienceError:
            if resume is None:
                raise
            # A stale checkpoint (fault list or seed mismatch after a
            # config collision) is discarded, and the run restarts clean.
            self.journal.discard(journal_key)
            with self._lock:
                job.resumed = False
            report = engine.sampled_analyze(
                job.input_probs,
                checkpoint=lambda p: self._snapshot(job, p),
                state_hook=state_hook,
            )
        if engine.sampler.degraded:
            with self._lock:
                job.degraded = engine.sampler.backend_name
                self._degraded_total.inc()
            self._log.warning(
                "sampling degraded to the python engine",
                extra={"job": job.id, "backend": job.degraded},
            )
        self.journal.discard(journal_key)     # done: retire the checkpoint
        return report

    def _snapshot(self, job: Job, partial) -> None:
        """Per-block checkpoint: abort check + progressive publication.

        The chaos seam comes *first*: a kill injected "at block k"
        strikes after the journal already holds block k's state (the
        estimator runs its ``state_hook`` before the checkpoint), so
        the retried attempt resumes with block k done — the situation
        the bit-identity acceptance test exercises.
        """
        chaos_point(
            "service.checkpoint", job=job.id, block=len(job.snapshots)
        )
        self._check_abort(job)
        payload = partial.to_dict()
        summary = {
            "n_patterns": payload.get("n_patterns"),
            "max_halfwidth": payload.get("max_halfwidth"),
            "converged": payload.get("converged"),
            "coverage": (payload.get("coverage") or {}).get("estimate"),
            "elapsed": job.elapsed(),
        }
        with self._lock:
            job.snapshots.append(summary)
            job.latest_snapshot = payload
            self._cond.notify_all()

    def _record_throughput(self, job: Job, payload: Dict[str, Any]) -> None:
        backend = (payload.get("provenance") or {}).get("backend", "unknown")
        patterns = payload.get("n_patterns", 0) or 0
        self._report_jobs.labels(backend=backend).inc()
        self._report_patterns.labels(backend=backend).inc(patterns)
        self._report_seconds.labels(backend=backend).inc(job.elapsed())
