"""Bit-parallel true-value simulation.

Evaluates every node of a combinational circuit over a whole
:class:`~repro.logicsim.patterns.PatternSet` at once; node values are packed
words (bit *j* = value under pattern *j*).

Evaluation runs on the compiled flat-array kernel
(:mod:`repro.kernel`), compiled once per circuit and shared with the
fault simulator and the estimator; ``use_kernel=False`` selects the
legacy per-gate dict interpreter (parity reference and perf baseline).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from repro.circuit.netlist import Circuit
from repro.circuit.types import eval_packed
from repro.errors import SimulationError
from repro.kernel import compile_circuit
from repro.logicsim.patterns import PatternSet
from repro.telemetry.profiling import active_profiler

__all__ = ["simulate", "simulate_outputs", "node_probabilities"]


def simulate(
    circuit: Circuit,
    patterns: PatternSet,
    overrides: "Mapping[str, int] | None" = None,
    use_kernel: bool = True,
    backend=None,
) -> Dict[str, int]:
    """Simulate and return the packed value of every node.

    ``overrides`` forces the given nodes to fixed packed words (used for
    stem fault injection); forced gate nodes are not evaluated.
    ``backend`` selects the evaluation engine behind the compiled
    kernel (an :class:`~repro.backends.EvalBackend`, a registered name,
    ``"auto"``, or ``None`` for the pure-python default); every backend
    returns bit-identical words.
    """
    _check_inputs(circuit, patterns)
    mask = patterns.mask
    if overrides:
        for node in overrides:
            if not circuit.has_node(node):
                raise SimulationError(f"override on unknown node {node!r}")
    if use_kernel:
        from repro.backends import resolve_backend

        resolved = resolve_backend(backend, circuit,
                                   block_bits=patterns.n_patterns)
        compiled = compile_circuit(circuit, resolved)
        profiler = active_profiler()
        if profiler is None:
            values = resolved.simulate_words(compiled, patterns.words, mask,
                                             overrides)
        else:
            # Profiler-only phase (no span): true-value simulation sits
            # inside hot loops and must stay span-free when unobserved.
            with profiler.phase(f"backend.simulate_words.{resolved.name}"):
                values = resolved.simulate_words(compiled, patterns.words,
                                                 mask, overrides)
        return compiled.values_as_dict(values)
    if backend is not None:
        raise SimulationError(
            "backend selection requires the compiled kernel "
            "(use_kernel=True)"
        )
    return _simulate_legacy(circuit, patterns, overrides, mask)


def _simulate_legacy(
    circuit: Circuit,
    patterns: PatternSet,
    overrides: "Mapping[str, int] | None",
    mask: int,
) -> Dict[str, int]:
    """The per-gate dict-walking interpreter (pre-kernel behaviour)."""
    values: Dict[str, int] = {}
    for name in circuit.inputs:
        values[name] = patterns.words[name]
    if overrides:
        for node, word in overrides.items():
            values[node] = word & mask
    for node in circuit.nodes:
        if node in values:
            continue
        gate = circuit.gates[node]
        operands = [values[src] for src in gate.inputs]
        values[node] = eval_packed(gate.gtype, operands, mask, gate.table)
    return values


def simulate_outputs(
    circuit: Circuit,
    patterns: PatternSet,
) -> Dict[str, int]:
    """Simulate and return only the primary output words."""
    values = simulate(circuit, patterns)
    return {node: values[node] for node in circuit.outputs}


def node_probabilities(
    circuit: Circuit,
    patterns: PatternSet,
    nodes: "Iterable[str] | None" = None,
    backend=None,
) -> Dict[str, float]:
    """Empirical 1-probability of nodes over a pattern set.

    This is the Monte-Carlo reference the paper calls ``P_SIM`` when applied
    to fault detection; for plain nodes it estimates the signal probability.
    """
    if patterns.n_patterns == 0:
        raise SimulationError("cannot estimate probabilities from 0 patterns")
    values = simulate(circuit, patterns, backend=backend)
    selected = list(nodes) if nodes is not None else list(circuit.nodes)
    return {
        node: values[node].bit_count() / patterns.n_patterns
        for node in selected
    }


def _check_inputs(circuit: Circuit, patterns: PatternSet) -> None:
    missing = [name for name in circuit.inputs if name not in patterns.words]
    if missing:
        raise SimulationError(
            f"pattern set lacks inputs {missing[:5]!r} of circuit "
            f"{circuit.name!r}"
        )
