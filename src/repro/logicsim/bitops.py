"""Packed-bit helpers for bit-parallel simulation.

Patterns are packed into arbitrary-precision Python integers: bit *j* of a
word is the value of the signal under pattern *j*.  Python's big-int bitwise
operators give portable, allocation-light SIMD over thousands of patterns
per word.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = [
    "mask_for",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "lowest_set_bit",
    "bit_slice",
]


def mask_for(n_patterns: int) -> int:
    """All-ones word of width ``n_patterns``."""
    if n_patterns < 0:
        raise ValueError("pattern count must be non-negative")
    return (1 << n_patterns) - 1


def pack_bits(bits: Iterable[int]) -> int:
    """Pack an iterable of 0/1 values; element *j* becomes bit *j*."""
    word = 0
    for j, bit in enumerate(bits):
        if bit not in (0, 1, False, True):
            raise ValueError(f"bit {j} is {bit!r}, expected 0 or 1")
        if bit:
            word |= 1 << j
    return word


def unpack_bits(word: int, n_patterns: int) -> List[int]:
    """Inverse of :func:`pack_bits`."""
    return [(word >> j) & 1 for j in range(n_patterns)]


def popcount(word: int) -> int:
    """Number of set bits."""
    return word.bit_count()


def lowest_set_bit(word: int) -> "int | None":
    """Index of the least significant set bit, or ``None`` if zero."""
    if word == 0:
        return None
    return (word & -word).bit_length() - 1


def bit_slice(word: int, start: int, stop: int) -> int:
    """Bits ``start..stop-1`` of ``word`` as a ``stop-start``-wide word."""
    if stop < start:
        raise ValueError("stop must be >= start")
    return (word >> start) & mask_for(stop - start)
