"""Pattern sets: generation and packed storage of input stimuli.

A :class:`PatternSet` stores, for every primary input, one packed word whose
bit *j* is the value applied by pattern *j*.  Constructors cover the three
sources PROTEST needs:

* :meth:`PatternSet.random` — independent Bernoulli stimuli, uniform or with
  per-input probabilities ("a tupel of boolean random variables T", §2);
* :meth:`PatternSet.exhaustive` — all ``2^n`` input combinations (used for
  exact references);
* :meth:`PatternSet.from_vectors` — explicit vectors.
"""

from __future__ import annotations

import random as _random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.logicsim.bitops import mask_for, pack_bits, unpack_bits

__all__ = ["PatternSet", "resolve_input_probs"]

#: Probability resolution used when quantizing to hardware weights (§6/§8
#: use multiples of 1/16).
DEFAULT_GRID = 16


def resolve_input_probs(
    inputs: Sequence[str],
    probs: "float | Mapping[str, float] | None",
) -> Dict[str, float]:
    """Normalize a probability specification to a complete per-input map.

    ``probs`` may be ``None`` (0.5 everywhere), a scalar, or a mapping that
    must cover every input.  Values must lie in [0, 1].
    """
    if probs is None:
        return {name: 0.5 for name in inputs}
    if isinstance(probs, (int, float)):
        value = float(probs)
        _check_prob("*", value)
        return {name: value for name in inputs}
    resolved = {}
    for name in inputs:
        if name not in probs:
            raise SimulationError(f"no probability given for input {name!r}")
        value = float(probs[name])
        _check_prob(name, value)
        resolved[name] = value
    return resolved


def _check_prob(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise SimulationError(
            f"probability for {name!r} is {value}, outside [0, 1]"
        )


class PatternSet:
    """A packed set of input patterns for a fixed input list."""

    def __init__(
        self,
        inputs: Sequence[str],
        n_patterns: int,
        words: Mapping[str, int],
    ) -> None:
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.n_patterns = int(n_patterns)
        if self.n_patterns < 0:
            raise SimulationError("pattern count must be non-negative")
        mask = mask_for(self.n_patterns)
        self.words: Dict[str, int] = {}
        for name in self.inputs:
            if name not in words:
                raise SimulationError(f"missing word for input {name!r}")
            self.words[name] = words[name] & mask
        self.mask = mask

    # -- constructors -----------------------------------------------------------

    @classmethod
    def random(
        cls,
        inputs: Sequence[str],
        n_patterns: int,
        probs: "float | Mapping[str, float] | None" = None,
        seed: "int | None" = None,
    ) -> "PatternSet":
        """Independent Bernoulli patterns with per-input 1-probabilities."""
        resolved = resolve_input_probs(inputs, probs)
        rng = _random.Random(seed)
        mask = mask_for(n_patterns)
        words: Dict[str, int] = {}
        for name in inputs:
            words[name] = _bernoulli_word(rng, n_patterns, resolved[name], mask)
        return cls(inputs, n_patterns, words)

    @classmethod
    def exhaustive(cls, inputs: Sequence[str]) -> "PatternSet":
        """All ``2^n`` combinations; input *i* toggles with period ``2^i``."""
        n = len(inputs)
        if n > 24:
            raise SimulationError(
                f"exhaustive set over {n} inputs would need 2^{n} patterns"
            )
        n_patterns = 1 << n
        words: Dict[str, int] = {}
        for i, name in enumerate(inputs):
            block = mask_for(1 << i) << (1 << i)
            period = 1 << (i + 1)
            word = 0
            for start in range(0, n_patterns, period):
                word |= block << start
            words[name] = word
        return cls(inputs, n_patterns, words)

    @classmethod
    def from_vectors(
        cls,
        inputs: Sequence[str],
        vectors: Iterable[Mapping[str, int]],
    ) -> "PatternSet":
        """Build from explicit per-pattern dictionaries."""
        rows = list(vectors)
        words = {name: 0 for name in inputs}
        for j, row in enumerate(rows):
            for name in inputs:
                try:
                    bit = row[name]
                except KeyError:
                    raise SimulationError(
                        f"pattern {j} does not assign input {name!r}"
                    ) from None
                if bit not in (0, 1):
                    raise SimulationError(
                        f"pattern {j} assigns {name!r}={bit!r}"
                    )
                if bit:
                    words[name] |= 1 << j
        return cls(inputs, len(rows), words)

    # -- access -------------------------------------------------------------------

    def vector(self, index: int) -> Dict[str, int]:
        """Pattern ``index`` as a name → 0/1 dictionary."""
        if not 0 <= index < self.n_patterns:
            raise SimulationError(
                f"pattern index {index} out of range 0..{self.n_patterns - 1}"
            )
        return {
            name: (self.words[name] >> index) & 1 for name in self.inputs
        }

    def vectors(self) -> List[Dict[str, int]]:
        """All patterns as dictionaries (for small sets / reports)."""
        return [self.vector(j) for j in range(self.n_patterns)]

    def observed_probabilities(self) -> Dict[str, float]:
        """Empirical 1-frequency of every input across the set."""
        if self.n_patterns == 0:
            return {name: 0.0 for name in self.inputs}
        return {
            name: self.words[name].bit_count() / self.n_patterns
            for name in self.inputs
        }

    def slice(self, start: int, stop: int) -> "PatternSet":
        """Patterns ``start..stop-1`` as a new set."""
        if not 0 <= start <= stop <= self.n_patterns:
            raise SimulationError(
                f"invalid slice {start}:{stop} of {self.n_patterns} patterns"
            )
        width = stop - start
        words = {
            name: (self.words[name] >> start) & mask_for(width)
            for name in self.inputs
        }
        return PatternSet(self.inputs, width, words)

    def concat(self, other: "PatternSet") -> "PatternSet":
        """Concatenate two pattern sets over the same inputs."""
        if other.inputs != self.inputs:
            raise SimulationError("pattern sets cover different inputs")
        words = {
            name: self.words[name]
            | (other.words[name] << self.n_patterns)
            for name in self.inputs
        }
        return PatternSet(self.inputs, self.n_patterns + other.n_patterns, words)

    def __len__(self) -> int:
        return self.n_patterns

    def __repr__(self) -> str:
        return f"PatternSet(inputs={len(self.inputs)}, patterns={self.n_patterns})"


def _bernoulli_word(
    rng: _random.Random, n_patterns: int, prob: float, mask: int
) -> int:
    """A packed word whose bits are i.i.d. Bernoulli(prob)."""
    if prob <= 0.0:
        return 0
    if prob >= 1.0:
        return mask
    if prob == 0.5:
        return rng.getrandbits(n_patterns) if n_patterns else 0
    # Bit-sliced comparison of a 53-bit uniform integer per position against
    # the probability threshold would need 53 random words; instead compose
    # the probability from its binary expansion: successively
    #   p = 0.b1 b2 b3 ...  ->  word = b1 ? (r | rest) : (r & rest)
    # which uses one random word per bit of resolution (24 bits here).
    resolution = 24
    threshold = round(prob * (1 << resolution))
    threshold = min(max(threshold, 0), 1 << resolution)
    if threshold == 0:
        return 0
    if threshold == 1 << resolution:
        return mask
    word = 0
    # Build from the least significant expansion bit upward.
    for level in range(resolution):
        bit = (threshold >> level) & 1
        rand = rng.getrandbits(n_patterns)
        if bit:
            word = rand | word
        else:
            word = rand & word
    return word & mask
