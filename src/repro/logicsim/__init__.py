"""Bit-parallel logic simulation and pattern generation."""

from repro.logicsim.bitops import (
    bit_slice,
    lowest_set_bit,
    mask_for,
    pack_bits,
    popcount,
    unpack_bits,
)
from repro.logicsim.patterns import PatternSet, resolve_input_probs
from repro.logicsim.simulator import (
    node_probabilities,
    simulate,
    simulate_outputs,
)

__all__ = [
    "PatternSet",
    "bit_slice",
    "lowest_set_bit",
    "mask_for",
    "node_probabilities",
    "pack_bits",
    "popcount",
    "resolve_input_probs",
    "simulate",
    "simulate_outputs",
    "unpack_bits",
]
