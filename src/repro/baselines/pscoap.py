"""The Agrawal-Mercer SCOAP-to-probability transform ("P_SCOAP").

Paper §4: "[AgMe82] transformed the results of the testability measure
SCOAP into values called P_SCOAP corresponding to the fault detection
probability … there is only a correlation 0.4 between P_SCOAP and P_SIM
even for pure combinational circuits."

The exact transform of [AgMe82] is not recoverable from the scan; we use
the natural reconstruction

    P_SCOAP(x s-a-v) = 2 ** (-alpha * (CC_{NOT v}(x) + CO(x) - 2))

— every unit of SCOAP "cost" halves the probability (``alpha = 1``); the
``-2`` normalizes the cheapest possible fault (CC = CO... = 1 each) to 1.
Any monotone transform tells the same story the bench reproduces: the
counting measure correlates far worse with simulated detection
probabilities than PROTEST's probabilistic estimate.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from repro.circuit.netlist import Circuit
from repro.faults.model import Fault, fault_universe
from repro.baselines.scoap import ScoapResult, scoap

__all__ = ["pscoap_detection_probabilities"]


def pscoap_detection_probabilities(
    circuit: Circuit,
    faults: "Iterable[Fault] | None" = None,
    alpha: float = 1.0,
    measures: "ScoapResult | None" = None,
) -> Dict[Fault, float]:
    """SCOAP-derived pseudo detection probability for every fault."""
    fault_list: List[Fault] = (
        list(faults) if faults is not None else fault_universe(circuit)
    )
    result = measures or scoap(circuit)
    out: Dict[Fault, float] = {}
    for fault in fault_list:
        if fault.pin is None:
            node = fault.node
            control = result.controllability(node, 1 - fault.value)
            observe = result.co[node]
        else:
            gate = circuit.gates[fault.node]
            node = gate.inputs[fault.pin]
            control = result.controllability(node, 1 - fault.value)
            observe = result.co_pin[(fault.node, fault.pin)]
        cost = control + observe - 2.0
        if math.isinf(cost):
            out[fault] = 0.0
        else:
            out[fault] = min(1.0, 2.0 ** (-alpha * max(cost, 0.0)))
    return out
