"""STAFAN — statistical fault analysis (Jain & Agrawal, DAC 1984).

The closest contemporary of PROTEST (paper §1): instead of propagating
probabilities analytically, STAFAN *extrapolates them from fault-free logic
simulation*.  From ``N`` sampled patterns it counts per line

* controllabilities ``C1 = ones/N``, ``C0 = 1 - C1``;
* per-pin sensitization frequencies (patterns in which toggling the pin
  would toggle the gate output — measured exactly, bit-parallel, as the
  per-pattern Boolean difference);

then propagates per-polarity observabilities ``B0/B1`` backwards
(``B(pin, v) = B(out) * P(sensitized and line = v) / P(line = v)``) and
estimates detection probabilities ``P(l s-a-0) = C1(l) * B1(l)``,
``P(l s-a-1) = C0(l) * B0(l)``.

Because its inputs are simulation counts, STAFAN needs patterns but no
structural probability analysis — the trade-off the paper positions
PROTEST against.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.circuit.netlist import Circuit, Pin
from repro.circuit.topology import Topology
from repro.circuit.types import eval_packed
from repro.errors import EstimationError
from repro.faults.model import Fault, fault_universe
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate

__all__ = ["StafanResult", "stafan", "stafan_detection_probabilities"]


@dataclasses.dataclass
class StafanResult:
    """Counted controllabilities and derived observabilities."""

    c1: Dict[str, float]
    b0: Dict[str, float]  #: stem 0-observability
    b1: Dict[str, float]  #: stem 1-observability
    b0_pin: Dict[Pin, float]
    b1_pin: Dict[Pin, float]
    n_patterns: int

    def c0(self, node: str) -> float:
        return 1.0 - self.c1[node]


def stafan(
    circuit: Circuit,
    patterns: PatternSet,
    stem_combine: str = "or",
) -> StafanResult:
    """Run fault-free simulation and derive the STAFAN measures.

    ``stem_combine`` is how branch observabilities merge at fan-out stems:
    ``"or"`` (``1 - prod(1 - B_i)``, the usual choice) or ``"max"``.
    """
    if patterns.n_patterns == 0:
        raise EstimationError("STAFAN needs at least one pattern")
    if stem_combine not in ("or", "max"):
        raise EstimationError(f"unknown stem_combine {stem_combine!r}")
    n = patterns.n_patterns
    mask = patterns.mask
    values = simulate(circuit, patterns)
    c1 = {node: values[node].bit_count() / n for node in circuit.nodes}

    # Per-pin sensitization words (exact per-pattern Boolean difference).
    sens: Dict[Pin, int] = {}
    for name, gate in circuit.gates.items():
        operands = [values[src] for src in gate.inputs]
        for pin in range(gate.arity):
            with_zero = list(operands)
            with_zero[pin] = 0
            with_one = list(operands)
            with_one[pin] = mask
            f0 = eval_packed(gate.gtype, with_zero, mask, gate.table)
            f1 = eval_packed(gate.gtype, with_one, mask, gate.table)
            sens[(name, pin)] = f0 ^ f1

    topology = Topology(circuit)
    b0: Dict[str, float] = {}
    b1: Dict[str, float] = {}
    b0_pin: Dict[Pin, float] = {}
    b1_pin: Dict[Pin, float] = {}
    for node in reversed(circuit.nodes):
        zero_branches: List[float] = []
        one_branches: List[float] = []
        if circuit.is_output(node):
            zero_branches.append(1.0)
            one_branches.append(1.0)
        for gate_name, pin in topology.branches[node]:
            zero_branches.append(b0_pin[(gate_name, pin)])
            one_branches.append(b1_pin[(gate_name, pin)])
        b0[node] = _combine(zero_branches, stem_combine)
        b1[node] = _combine(one_branches, stem_combine)
        if circuit.is_input(node):
            continue
        gate = circuit.gates[node]
        for pin, src in enumerate(gate.inputs):
            word = values[src]
            sens_word = sens[(node, pin)]
            ones = word.bit_count()
            zeros = n - ones
            sens_one = (sens_word & word).bit_count()
            sens_zero = (sens_word & (word ^ mask)).bit_count()
            b1_pin[(node, pin)] = (
                b1[node] * (sens_one / ones) if ones else 0.0
            )
            b0_pin[(node, pin)] = (
                b0[node] * (sens_zero / zeros) if zeros else 0.0
            )
    return StafanResult(c1, b0, b1, b0_pin, b1_pin, n)


def _combine(branches: List[float], mode: str) -> float:
    if not branches:
        return 0.0
    if mode == "max":
        return max(branches)
    miss = 1.0
    for b in branches:
        miss *= 1.0 - b
    return 1.0 - miss


def stafan_detection_probabilities(
    circuit: Circuit,
    patterns: PatternSet,
    faults: "Iterable[Fault] | None" = None,
    stem_combine: str = "or",
    measures: "StafanResult | None" = None,
) -> Dict[Fault, float]:
    """STAFAN detection probability estimates for a fault list."""
    fault_list: List[Fault] = (
        list(faults) if faults is not None else fault_universe(circuit)
    )
    result = measures or stafan(circuit, patterns, stem_combine)
    out: Dict[Fault, float] = {}
    for fault in fault_list:
        if fault.pin is None:
            node = fault.node
            if fault.value == 0:
                out[fault] = result.c1[node] * result.b1[node]
            else:
                out[fault] = result.c0(node) * result.b0[node]
        else:
            gate = circuit.gates[fault.node]
            src = gate.inputs[fault.pin]
            pin_key = (fault.node, fault.pin)
            if fault.value == 0:
                out[fault] = result.c1[src] * result.b1_pin[pin_key]
            else:
                out[fault] = result.c0(src) * result.b0_pin[pin_key]
    return out
