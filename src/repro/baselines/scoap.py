"""SCOAP testability measures (Goldstein 1979).

The deterministic counting measure the paper's §4 compares against: for
every node the 0/1-controllabilities ``CC0``/``CC1`` (minimum number of
node assignments to force the value) and for every node/pin the
observability ``CO`` (assignments to propagate it to an output).

Unbounded values (e.g. controlling a constant to its impossible value) are
``math.inf``.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Dict, List, Mapping, Tuple

from repro.circuit.netlist import Circuit, Pin
from repro.circuit.topology import Topology
from repro.circuit.types import GateType, eval_bool
from repro.errors import EstimationError

__all__ = ["ScoapResult", "scoap"]

INF = math.inf


@dataclasses.dataclass
class ScoapResult:
    """SCOAP controllabilities and observabilities of a circuit."""

    cc0: Dict[str, float]
    cc1: Dict[str, float]
    co: Dict[str, float]  #: stem observability per node
    co_pin: Dict[Pin, float]  #: observability per gate input pin

    def controllability(self, node: str, value: int) -> float:
        return self.cc1[node] if value else self.cc0[node]


def scoap(circuit: Circuit) -> ScoapResult:
    """Compute combinational SCOAP for every node and pin."""
    cc0: Dict[str, float] = {}
    cc1: Dict[str, float] = {}
    for node in circuit.nodes:
        if circuit.is_input(node):
            cc0[node] = 1.0
            cc1[node] = 1.0
            continue
        gate = circuit.gates[node]
        zero, one = _gate_controllability(gate.gtype, gate, cc0, cc1)
        cc0[node] = zero
        cc1[node] = one

    topology = Topology(circuit)
    co: Dict[str, float] = {}
    co_pin: Dict[Pin, float] = {}
    for node in reversed(circuit.nodes):
        best = 0.0 if circuit.is_output(node) else INF
        for gate_name, pin in topology.branches[node]:
            best = min(best, co_pin[(gate_name, pin)])
        co[node] = best
        if circuit.is_input(node):
            continue
        gate = circuit.gates[node]
        for pin in range(gate.arity):
            co_pin[(node, pin)] = _pin_observability(
                gate, pin, co[node], cc0, cc1
            )
    return ScoapResult(cc0, cc1, co, co_pin)


def _gate_controllability(
    gtype: GateType,
    gate,
    cc0: Mapping[str, float],
    cc1: Mapping[str, float],
) -> Tuple[float, float]:
    ins = gate.inputs
    if gtype is GateType.AND:
        return (
            min(cc0[i] for i in ins) + 1.0,
            sum(cc1[i] for i in ins) + 1.0,
        )
    if gtype is GateType.OR:
        return (
            sum(cc0[i] for i in ins) + 1.0,
            min(cc1[i] for i in ins) + 1.0,
        )
    if gtype is GateType.NAND:
        return (
            sum(cc1[i] for i in ins) + 1.0,
            min(cc0[i] for i in ins) + 1.0,
        )
    if gtype is GateType.NOR:
        return (
            min(cc1[i] for i in ins) + 1.0,
            sum(cc0[i] for i in ins) + 1.0,
        )
    if gtype is GateType.NOT:
        return cc1[ins[0]] + 1.0, cc0[ins[0]] + 1.0
    if gtype is GateType.BUF:
        return cc0[ins[0]] + 1.0, cc1[ins[0]] + 1.0
    if gtype is GateType.CONST0:
        return 1.0, INF
    if gtype is GateType.CONST1:
        return INF, 1.0
    # XOR / XNOR / LUT: minimize the assignment cost over the truth table.
    zero = INF
    one = INF
    for assignment in range(1 << len(ins)):
        cost = 0.0
        operands: List[int] = []
        for i, src in enumerate(ins):
            bit = (assignment >> i) & 1
            operands.append(bit)
            cost += cc1[src] if bit else cc0[src]
        value = eval_bool(gtype, operands, gate.table)
        if value:
            one = min(one, cost + 1.0)
        else:
            zero = min(zero, cost + 1.0)
    return zero, one


def _pin_observability(
    gate,
    pin: int,
    out_co: float,
    cc0: Mapping[str, float],
    cc1: Mapping[str, float],
) -> float:
    """min cost of side assignments that sensitize the pin, plus CO(out)."""
    ins = gate.inputs
    gtype = gate.gtype
    if gtype in (GateType.NOT, GateType.BUF):
        return out_co + 1.0
    if gtype in (GateType.CONST0, GateType.CONST1):
        return INF
    if gtype in (GateType.AND, GateType.NAND):
        side = sum(cc1[src] for i, src in enumerate(ins) if i != pin)
        return out_co + side + 1.0
    if gtype in (GateType.OR, GateType.NOR):
        side = sum(cc0[src] for i, src in enumerate(ins) if i != pin)
        return out_co + side + 1.0
    # XOR / XNOR / LUT: cheapest sensitizing side assignment.
    side_pins = [i for i in range(len(ins)) if i != pin]
    best = INF
    for assignment in itertools.product((0, 1), repeat=len(side_pins)):
        operands = [0] * len(ins)
        cost = 0.0
        for bit, i in zip(assignment, side_pins):
            operands[i] = bit
            cost += cc1[ins[i]] if bit else cc0[ins[i]]
        operands[pin] = 0
        f0 = eval_bool(gtype, operands, gate.table)
        operands[pin] = 1
        f1 = eval_bool(gtype, operands, gate.table)
        if f0 != f1:
            best = min(best, cost + 1.0)
    return out_co + best if best < INF else INF
