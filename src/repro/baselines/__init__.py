"""Baseline testability measures PROTEST is compared against (paper §1/§4)."""

from repro.baselines.pscoap import pscoap_detection_probabilities
from repro.baselines.scoap import ScoapResult, scoap
from repro.baselines.stafan import (
    StafanResult,
    stafan,
    stafan_detection_probabilities,
)

__all__ = [
    "ScoapResult",
    "StafanResult",
    "pscoap_detection_probabilities",
    "scoap",
    "stafan",
    "stafan_detection_probabilities",
]
