"""Exception hierarchy for the PROTEST reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library."""


class CircuitError(ReproError):
    """Raised for malformed circuit structures (duplicate nodes, cycles...)."""


class ParseError(ReproError):
    """Raised when a netlist description cannot be parsed.

    Attributes
    ----------
    line:
        1-based line number of the offending input line, when known.
    """

    def __init__(self, message: str, line: "int | None" = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ValidationError(CircuitError):
    """Raised when a structurally complete circuit violates an invariant."""


class SimulationError(ReproError):
    """Raised for inconsistent simulation requests (pattern mismatch...)."""


class BackendError(ReproError):
    """Raised for unknown, unavailable or misconfigured eval backends."""


class EstimationError(ReproError):
    """Raised for invalid probability-estimation requests."""


class OptimizationError(ReproError):
    """Raised when input-probability optimization is asked the impossible."""


class ServiceError(ReproError):
    """Raised for invalid requests to the analysis service (:mod:`repro.service`)."""


class JobCancelled(ServiceError):
    """Raised inside a worker when its job's cancellation flag is set.

    Progressive (sampled) jobs observe the flag at every block-boundary
    checkpoint; the exception aborts the sampling loop without caching a
    partial result.
    """


class JobTimeout(ServiceError):
    """Raised inside a worker when its job exceeds its wall-clock budget."""
