"""Exception hierarchy for the PROTEST reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the :mod:`repro` library.

    Every error carries a ``transient`` flag — the error taxonomy the
    resilience layer (:mod:`repro.resilience`) keys its retry policy
    on.  Transient errors (a crashed worker, an injected fault marked
    retryable) are safe to retry because re-running the same
    deterministic computation can succeed; permanent errors (a parse
    error, an exceeded wall-clock budget) would fail identically on
    every attempt and are surfaced immediately.
    """

    #: Whether retrying the failed operation can succeed.  Class-level
    #: default; instances may override (``error.transient = True``).
    transient = False


class CircuitError(ReproError):
    """Raised for malformed circuit structures (duplicate nodes, cycles...)."""


class ParseError(ReproError):
    """Raised when a netlist description cannot be parsed.

    Attributes
    ----------
    line:
        1-based line number of the offending input line, when known.
    """

    def __init__(self, message: str, line: "int | None" = None) -> None:
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class ValidationError(CircuitError):
    """Raised when a structurally complete circuit violates an invariant."""


class SimulationError(ReproError):
    """Raised for inconsistent simulation requests (pattern mismatch...)."""


class BackendError(ReproError):
    """Raised for unknown, unavailable or misconfigured eval backends."""


class BackendFailure(BackendError):
    """Raised when an evaluation backend fails *mid-run*.

    Distinct from :class:`BackendError` (a selection/configuration
    problem caught before any work runs): a ``BackendFailure`` means an
    engine that had been producing blocks raised during evaluation —
    numpy import breakage, a third-party engine bug, an injected chaos
    fault.  The Monte-Carlo estimator degrades to the ``"python"``
    engine at the next block boundary when it can
    (:meth:`MonteCarloEstimator.sample_detection_probabilities`); this
    exception surfaces only when no fallback is possible, and retrying
    the same deterministic block would fail identically — permanent.
    """


class EstimationError(ReproError):
    """Raised for invalid probability-estimation requests."""


class OptimizationError(ReproError):
    """Raised when input-probability optimization is asked the impossible."""


class ServiceError(ReproError):
    """Raised for invalid requests to the analysis service (:mod:`repro.service`)."""


class JobCancelled(ServiceError):
    """Raised inside a worker when its job's cancellation flag is set.

    Progressive (sampled) jobs observe the flag at every block-boundary
    checkpoint; the exception aborts the sampling loop without caching a
    partial result.
    """


class JobTimeout(ServiceError):
    """Raised inside a worker when its job exceeds its wall-clock budget.

    Permanent by taxonomy: the budget is per *attempt*, so a retry of
    the same work under the same budget would time out again.
    """


class WorkerCrashed(ServiceError):
    """Raised (synthetically) when a worker dies executing a job.

    The job manager detects a dead worker thread — or a broken process
    pool underneath a sweep — replenishes the pool slot, and raises
    this on the orphaned job's behalf.  Transient: the crash is a
    property of the worker, not of the job, so the retry policy
    re-enqueues the job with backoff up to its attempt budget.
    """

    transient = True


class QueueFull(ServiceError):
    """Raised when job admission is refused because the queue is at bound.

    Carries ``retry_after`` (seconds), which the HTTP layer forwards as
    a ``Retry-After`` header on the ``429`` response.  Transient by
    nature — the client should back off and resubmit.
    """

    transient = True

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        self.retry_after = retry_after
        super().__init__(message)


class ResilienceError(ReproError):
    """Raised for invalid resume state or journal/checkpoint mismatches."""


class InjectedFault(ReproError):
    """The chaos harness's default injected exception.

    ``transient`` is set per injection rule, so tests can exercise both
    the retry path (transient) and the fail-fast path (permanent) of
    the same seam.
    """

    def __init__(self, message: str, transient: bool = False) -> None:
        self.transient = transient
        super().__init__(message)
