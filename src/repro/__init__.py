"""repro — a reproduction of PROTEST (Wunderlich, DAC 1985).

Probabilistic testability analysis for combinational circuits: signal
probability estimation, fault detection probability estimation, random test
length computation and optimization of input signal probabilities, validated
by fault simulation.

Quick start — the :mod:`repro.api` layer is the stable public surface::

    from repro.api import AnalysisEngine, ProtestConfig, run_sweep
    from repro.circuits import sn74181

    engine = AnalysisEngine(sn74181(), ProtestConfig.preset("paper"))
    report = engine.analyze()              # estimates every stage once
    n = engine.test_length(0.98, 0.98)     # cache hit on the same stages
    print(report.to_json(indent=2))        # serializable, with provenance

    # Batch workloads: many circuits x many configs in one call.
    sweep = run_sweep(["alu", "div", "comp8"], ["paper", "fast"], workers=4)

The legacy ``Protest`` facade remains available as a thin shim over the
engine (same signatures, now cached).
"""

__version__ = "1.1.0"

from repro.errors import (
    CircuitError,
    EstimationError,
    OptimizationError,
    ParseError,
    ReproError,
    SimulationError,
    ValidationError,
)

__all__ = [
    "AnalysisEngine",
    "CircuitError",
    "EstimationError",
    "OptimizationError",
    "ParseError",
    "Protest",
    "ProtestConfig",
    "ReproError",
    "SimulationError",
    "ValidationError",
    "__version__",
    "run_sweep",
]

#: Public names resolved lazily to keep ``import repro`` cheap and avoid
#: import cycles.
_LAZY_ATTRS = {
    "Protest": ("repro.protest", "Protest"),
    "AnalysisEngine": ("repro.api.engine", "AnalysisEngine"),
    "ProtestConfig": ("repro.api.config", "ProtestConfig"),
    "run_sweep": ("repro.api.sweep", "run_sweep"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
