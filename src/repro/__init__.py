"""repro — a reproduction of PROTEST (Wunderlich, DAC 1985).

Probabilistic testability analysis for combinational circuits: signal
probability estimation, fault detection probability estimation, random test
length computation and optimization of input signal probabilities, validated
by fault simulation.

Quick start::

    from repro import Protest
    from repro.circuits import sn74181

    tool = Protest(sn74181())
    probs = tool.signal_probabilities()
    detect = tool.detection_probabilities()
    n = tool.test_length(confidence=0.98, fraction=0.98)
"""

__version__ = "1.0.0"

from repro.errors import (
    CircuitError,
    EstimationError,
    OptimizationError,
    ParseError,
    ReproError,
    SimulationError,
    ValidationError,
)

__all__ = [
    "CircuitError",
    "EstimationError",
    "OptimizationError",
    "ParseError",
    "Protest",
    "ReproError",
    "SimulationError",
    "ValidationError",
    "__version__",
]


def __getattr__(name):
    # Lazy import to keep ``import repro`` cheap and avoid import cycles.
    if name == "Protest":
        from repro.protest import Protest

        return Protest
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
