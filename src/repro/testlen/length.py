"""Random test length computation (paper §5, formula (3)).

Under the independence assumption, ``N`` random patterns detect all faults
of ``F`` with probability

    P_F(N) = prod over f in F of (1 - (1 - P_f)^N)       (3)

PROTEST answers two questions built on (3):

* the probability that a given pattern count reaches full coverage
  (:func:`all_detected_probability`), and
* the smallest ``N`` reaching a required confidence ``e``, optionally for
  only the easiest ``d*100 %`` of the faults
  (:func:`required_test_length`) — the quantity of Tables 2, 3 and 5.

All products are evaluated in log space so the astronomically small
probabilities of random-pattern-resistant circuits (COMP needs ~10^8
patterns) stay representable.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import EstimationError

__all__ = [
    "all_detected_probability",
    "log_all_detected_probability",
    "required_test_length",
    "select_easiest_fraction",
    "expected_coverage",
]


def select_easiest_fraction(
    probabilities: Sequence[float], fraction: float
) -> List[float]:
    """The ``d*100 %`` faults with the *highest* detection probability.

    ``fraction=1.0`` keeps everything.  The paper's ``F_d`` (§5).
    """
    if not 0.0 < fraction <= 1.0:
        raise EstimationError(f"fraction must be in (0, 1], got {fraction}")
    if fraction == 1.0:
        return list(probabilities)
    keep = int(math.floor(fraction * len(probabilities) + 1e-9))
    keep = max(keep, 1)
    ranked = sorted(probabilities, reverse=True)
    return ranked[:keep]


def log_all_detected_probability(
    probabilities: Iterable[float], n_patterns: int
) -> float:
    """``log P_F(N)`` of formula (3); ``-inf`` when any fault is undetectable."""
    if n_patterns < 0:
        raise EstimationError("pattern count must be non-negative")
    total = 0.0
    for p in probabilities:
        if p >= 1.0:
            continue
        if p <= 0.0 or n_patterns == 0:
            return -math.inf
        log_miss = n_patterns * math.log1p(-p)  # log (1-p)^N
        miss = -math.expm1(log_miss)  # 1 - (1-p)^N, accurately
        if miss <= 0.0:
            return -math.inf
        total += math.log(miss)
    return total


def all_detected_probability(
    probabilities: Iterable[float], n_patterns: int
) -> float:
    """``P_F(N)`` of formula (3)."""
    return math.exp(log_all_detected_probability(probabilities, n_patterns))


def required_test_length(
    probabilities: Sequence[float],
    confidence: float,
    fraction: float = 1.0,
    max_length: int = 1 << 62,
) -> int:
    """Smallest ``N`` with ``P_{F_d}(N) >= confidence`` (Tables 2/3/5).

    Raises :class:`~repro.errors.EstimationError` when the kept fault set
    contains an undetectable fault (``P_f = 0``) — no finite test reaches
    the confidence then — or when ``N`` would exceed ``max_length``.
    """
    if not 0.0 < confidence < 1.0:
        raise EstimationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    kept = select_easiest_fraction(probabilities, fraction)
    kept = [p for p in kept if p < 1.0]
    if not kept:
        return 0
    if min(kept) <= 0.0:
        raise EstimationError(
            "fault set contains undetectable faults (P_f = 0); "
            "use fraction < 1 to exclude them"
        )
    target = math.log(confidence)
    # Precompute log(1-p) once: every binary-search probe then costs one
    # multiply + expm1 + log per fault instead of re-deriving the miss
    # logs.  Numerically identical to log_all_detected_probability.
    log_miss_per_pattern = [math.log1p(-p) for p in kept]
    log = math.log
    expm1 = math.expm1

    def enough(n: int) -> bool:
        total = 0.0
        for lm in log_miss_per_pattern:
            miss = -expm1(n * lm)
            if miss <= 0.0:
                return False
            total += log(miss)
        return total >= target

    low, high = 0, 1
    while not enough(high):
        high *= 2
        if high > max_length:
            raise EstimationError(
                f"required test length exceeds {max_length}"
            )
    while high - low > 1:
        mid = (low + high) // 2
        if enough(mid):
            high = mid
        else:
            low = mid
    return high


def expected_coverage(
    probabilities: Sequence[float], n_patterns: int
) -> float:
    """Expected fault coverage ``mean_f (1 - (1-P_f)^N)`` after N patterns."""
    if not probabilities:
        return 0.0
    total = 0.0
    for p in probabilities:
        if p >= 1.0:
            total += 1.0
        elif p > 0.0 and n_patterns > 0:
            total += -math.expm1(n_patterns * math.log1p(-p))
    return total / len(probabilities)
