"""Random-pattern test length mathematics (formula (3) of the paper)."""

from repro.testlen.length import (
    all_detected_probability,
    expected_coverage,
    log_all_detected_probability,
    required_test_length,
    select_easiest_fraction,
)

__all__ = [
    "all_detected_probability",
    "expected_coverage",
    "log_all_detected_probability",
    "required_test_length",
    "select_easiest_fraction",
]
