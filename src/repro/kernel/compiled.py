"""The levelized flat-array circuit kernel.

:class:`CompiledCircuit` lowers a :class:`~repro.circuit.netlist.Circuit`
once into flat integer arrays — a topologically ordered node table,
an opcode array, CSR-style operand index arrays, input/output index maps
— plus per-gate evaluation plans whose functions were selected from the
dispatch tables of :mod:`repro.kernel.ops` at compile time.  The hot
loops of the library (true-value simulation, fault-cone re-evaluation,
conditional tree-rule evaluation) then run over dense lists indexed by
small integers instead of walking the netlist through per-gate dict
lookups and ``GateType`` if-chains.

**Compile-once contract.**  A :class:`Circuit` is immutable, so its
compiled form is too: :func:`compile_circuit` memoizes one
``CompiledCircuit`` per circuit *object* (weakly, so circuits can still
be garbage collected) and every subsystem — ``logicsim.simulate``, the
``FaultSimulator``, the estimator's ``ConditionalEvaluator`` and the
``AnalysisEngine`` — shares that single artifact.  The artifact itself
only ever grows caches (fan-out cone slices, computed lazily per node);
evaluation never mutates it, so one compiled circuit can be shared by
concurrent threads as long as each evaluator owns its scratch arrays.

Fan-out cones are the fault-simulation primitive: for a fault site the
compiled circuit hands out the topologically sorted slice of evaluation
plan entries covering the site's transitive fan-out, so injecting a
fault becomes "re-evaluate this precomputed slice with one override"
instead of per-fault heap-driven scheduling.
"""

from __future__ import annotations

import weakref
from array import array
from time import perf_counter
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.types import PACKED_DISPATCH
from repro.kernel.ops import OP_CODES, OP_INPUT, float_op, overlay_op, packed_op
from repro.telemetry.profiling import active_profiler

__all__ = ["CompiledCircuit", "compile_circuit", "compiled_artifacts"]

#: opcode int -> lower-case gate-class name (for profile attribution).
_OPCODE_NAMES: Dict[int, str] = {
    code: gtype.name.lower() for gtype, code in OP_CODES.items()
}


class CompiledCircuit:
    """Flat-array form of one circuit (see the module docstring).

    Attributes
    ----------
    names:
        All node names in topological order (primary inputs first) —
        the compiled node index of a node is its position here.
    index:
        Inverse map ``name -> compiled index``.
    opcodes:
        One small-int opcode per node (``ops.OP_INPUT`` for inputs,
        ``ops.OP_CODES[gtype]`` for gates), as a flat ``array('i')``.
    arg_start / arg_flat:
        CSR-style operand arrays: the operand indices of node ``i`` are
        ``arg_flat[arg_start[i]:arg_start[i + 1]]``.
    tables:
        Per-node LUT truth table (0 for non-LUT nodes).
    input_index / output_index:
        Compiled indices of the primary inputs / outputs, in declaration
        order.
    """

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        names: Tuple[str, ...] = circuit.nodes
        self.names = names
        self.index: Dict[str, int] = {n: i for i, n in enumerate(names)}
        self.n_nodes = len(names)
        self.n_inputs = len(circuit.inputs)
        self.n_gates = circuit.n_gates
        self.input_index: Tuple[int, ...] = tuple(
            self.index[n] for n in circuit.inputs
        )
        self.output_index: Tuple[int, ...] = tuple(
            self.index[n] for n in circuit.outputs
        )
        out_set = frozenset(circuit.outputs)
        self.is_output: Tuple[bool, ...] = tuple(n in out_set for n in names)

        gates = circuit.gates
        opcodes = array("i")
        arg_start = array("i", [0])
        arg_flat = array("i")
        tables: List[int] = []
        args_of: List[Tuple[int, ...]] = []
        # Per-gate plan entries, topo order.  ``plan`` drives full
        # evaluation; ``overlay`` / ``float`` entries are referenced by the
        # cone slices.
        plan: List[tuple] = []
        overlay_entry: List[Optional[tuple]] = [None] * self.n_nodes
        float_entry: List[Optional[tuple]] = [None] * self.n_nodes
        direct_fn: List[Optional[object]] = [None] * self.n_nodes
        consumers: List[List[int]] = [[] for _ in names]
        for i, name in enumerate(names):
            gate = gates.get(name)
            if gate is None:
                opcodes.append(OP_INPUT)
                tables.append(0)
                args_of.append(())
                arg_start.append(len(arg_flat))
                continue
            args = tuple(self.index[src] for src in gate.inputs)
            opcodes.append(OP_CODES[gate.gtype])
            tables.append(gate.table)
            args_of.append(args)
            arg_flat.extend(args)
            arg_start.append(len(arg_flat))
            for a in args:
                consumers[a].append(i)
            arity = len(args)
            plan.append((i, packed_op(gate.gtype, arity), args, gate.table))
            overlay_entry[i] = (
                i,
                overlay_op(gate.gtype, arity),
                args,
                gate.table,
                self.is_output[i],
            )
            float_entry[i] = (i, float_op(gate.gtype, arity), args, gate.table)
            direct_fn[i] = PACKED_DISPATCH[gate.gtype]
        self.opcodes = opcodes
        self.arg_start = arg_start
        self.arg_flat = arg_flat
        self.tables = tables
        self.args_of = args_of
        self.plan: Tuple[tuple, ...] = tuple(plan)
        self.overlay_entry = overlay_entry
        self.float_entry = float_entry
        self.direct_fn = direct_fn
        self.consumers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(c) for c in consumers
        )
        self._cone_cache: Dict[int, Tuple[int, ...]] = {}
        self._cone_entry_cache: Dict[int, Tuple[tuple, ...]] = {}
        self._cone_cache_elems = 0
        self._cone_entry_elems = 0
        # Cone-cache observability (plain ints: the cone paths are hot
        # and must not touch telemetry objects).  Surfaced through
        # :meth:`cache_info`, ``engine.cache_info()`` and /metrics.
        self.cone_hits = 0
        self.cone_misses = 0
        self.cone_evictions = 0
        self._node_bit: Optional[List[int]] = None
        self._consumer_bits: Optional[List[int]] = None
        self._levels: Optional[List[int]] = None
        self._profile_keys: Optional[List[Tuple[str, str, str]]] = None

    # -- evaluation ---------------------------------------------------------------

    def eval_packed_words(
        self,
        words: Mapping[str, int],
        mask: int,
        overrides: "Mapping[str, int] | None" = None,
    ) -> List[int]:
        """Evaluate every node over packed pattern words.

        ``words`` maps primary input names to packed words; the result is
        the flat value array (index = compiled node index).  ``overrides``
        pin nodes to fixed packed words; overridden gates are not
        evaluated (stem fault injection semantics).
        """
        values = [0] * self.n_nodes
        names = self.names
        for i in self.input_index:
            values[i] = words[names[i]] & mask
        if not overrides:
            profiler = active_profiler()
            if profiler is not None and profiler.kernel_detail:
                return self._eval_packed_profiled(values, mask, profiler)
            for i, fn, args, table in self.plan:
                values[i] = fn(values, args, mask, table)
            return values
        forced = {self.index[node]: word & mask
                  for node, word in overrides.items()}
        for i, word in forced.items():
            values[i] = word
        for entry in self.plan:
            i = entry[0]
            if i in forced:
                continue
            values[i] = entry[1](values, entry[2], mask, entry[3])
        return values

    def _eval_packed_profiled(
        self, values: List[int], mask: int, profiler
    ) -> List[int]:
        """The plan-interpreter loop with per-entry attribution.

        Chosen by :meth:`eval_packed_words` only while a profiler with
        ``kernel_detail`` is active: two clock reads per gate, durations
        binned by (level, opcode class) and merged into the profiler
        under the current phase stack in one locked call.
        """
        keys = self._profile_keys
        if keys is None:
            levels = self.levels
            keys = [
                ("kernel", f"level{levels[i]:03d}",
                 _OPCODE_NAMES.get(self.opcodes[i], "op?"))
                for i, _fn, _args, _table in self.plan
            ]
            self._profile_keys = keys
        bins: Dict[tuple, List[float]] = {}
        for k, (i, fn, args, table) in enumerate(self.plan):
            t0 = perf_counter()
            values[i] = fn(values, args, mask, table)
            dt = perf_counter() - t0
            cell = bins.get(keys[k])
            if cell is None:
                bins[keys[k]] = [dt, 1]
            else:
                cell[0] += dt
                cell[1] += 1
        profiler.add_many(bins)
        return values

    def values_as_dict(self, values: Sequence[int]) -> Dict[str, int]:
        """Flat value array -> ``{node name: value}`` mapping."""
        return dict(zip(self.names, values))

    def values_from_dict(self, mapping: Mapping[str, int]) -> List[int]:
        """``{node name: value}`` mapping -> flat value array."""
        return [mapping[name] for name in self.names]

    # -- fan-out cone slices --------------------------------------------------------

    #: Soft cap on the total number of elements held across each cone
    #: cache.  On small circuits every cone fits (the caches behave as
    #: before); on 10k+-gate netlists, where every fault site queries its
    #: cone and full retention costs hundreds of MB, the oldest slices
    #: are evicted FIFO and recomputed on demand.
    cone_cache_budget = 2_000_000

    def _cache_put(self, cache: Dict[int, tuple], key: int, value: tuple,
                   counter: str) -> None:
        cache[key] = value
        total = getattr(self, counter) + len(value)
        while total > self.cone_cache_budget and len(cache) > 1:
            old_key = next(iter(cache))
            if old_key == key:
                break
            total -= len(cache.pop(old_key))
            self.cone_evictions += 1
        setattr(self, counter, total)

    def cache_info(self) -> Dict[str, int]:
        """Cone-cache counters: occupancy and churn against the budget.

        ``resident_elems`` is the total element count across both cone
        caches — the quantity :attr:`cone_cache_budget` bounds;
        ``evictions`` counts slices dropped (and later recomputed on
        demand) once the budget was exceeded.
        """
        return {
            "hits": self.cone_hits,
            "misses": self.cone_misses,
            "evictions": self.cone_evictions,
            "resident_elems": self._cone_cache_elems + self._cone_entry_elems,
            "resident_slices": len(self._cone_cache)
            + len(self._cone_entry_cache),
            "budget_elems": self.cone_cache_budget,
        }

    def cone(self, idx: int) -> Tuple[int, ...]:
        """Gate indices in the transitive fan-out of node ``idx``.

        Excludes ``idx`` itself; sorted ascending, which *is* topological
        order because compiled indices follow the levelized node table.
        Cached on the compiled artifact under a total-size budget.
        """
        cached = self._cone_cache.get(idx)
        if cached is not None:
            self.cone_hits += 1
            return cached
        self.cone_misses += 1
        seen = set()
        stack = list(self.consumers[idx])
        while stack:
            i = stack.pop()
            if i in seen:
                continue
            seen.add(i)
            stack.extend(self.consumers[i])
        cone = tuple(sorted(seen))
        self._cache_put(self._cone_cache, idx, cone, "_cone_cache_elems")
        return cone

    def cone_entries(self, idx: int) -> Tuple[tuple, ...]:
        """Overlay plan entries of :meth:`cone`, ready to interpret."""
        cached = self._cone_entry_cache.get(idx)
        if cached is not None:
            self.cone_hits += 1
            return cached
        self.cone_misses += 1
        overlay = self.overlay_entry
        entries = tuple(overlay[i] for i in self.cone(idx))
        self._cache_put(
            self._cone_entry_cache, idx, entries, "_cone_entry_elems"
        )
        return entries

    # -- levelization ---------------------------------------------------------------

    @property
    def levels(self) -> List[int]:
        """Logic depth per node: inputs 0, gates ``1 + max(arg levels)``.

        Computed lazily in one plan walk (the plan is topologically
        ordered); used by the phase profiler to bin gate-evaluation time
        by level.
        """
        if self._levels is None:
            levels = [0] * self.n_nodes
            for i, _fn, args, _table in self.plan:
                levels[i] = 1 + max((levels[a] for a in args), default=0)
            self._levels = levels
        return self._levels

    # -- node/consumer bitsets -------------------------------------------------------

    @property
    def node_bit(self) -> List[int]:
        """``1 << i`` per node — the bitset alphabet of the pending queue."""
        if self._node_bit is None:
            self._node_bit = [1 << i for i in range(self.n_nodes)]
        return self._node_bit

    @property
    def consumer_bits(self) -> List[int]:
        """Per node, the bitset of its consumer gate indices.

        ``pending |= consumer_bits[i]`` schedules every consumer of a
        changed node in one big-int OR; popping the lowest set bit of
        ``pending`` yields the next gate in topological order (compiled
        indices are levelized), so a difference region is propagated
        without a heap and without revisiting nodes.
        """
        if self._consumer_bits is None:
            bits = [0] * self.n_nodes
            for i, args in enumerate(self.args_of):
                for a in args:
                    bits[a] |= 1 << i
            self._consumer_bits = bits
        return self._consumer_bits


_COMPILE_CACHE: "weakref.WeakKeyDictionary[Circuit, Dict[str, CompiledCircuit]]" = (
    weakref.WeakKeyDictionary()
)


def compile_circuit(circuit: Circuit, backend=None) -> CompiledCircuit:
    """The memoized compiled form of ``circuit`` (compile-once contract).

    The cache key includes the *backend identity* (``"name#generation"``,
    see :func:`repro.backends.backend_identity`): every subsystem
    evaluating through one backend shares one artifact, while an
    artifact compiled before a backend was replaced can never serve the
    replacement stale compile-time dispatch state — re-registering a
    backend bumps its generation, which maps to a fresh compile here.
    ``backend=None`` keys on the current default ("python") backend.
    """
    from repro.backends import backend_identity

    identity = backend_identity(backend)
    per_circuit = _COMPILE_CACHE.get(circuit)
    if per_circuit is None:
        per_circuit = {}
        _COMPILE_CACHE[circuit] = per_circuit
    compiled = per_circuit.get(identity)
    if compiled is None:
        compiled = CompiledCircuit(circuit)
        per_circuit[identity] = compiled
    return compiled


def compiled_artifacts(circuit: Circuit) -> List[CompiledCircuit]:
    """Every live compiled artifact of ``circuit`` (one per backend
    identity) — lets observability aggregate cone-cache counters across
    the analytic and word-backend compiles without forcing new ones."""
    per_circuit = _COMPILE_CACHE.get(circuit)
    return list(per_circuit.values()) if per_circuit else []
