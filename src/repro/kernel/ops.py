"""Dispatch tables of the compiled kernel.

Three families of per-gate evaluation functions, all operating on flat
value arrays indexed by compiled node index (no dicts, no GateType
if-chains in the hot loops):

* **packed** — bit-parallel evaluation of one gate from a full value
  array: ``fn(values, args, mask, table) -> word``;
* **packed overlay** — the same, but reading each operand from a faulty
  overlay array when its version stamp is current and from the good
  array otherwise (the fault-cone re-evaluation primitive):
  ``fn(faulty, stamp, version, good, args, mask, table) -> word``;
* **float overlay** — the tree rule of [AgAg75] over a conditioned
  overlay: stamped operands read the scratch array, unstamped ones fall
  back to the base estimate mapping (the conditional-probability cone
  primitive): ``fn(scratch, stamp, version, base, names, args, table)``.

The float functions reproduce :func:`repro.circuit.types.gate_probability`
operation for operation so the kernel path is numerically identical to
the legacy interpreter, and the packed functions are bit-identical to
:func:`repro.circuit.types.eval_packed`.

Selection happens once at compile time via :func:`packed_op`,
:func:`overlay_op` and :func:`float_op`, which pick an arity-specialized
variant (1- and 2-input gates dominate real netlists) or the generic
fold.
"""

from __future__ import annotations

from repro.circuit.types import GateType
from repro.errors import CircuitError

__all__ = ["packed_op", "overlay_op", "float_op", "OP_CODES", "OP_INPUT"]

#: Small-integer opcode per gate type (documented order; ``OP_INPUT`` marks
#: primary-input rows in the compiled opcode array).
OP_INPUT = 0
OP_CODES = {gtype: code for code, gtype in enumerate(GateType, start=1)}


# ---------------------------------------------------------------------------
# Packed (bit-parallel) ops: fn(values, args, mask, table) -> int
# ---------------------------------------------------------------------------


def _p_and(v, args, mask, table):
    acc = mask
    for a in args:
        acc &= v[a]
    return acc


def _p_or(v, args, mask, table):
    acc = 0
    for a in args:
        acc |= v[a]
    return acc


def _p_nand(v, args, mask, table):
    acc = mask
    for a in args:
        acc &= v[a]
    return acc ^ mask


def _p_nor(v, args, mask, table):
    acc = 0
    for a in args:
        acc |= v[a]
    return (acc ^ mask) & mask


def _p_xor(v, args, mask, table):
    acc = 0
    for a in args:
        acc ^= v[a]
    return acc & mask


def _p_xnor(v, args, mask, table):
    acc = 0
    for a in args:
        acc ^= v[a]
    return (acc ^ mask) & mask


def _p_not(v, args, mask, table):
    return (v[args[0]] ^ mask) & mask


def _p_buf(v, args, mask, table):
    return v[args[0]] & mask


def _p_const0(v, args, mask, table):
    return 0


def _p_const1(v, args, mask, table):
    return mask


def _p_lut(v, args, mask, table):
    out = 0
    for minterm in range(1 << len(args)):
        if not (table >> minterm) & 1:
            continue
        term = mask
        for i, a in enumerate(args):
            if (minterm >> i) & 1:
                term &= v[a]
            else:
                term &= v[a] ^ mask
            if not term:
                break
        out |= term
    return out


def _p_and2(v, args, mask, table):
    a, b = args
    return v[a] & v[b]


def _p_or2(v, args, mask, table):
    a, b = args
    return v[a] | v[b]


def _p_nand2(v, args, mask, table):
    a, b = args
    return (v[a] & v[b]) ^ mask


def _p_nor2(v, args, mask, table):
    a, b = args
    return ((v[a] | v[b]) ^ mask) & mask


def _p_xor2(v, args, mask, table):
    a, b = args
    return (v[a] ^ v[b]) & mask


def _p_xnor2(v, args, mask, table):
    a, b = args
    return ((v[a] ^ v[b]) ^ mask) & mask


_PACKED = {
    GateType.AND: _p_and,
    GateType.OR: _p_or,
    GateType.NAND: _p_nand,
    GateType.NOR: _p_nor,
    GateType.XOR: _p_xor,
    GateType.XNOR: _p_xnor,
    GateType.NOT: _p_not,
    GateType.BUF: _p_buf,
    GateType.CONST0: _p_const0,
    GateType.CONST1: _p_const1,
    GateType.LUT: _p_lut,
}

_PACKED2 = {
    GateType.AND: _p_and2,
    GateType.OR: _p_or2,
    GateType.NAND: _p_nand2,
    GateType.NOR: _p_nor2,
    GateType.XOR: _p_xor2,
    GateType.XNOR: _p_xnor2,
}


def packed_op(gtype: GateType, arity: int):
    """The packed evaluation function for one gate, arity-specialized."""
    if arity == 2:
        fn = _PACKED2.get(gtype)
        if fn is not None:
            return fn
    try:
        return _PACKED[gtype]
    except KeyError:
        raise CircuitError(f"unknown gate type {gtype!r}") from None


# ---------------------------------------------------------------------------
# Packed overlay ops: fn(faulty, stamp, version, good, args, mask, table)
# ---------------------------------------------------------------------------


def _o_and(f, s, ver, g, args, mask, table):
    acc = mask
    for a in args:
        acc &= f[a] if s[a] == ver else g[a]
    return acc


def _o_or(f, s, ver, g, args, mask, table):
    acc = 0
    for a in args:
        acc |= f[a] if s[a] == ver else g[a]
    return acc


def _o_nand(f, s, ver, g, args, mask, table):
    acc = mask
    for a in args:
        acc &= f[a] if s[a] == ver else g[a]
    return acc ^ mask


def _o_nor(f, s, ver, g, args, mask, table):
    acc = 0
    for a in args:
        acc |= f[a] if s[a] == ver else g[a]
    return (acc ^ mask) & mask


def _o_xor(f, s, ver, g, args, mask, table):
    acc = 0
    for a in args:
        acc ^= f[a] if s[a] == ver else g[a]
    return acc & mask


def _o_xnor(f, s, ver, g, args, mask, table):
    acc = 0
    for a in args:
        acc ^= f[a] if s[a] == ver else g[a]
    return (acc ^ mask) & mask


def _o_not(f, s, ver, g, args, mask, table):
    a = args[0]
    return ((f[a] if s[a] == ver else g[a]) ^ mask) & mask


def _o_buf(f, s, ver, g, args, mask, table):
    a = args[0]
    return (f[a] if s[a] == ver else g[a]) & mask


def _o_const0(f, s, ver, g, args, mask, table):
    return 0


def _o_const1(f, s, ver, g, args, mask, table):
    return mask


def _o_lut(f, s, ver, g, args, mask, table):
    vals = [f[a] if s[a] == ver else g[a] for a in args]
    out = 0
    for minterm in range(1 << len(vals)):
        if not (table >> minterm) & 1:
            continue
        term = mask
        for i, w in enumerate(vals):
            if (minterm >> i) & 1:
                term &= w
            else:
                term &= w ^ mask
            if not term:
                break
        out |= term
    return out


def _o_and2(f, s, ver, g, args, mask, table):
    a, b = args
    return (f[a] if s[a] == ver else g[a]) & (f[b] if s[b] == ver else g[b])


def _o_or2(f, s, ver, g, args, mask, table):
    a, b = args
    return (f[a] if s[a] == ver else g[a]) | (f[b] if s[b] == ver else g[b])


def _o_nand2(f, s, ver, g, args, mask, table):
    a, b = args
    return ((f[a] if s[a] == ver else g[a])
            & (f[b] if s[b] == ver else g[b])) ^ mask


def _o_nor2(f, s, ver, g, args, mask, table):
    a, b = args
    return (((f[a] if s[a] == ver else g[a])
             | (f[b] if s[b] == ver else g[b])) ^ mask) & mask


def _o_xor2(f, s, ver, g, args, mask, table):
    a, b = args
    return ((f[a] if s[a] == ver else g[a])
            ^ (f[b] if s[b] == ver else g[b])) & mask


def _o_xnor2(f, s, ver, g, args, mask, table):
    a, b = args
    return (((f[a] if s[a] == ver else g[a])
             ^ (f[b] if s[b] == ver else g[b])) ^ mask) & mask


_OVERLAY = {
    GateType.AND: _o_and,
    GateType.OR: _o_or,
    GateType.NAND: _o_nand,
    GateType.NOR: _o_nor,
    GateType.XOR: _o_xor,
    GateType.XNOR: _o_xnor,
    GateType.NOT: _o_not,
    GateType.BUF: _o_buf,
    GateType.CONST0: _o_const0,
    GateType.CONST1: _o_const1,
    GateType.LUT: _o_lut,
}

_OVERLAY2 = {
    GateType.AND: _o_and2,
    GateType.OR: _o_or2,
    GateType.NAND: _o_nand2,
    GateType.NOR: _o_nor2,
    GateType.XOR: _o_xor2,
    GateType.XNOR: _o_xnor2,
}


def overlay_op(gtype: GateType, arity: int):
    """The packed overlay function for one gate, arity-specialized."""
    if arity == 2:
        fn = _OVERLAY2.get(gtype)
        if fn is not None:
            return fn
    try:
        return _OVERLAY[gtype]
    except KeyError:
        raise CircuitError(f"unknown gate type {gtype!r}") from None


# ---------------------------------------------------------------------------
# Float overlay ops (tree rule): fn(scratch, stamp, version, base, names,
#                                   args, table) -> float
#
# Each function performs *exactly* the arithmetic of gate_probability so
# the compiled estimator path is numerically identical to the legacy one.
# ---------------------------------------------------------------------------


def _f_and(sc, st, ver, base, names, args, table):
    acc = 1.0
    for a in args:
        acc *= sc[a] if st[a] == ver else base[names[a]]
    return acc


def _f_or(sc, st, ver, base, names, args, table):
    acc = 1.0
    for a in args:
        acc *= 1.0 - (sc[a] if st[a] == ver else base[names[a]])
    return 1.0 - acc


def _f_nand(sc, st, ver, base, names, args, table):
    acc = 1.0
    for a in args:
        acc *= sc[a] if st[a] == ver else base[names[a]]
    return 1.0 - acc


def _f_nor(sc, st, ver, base, names, args, table):
    acc = 1.0
    for a in args:
        acc *= 1.0 - (sc[a] if st[a] == ver else base[names[a]])
    return acc


def _f_xor(sc, st, ver, base, names, args, table):
    acc = 0.0
    for a in args:
        p = sc[a] if st[a] == ver else base[names[a]]
        acc = acc + p - 2.0 * acc * p
    return acc


def _f_xnor(sc, st, ver, base, names, args, table):
    acc = 0.0
    for a in args:
        p = sc[a] if st[a] == ver else base[names[a]]
        acc = acc + p - 2.0 * acc * p
    return 1.0 - acc


def _f_not(sc, st, ver, base, names, args, table):
    a = args[0]
    return 1.0 - (sc[a] if st[a] == ver else base[names[a]])


def _f_buf(sc, st, ver, base, names, args, table):
    a = args[0]
    return sc[a] if st[a] == ver else base[names[a]]


def _f_const0(sc, st, ver, base, names, args, table):
    return 0.0


def _f_const1(sc, st, ver, base, names, args, table):
    return 1.0


def _f_lut(sc, st, ver, base, names, args, table):
    probs = [sc[a] if st[a] == ver else base[names[a]] for a in args]
    n = len(probs)
    total = 0.0
    for minterm in range(1 << n):
        if not (table >> minterm) & 1:
            continue
        weight = 1.0
        for i in range(n):
            weight *= probs[i] if (minterm >> i) & 1 else 1.0 - probs[i]
        total += weight
    return total


_FLOAT = {
    GateType.AND: _f_and,
    GateType.OR: _f_or,
    GateType.NAND: _f_nand,
    GateType.NOR: _f_nor,
    GateType.XOR: _f_xor,
    GateType.XNOR: _f_xnor,
    GateType.NOT: _f_not,
    GateType.BUF: _f_buf,
    GateType.CONST0: _f_const0,
    GateType.CONST1: _f_const1,
    GateType.LUT: _f_lut,
}


def float_op(gtype: GateType, arity: int):
    """The tree-rule overlay function for one gate."""
    try:
        return _FLOAT[gtype]
    except KeyError:
        raise CircuitError(f"unknown gate type {gtype!r}") from None
