"""Compiled levelized circuit kernel.

Lowers a :class:`~repro.circuit.netlist.Circuit` once into flat integer
arrays and evaluates packed-pattern words (and tree-rule floats) over
them with compile-time-selected dispatch functions — the shared inner
evaluation engine behind ``logicsim.simulate``, the ``FaultSimulator``
and the estimator's ``ConditionalEvaluator``.  See
:mod:`repro.kernel.compiled` for the compile-once contract.
"""

from repro.kernel.compiled import (
    CompiledCircuit,
    compile_circuit,
    compiled_artifacts,
)
from repro.kernel.ops import OP_CODES, OP_INPUT

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "compiled_artifacts",
    "OP_CODES",
    "OP_INPUT",
]
