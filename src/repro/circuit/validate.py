"""Structural validation beyond what :class:`Circuit` enforces itself.

``Circuit`` guarantees well-formedness (single driver, no cycles, declared
outputs).  :func:`validate` adds the lint-level checks a testability tool
wants before analysis: dangling nodes, unused inputs, constant outputs and
so on.  Problems are reported, not raised, so callers can decide severity.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.circuit.types import GateType
from repro.errors import ValidationError

__all__ = ["Issue", "validate", "check"]


@dataclasses.dataclass(frozen=True)
class Issue:
    """One validation finding."""

    severity: str  #: "error" | "warning"
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


def validate(circuit: Circuit) -> List[Issue]:
    """Return the list of issues found in ``circuit`` (possibly empty)."""
    issues: List[Issue] = []
    topo = Topology(circuit)
    for node in circuit.inputs:
        if topo.fanout_degree(node) == 0:
            issues.append(
                Issue("warning", "unused-input",
                      f"primary input {node!r} drives nothing")
            )
    for name in circuit.gates:
        if topo.fanout_degree(name) == 0:
            issues.append(
                Issue("warning", "dangling-gate",
                      f"gate {name!r} drives neither a gate nor an output")
            )
    for name, gate in circuit.gates.items():
        if gate.gtype in (GateType.CONST0, GateType.CONST1):
            continue
        if len(set(gate.inputs)) != len(gate.inputs):
            issues.append(
                Issue("warning", "repeated-pin",
                      f"gate {name!r} reads the same node on several pins")
            )
    for name, gate in circuit.gates.items():
        if gate.gtype is GateType.LUT:
            rows = 1 << gate.arity
            if gate.table in (0, (1 << rows) - 1):
                issues.append(
                    Issue("warning", "constant-lut",
                          f"LUT {name!r} computes a constant function")
                )
    if not circuit.inputs:
        issues.append(
            Issue("warning", "no-inputs", "circuit has no primary inputs")
        )
    return issues


def check(circuit: Circuit, allow_warnings: bool = True) -> None:
    """Raise :class:`ValidationError` when validation fails.

    With ``allow_warnings=False`` any finding is fatal; otherwise only
    ``error`` findings raise.
    """
    issues = validate(circuit)
    fatal = [
        issue
        for issue in issues
        if issue.severity == "error" or not allow_warnings
    ]
    if fatal:
        summary = "; ".join(str(issue) for issue in fatal[:5])
        raise ValidationError(
            f"circuit {circuit.name!r} failed validation: {summary}"
        )
