"""Immutable netlist data structures.

A :class:`Circuit` follows the paper's notation ``S = <I, O, K, B>``
(Fig. 1): the set of primary inputs ``I``, primary outputs ``O``, all nodes
``K`` and the logic components ``B``.  Nodes are identified by strings; every
gate drives exactly one node, named after the gate (ISCAS-85 convention), so
``K = I ∪ {gate outputs}``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.circuit.types import GateType, arity_range, lut_table
from repro.errors import CircuitError

__all__ = ["Gate", "Circuit", "Pin"]


#: A gate input pin, addressed as (gate output node name, input position).
Pin = Tuple[str, int]


@dataclasses.dataclass(frozen=True)
class Gate:
    """One logic component.

    Attributes
    ----------
    name:
        The node driven by this gate (also the gate's identifier).
    gtype:
        Gate type from the fixed alphabet.
    inputs:
        Names of the nodes feeding the gate, in pin order.
    table:
        Truth table for ``LUT`` gates (bit *m* = output for minterm *m*),
        0 otherwise.
    """

    name: str
    gtype: GateType
    inputs: Tuple[str, ...]
    table: int = 0

    def __post_init__(self) -> None:
        lo, hi = arity_range(self.gtype)
        n = len(self.inputs)
        if n < lo or (hi is not None and n > hi):
            raise CircuitError(
                f"gate {self.name!r}: {self.gtype} takes "
                f"{lo}{'..' + str(hi) if hi is not None else '+'} inputs, "
                f"got {n}"
            )
        if self.gtype is GateType.LUT:
            object.__setattr__(
                self, "table", lut_table(self.gtype, n, self.table)
            )
        else:
            if self.table:
                raise CircuitError(
                    f"gate {self.name!r}: {self.gtype} takes no truth table"
                )
            object.__setattr__(self, "table", 0)

    @property
    def arity(self) -> int:
        return len(self.inputs)


class Circuit:
    """An immutable combinational circuit.

    Instances are normally produced by :class:`repro.circuit.CircuitBuilder`
    or one of the parsers; the constructor validates that the structure is a
    well-formed combinational DAG.
    """

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
        gates: Iterable[Gate],
    ) -> None:
        self.name = str(name)
        self._inputs: Tuple[str, ...] = tuple(inputs)
        self._outputs: Tuple[str, ...] = tuple(outputs)
        self._gates: Dict[str, Gate] = {}
        for gate in gates:
            if gate.name in self._gates:
                raise CircuitError(f"node {gate.name!r} driven twice")
            self._gates[gate.name] = gate
        self._check_structure()
        self._topo: Tuple[str, ...] = self._topological_order()

    # -- construction helpers ------------------------------------------------

    def _check_structure(self) -> None:
        seen_inputs = set()
        for node in self._inputs:
            if node in seen_inputs:
                raise CircuitError(f"duplicate primary input {node!r}")
            seen_inputs.add(node)
            if node in self._gates:
                raise CircuitError(f"primary input {node!r} is also driven by a gate")
        known = seen_inputs | set(self._gates)
        for gate in self._gates.values():
            for src in gate.inputs:
                if src not in known:
                    raise CircuitError(
                        f"gate {gate.name!r} reads undriven node {src!r}"
                    )
        for node in self._outputs:
            if node not in known:
                raise CircuitError(f"primary output {node!r} is undriven")
        if len(set(self._outputs)) != len(self._outputs):
            raise CircuitError("duplicate primary output")

    def _topological_order(self) -> Tuple[str, ...]:
        """Kahn's algorithm over gate-to-gate edges; raises on loops."""
        input_set = set(self._inputs)
        consumers: Dict[str, List[str]] = {}
        pending: Dict[str, int] = {}
        for name, gate in self._gates.items():
            gate_sources = {s for s in gate.inputs if s not in input_set}
            pending[name] = len(gate_sources)
            for src in gate_sources:
                consumers.setdefault(src, []).append(name)
        order: List[str] = list(self._inputs)
        frontier = [name for name in self._gates if pending[name] == 0]
        visited = 0
        while frontier:
            node = frontier.pop()
            order.append(node)
            visited += 1
            for consumer in consumers.get(node, ()):
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    frontier.append(consumer)
        if visited != len(self._gates):
            cyclic = sorted(n for n, k in pending.items() if k > 0)
            raise CircuitError(f"combinational loop involving {cyclic[:5]}")
        return tuple(order)

    # -- read API ------------------------------------------------------------

    @property
    def inputs(self) -> Tuple[str, ...]:
        """Primary input node names, in declaration order."""
        return self._inputs

    @property
    def outputs(self) -> Tuple[str, ...]:
        """Primary output node names, in declaration order."""
        return self._outputs

    @property
    def gates(self) -> Dict[str, Gate]:
        """Mapping from driven node name to :class:`Gate` (do not mutate)."""
        return self._gates

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All nodes (primary inputs first, then gates) in topological order."""
        return self._topo

    @property
    def topological_gates(self) -> Iterator[Gate]:
        """Gates in topological (evaluation) order."""
        return (self._gates[n] for n in self._topo if n in self._gates)

    def gate(self, node: str) -> Gate:
        """The gate driving ``node``; raises for primary inputs."""
        try:
            return self._gates[node]
        except KeyError:
            raise CircuitError(f"node {node!r} is not driven by a gate") from None

    def is_input(self, node: str) -> bool:
        return node in self._input_set

    def is_output(self, node: str) -> bool:
        return node in self._output_set

    def has_node(self, node: str) -> bool:
        return node in self._gates or node in self._input_set

    @property
    def _input_set(self) -> frozenset:
        cached = getattr(self, "_input_set_cache", None)
        if cached is None:
            cached = frozenset(self._inputs)
            self._input_set_cache = cached
        return cached

    @property
    def _output_set(self) -> frozenset:
        cached = getattr(self, "_output_set_cache", None)
        if cached is None:
            cached = frozenset(self._outputs)
            self._output_set_cache = cached
        return cached

    @property
    def n_gates(self) -> int:
        return len(self._gates)

    @property
    def n_nodes(self) -> int:
        return len(self._topo)

    def __len__(self) -> int:
        return self.n_nodes

    def __contains__(self, node: object) -> bool:
        return isinstance(node, str) and self.has_node(node)

    def __repr__(self) -> str:
        return (
            f"Circuit({self.name!r}, inputs={len(self._inputs)}, "
            f"outputs={len(self._outputs)}, gates={len(self._gates)})"
        )

    # -- convenience ----------------------------------------------------------

    def structural_hash(self) -> str:
        """Stable hash of the circuit *structure* (display name excluded).

        Covers the input/output declarations and every gate (type, pin
        order, LUT table) — everything that affects analysis results —
        while two circuits differing only in ``name`` hash identically.
        This is the artifact-cache key of :mod:`repro.service`: the same
        netlist uploaded twice, under whatever display name, maps to the
        same compiled kernels and cached stage results.
        """
        cached = getattr(self, "_structural_hash_cache", None)
        if cached is None:
            digest = hashlib.sha256()
            digest.update("|".join(self._inputs).encode("utf-8"))
            digest.update(b"\x00")
            digest.update("|".join(self._outputs).encode("utf-8"))
            # Sorted by driven node, not topological order: Kahn
            # tie-breaking depends on gate *declaration* order, so two
            # structurally identical netlists whose gates are merely
            # declared in a different order would hash apart (and the
            # service artifact cache would miss).  Names are unique, so
            # sorted order is canonical.
            for node in sorted(self._gates):
                gate = self._gates[node]
                record = (
                    f"\x00{gate.name}\x01{gate.gtype.value}"
                    f"\x01{','.join(gate.inputs)}\x01{gate.table}"
                )
                digest.update(record.encode("utf-8"))
            cached = digest.hexdigest()[:16]
            self._structural_hash_cache = cached
        return cached

    def stats(self) -> Dict[str, int]:
        """Simple structural statistics (used by reports and Table 7/8)."""
        by_type: Dict[str, int] = {}
        for gate in self._gates.values():
            by_type[gate.gtype.value] = by_type.get(gate.gtype.value, 0) + 1
        return {
            "inputs": len(self._inputs),
            "outputs": len(self._outputs),
            "gates": len(self._gates),
            "nodes": self.n_nodes,
            **{f"gates_{k}": v for k, v in sorted(by_type.items())},
        }
