"""PROTEST-style structure description language (SDL).

The original PROTEST "compiles a structure description language for
circuits" (paper §7).  The exact syntax is not recoverable from the scan, so
this module defines a small, line-oriented language in its spirit::

    circuit ALU
    input  A0 A1 A2 A3
    output F0 F1
    n1 = and A0 A1        ; gates: and or nand nor xor xnor not buf
    n2 = not n1
    F0 = or n2 A2
    F1 = lut 0x8 A2 A3    ; arbitrary boolean function by truth table
    end

* ``;`` and ``#`` start comments.
* Multi-word declarations may be repeated (several ``input`` lines).
* ``end`` is optional.

:func:`parse_sdl` and :func:`format_sdl` round-trip every circuit built by
this library.
"""

from __future__ import annotations

from typing import List

from repro.circuit.netlist import Circuit, Gate
from repro.circuit.types import GateType
from repro.errors import ParseError

__all__ = ["parse_sdl", "format_sdl", "load_sdl", "save_sdl"]

_GATE_NAMES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
    "const0": GateType.CONST0,
    "const1": GateType.CONST1,
    "lut": GateType.LUT,
}


def parse_sdl(text: str) -> Circuit:
    """Parse SDL source text into a :class:`Circuit`."""
    name = "sdl"
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    saw_circuit = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        head = tokens[0].lower()
        if head == "circuit":
            if len(tokens) != 2:
                raise ParseError("'circuit' takes exactly one name", lineno)
            if saw_circuit:
                raise ParseError("duplicate 'circuit' declaration", lineno)
            name = tokens[1]
            saw_circuit = True
        elif head == "input":
            if len(tokens) < 2:
                raise ParseError("'input' requires at least one node", lineno)
            inputs.extend(tokens[1:])
        elif head == "output":
            if len(tokens) < 2:
                raise ParseError("'output' requires at least one node", lineno)
            outputs.extend(tokens[1:])
        elif head == "end":
            break
        elif len(tokens) >= 3 and tokens[1] == "=":
            gates.append(_parse_gate(tokens, lineno))
        else:
            raise ParseError(f"cannot parse {line!r}", lineno)
    if not outputs:
        raise ParseError("circuit declares no outputs")
    return Circuit(name, inputs, outputs, gates)


def _parse_gate(tokens: List[str], lineno: int) -> Gate:
    target = tokens[0]
    type_name = tokens[2].lower()
    gtype = _GATE_NAMES.get(type_name)
    if gtype is None:
        raise ParseError(f"unknown gate type {type_name!r}", lineno)
    operands = tokens[3:]
    table = 0
    if gtype is GateType.LUT:
        if not operands:
            raise ParseError("lut requires a truth table", lineno)
        try:
            table = int(operands[0], 0)
        except ValueError:
            raise ParseError(
                f"invalid lut truth table {operands[0]!r}", lineno
            ) from None
        operands = operands[1:]
    return Gate(target, gtype, tuple(operands), table)


def format_sdl(circuit: Circuit) -> str:
    """Serialize a circuit to SDL text (inverse of :func:`parse_sdl`)."""
    lines = [f"circuit {circuit.name}"]
    if circuit.inputs:
        lines.append("input " + " ".join(circuit.inputs))
    lines.append("output " + " ".join(circuit.outputs))
    for node in circuit.nodes:
        if circuit.is_input(node):
            continue
        gate = circuit.gates[node]
        if gate.gtype is GateType.LUT:
            body = f"lut {gate.table:#x} " + " ".join(gate.inputs)
        else:
            body = gate.gtype.value.lower()
            if gate.inputs:
                body += " " + " ".join(gate.inputs)
        lines.append(f"{gate.name} = {body}")
    lines.append("end")
    return "\n".join(lines) + "\n"


def load_sdl(path: str) -> Circuit:
    """Read and parse an SDL file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_sdl(handle.read())


def save_sdl(circuit: Circuit, path: str) -> None:
    """Write a circuit to an SDL file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_sdl(circuit))
