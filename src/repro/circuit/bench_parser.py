"""Backward-compatible import path for the ``.bench`` reader.

The parser grew into the import subsystem :mod:`repro.circuit.io`
(full ISCAS-85/89 coverage, structural Verilog, line-numbered
diagnostics, automatic combinational extraction of ``DFF`` state
elements).  This module re-exports the ``.bench`` entry points so the
historical ``repro.circuit.bench_parser`` spelling keeps working.
"""

from __future__ import annotations

from repro.circuit.io.bench import load_bench, parse_bench, read_bench

__all__ = ["load_bench", "parse_bench", "read_bench"]
