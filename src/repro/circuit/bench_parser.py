"""Parser for the ISCAS-85 ``.bench`` netlist format.

The format used by the classic testability benchmarks::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)

Gate names are case-insensitive; ``DFF`` is rejected (PROTEST analyses the
combinational part only — scan design moves the state elements out of the
way, paper §1).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.circuit.netlist import Circuit, Gate
from repro.circuit.types import GateType
from repro.errors import ParseError

__all__ = ["parse_bench", "load_bench"]

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^\s=()]+)\s*=\s*([A-Za-z01]+)\s*\(\s*([^()]*)\s*\)$"
)

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`."""
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            kind, node = decl.group(1).upper(), decl.group(2)
            if kind == "INPUT":
                inputs.append(node)
            else:
                outputs.append(node)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            target, type_name, arg_text = gate_match.groups()
            gtype = _TYPE_ALIASES.get(type_name.upper())
            if gtype is None:
                if type_name.upper() == "DFF":
                    raise ParseError(
                        "sequential element DFF is not supported; "
                        "extract the combinational part first",
                        lineno,
                    )
                raise ParseError(f"unknown gate type {type_name!r}", lineno)
            sources = _split_args(arg_text, lineno)
            gates.append(Gate(target, gtype, tuple(sources)))
            continue
        raise ParseError(f"cannot parse {line!r}", lineno)
    if not outputs:
        raise ParseError("netlist declares no OUTPUT(...)")
    return Circuit(name, inputs, outputs, gates)


def _split_args(arg_text: str, lineno: int) -> Tuple[str, ...]:
    arg_text = arg_text.strip()
    if not arg_text:
        return ()
    parts = [part.strip() for part in arg_text.split(",")]
    if any(not part or " " in part for part in parts):
        raise ParseError(f"malformed argument list {arg_text!r}", lineno)
    return tuple(parts)


def load_bench(path: str, name: "str | None" = None) -> Circuit:
    """Read and parse a ``.bench`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_bench(text, name)
