"""Fluent construction of :class:`~repro.circuit.netlist.Circuit` objects.

Example
-------
>>> from repro.circuit import CircuitBuilder
>>> b = CircuitBuilder("half_adder")
>>> a, bb = b.input("a"), b.input("b")
>>> s = b.xor("sum", a, bb)
>>> c = b.and_("carry", a, bb)
>>> b.output(s), b.output(c)
('sum', 'carry')
>>> circuit = b.build()
>>> circuit.n_gates
2
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.circuit.netlist import Circuit, Gate
from repro.circuit.types import GateType
from repro.errors import CircuitError

__all__ = ["CircuitBuilder"]


class CircuitBuilder:
    """Incrementally assemble a combinational circuit.

    Node names must be unique.  The builder hands back the node name from
    every call so construction code can be written dataflow-style.  Use
    :meth:`fresh` for auto-generated unique internal names.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: List[str] = []
        self._outputs: List[str] = []
        self._gates: Dict[str, Gate] = {}
        self._counter = 0

    # -- nodes ----------------------------------------------------------------

    def input(self, name: str) -> str:
        """Declare a primary input and return its node name."""
        self._check_new(name)
        self._inputs.append(name)
        return name

    def inputs(self, *names: str) -> List[str]:
        """Declare several primary inputs at once."""
        return [self.input(n) for n in names]

    def bus(self, prefix: str, width: int) -> List[str]:
        """Declare ``width`` primary inputs named ``prefix0..prefix{w-1}``."""
        return [self.input(f"{prefix}{i}") for i in range(width)]

    def output(self, node: str, alias: Optional[str] = None) -> str:
        """Mark an existing node as a primary output.

        With ``alias`` a BUF gate is inserted so the output carries the
        requested name (useful when exposing internal buses).
        """
        if alias is not None and alias != node:
            node = self.buf(alias, node)
        if node not in self._inputs and node not in self._gates:
            raise CircuitError(f"cannot output unknown node {node!r}")
        if node in self._outputs:
            raise CircuitError(f"node {node!r} already declared as output")
        self._outputs.append(node)
        return node

    def fresh(self, stem: str = "n") -> str:
        """Return a unique, not-yet-used internal node name."""
        while True:
            self._counter += 1
            name = f"{stem}_{self._counter}"
            if name not in self._inputs and name not in self._gates:
                return name

    # -- gates ----------------------------------------------------------------

    def gate(self, gtype: GateType, name: Optional[str], *sources: str,
             table: int = 0) -> str:
        """Add a gate of ``gtype`` named ``name`` (auto-named if ``None``)."""
        if name is None:
            name = self.fresh(gtype.value.lower())
        self._check_new(name)
        for src in sources:
            if src not in self._inputs and src not in self._gates:
                raise CircuitError(
                    f"gate {name!r} reads unknown node {src!r}; "
                    "declare sources before consumers"
                )
        self._gates[name] = Gate(name, gtype, tuple(sources), table)
        return name

    def and_(self, name: Optional[str], *sources: str) -> str:
        return self.gate(GateType.AND, name, *sources)

    def or_(self, name: Optional[str], *sources: str) -> str:
        return self.gate(GateType.OR, name, *sources)

    def nand(self, name: Optional[str], *sources: str) -> str:
        return self.gate(GateType.NAND, name, *sources)

    def nor(self, name: Optional[str], *sources: str) -> str:
        return self.gate(GateType.NOR, name, *sources)

    def xor(self, name: Optional[str], *sources: str) -> str:
        return self.gate(GateType.XOR, name, *sources)

    def xnor(self, name: Optional[str], *sources: str) -> str:
        return self.gate(GateType.XNOR, name, *sources)

    def not_(self, name: Optional[str], source: str) -> str:
        return self.gate(GateType.NOT, name, source)

    def buf(self, name: Optional[str], source: str) -> str:
        return self.gate(GateType.BUF, name, source)

    def const0(self, name: Optional[str] = None) -> str:
        return self.gate(GateType.CONST0, name)

    def const1(self, name: Optional[str] = None) -> str:
        return self.gate(GateType.CONST1, name)

    def lut(self, name: Optional[str], table: int, *sources: str) -> str:
        return self.gate(GateType.LUT, name, *sources, table=table)

    def mux(self, name: Optional[str], sel: str, if0: str, if1: str) -> str:
        """2:1 multiplexer built from basic gates; returns the output node."""
        if name is None:
            name = self.fresh("mux")
        nsel = self.not_(f"{name}_ns", sel)
        a0 = self.and_(f"{name}_a0", nsel, if0)
        a1 = self.and_(f"{name}_a1", sel, if1)
        return self.or_(name, a0, a1)

    # -- finalization -----------------------------------------------------------

    def build(self) -> Circuit:
        """Validate and freeze the circuit."""
        if not self._outputs:
            raise CircuitError(f"circuit {self.name!r} has no outputs")
        return Circuit(self.name, self._inputs, self._outputs, self._gates.values())

    # -- internal ---------------------------------------------------------------

    def _check_new(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise CircuitError(f"invalid node name {name!r}")
        if any(ch.isspace() for ch in name) or "(" in name or ")" in name:
            raise CircuitError(f"node name {name!r} contains illegal characters")
        if name in self._inputs or name in self._gates:
            raise CircuitError(f"node {name!r} already defined")
