"""CMOS transistor cost model.

Table 7 of the paper reports circuit sizes as transistor counts "based on a
CMOS library".  This module provides the standard static-CMOS costs so our
Tables 7/8 benches can report comparable size figures, plus NAND2-equivalent
gate counts (the "gate equivalents" used for MULT in §4).
"""

from __future__ import annotations

from typing import Dict

from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType

__all__ = ["transistor_count", "gate_equivalents", "gate_transistors"]


def gate_transistors(gtype: GateType, arity: int, table: int = 0) -> int:
    """Static-CMOS transistor count of a single gate.

    * n-input NAND/NOR: ``2n``
    * n-input AND/OR: NAND/NOR plus an inverter: ``2n + 2``
    * inverter: 2; buffer: 4 (two inverters)
    * 2-input XOR/XNOR: 10 each; wider XORs as a tree of 2-input ones
    * constants: 0 (tie cells)
    * LUT: modeled as its minterm sum-of-products (upper bound)
    """
    if gtype in (GateType.NAND, GateType.NOR):
        return 2 * arity
    if gtype in (GateType.AND, GateType.OR):
        return 2 * arity + 2
    if gtype is GateType.NOT:
        return 2
    if gtype is GateType.BUF:
        return 4
    if gtype in (GateType.XOR, GateType.XNOR):
        return 10 * (arity - 1)
    if gtype in (GateType.CONST0, GateType.CONST1):
        return 0
    if gtype is GateType.LUT:
        minterms = bin(table).count("1")
        if minterms == 0 or minterms == 1 << arity:
            return 0
        and_cost = minterms * (2 * arity + 2)
        or_cost = 2 * minterms + 2 if minterms > 1 else 0
        return and_cost + or_cost
    raise ValueError(f"unknown gate type {gtype!r}")


def transistor_count(circuit: Circuit) -> int:
    """Total CMOS transistor count of the circuit."""
    return sum(
        gate_transistors(gate.gtype, gate.arity, gate.table)
        for gate in circuit.gates.values()
    )


def gate_equivalents(circuit: Circuit) -> float:
    """NAND2-equivalent gate count (1 GE = 4 transistors)."""
    return transistor_count(circuit) / 4.0


def size_report(circuit: Circuit) -> Dict[str, float]:
    """Size summary used by the Table 7/8 benches."""
    return {
        "gates": circuit.n_gates,
        "transistors": transistor_count(circuit),
        "gate_equivalents": round(gate_equivalents(circuit), 1),
    }
