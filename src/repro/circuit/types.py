"""Gate types and their Boolean / probabilistic semantics.

PROTEST accepts "combinational circuits with arbitrary boolean functions as
basic components" (paper §2).  This module provides the fixed gate alphabet
(AND/OR/NAND/NOR/XOR/XNOR/NOT/BUF/CONST0/CONST1) plus a generic truth-table
gate (``LUT``) for arbitrary functions, together with the three evaluation
modes every engine in the library needs:

* **packed evaluation** — bit-parallel evaluation over Python integers where
  bit *j* of every operand is pattern *j* (:func:`eval_packed`);
* **probability evaluation** — the exact output probability for
  *independent* inputs (:func:`gate_probability`), which is the building
  block of the tree rule of [AgAg75] and of formula (2) of the paper;
* **Boolean difference probability** — the probability that toggling one
  input toggles the output (:func:`boolean_difference_probability`), used by
  the observability engine.
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.errors import CircuitError

__all__ = [
    "GateType",
    "LUT_TYPES",
    "arity_range",
    "PACKED_DISPATCH",
    "eval_packed",
    "eval_bool",
    "gate_probability",
    "cofactor_probability",
    "boolean_difference_probability",
    "controlling_value",
    "inversion_parity",
    "lut_table",
]


class GateType(str, enum.Enum):
    """The gate alphabet understood by every engine in the library."""

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    #: Generic truth-table component ("arbitrary boolean function").
    LUT = "LUT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Gate types that carry an explicit truth table.
LUT_TYPES = frozenset({GateType.LUT})

_MIN_ARITY = {
    GateType.AND: 2,
    GateType.OR: 2,
    GateType.NAND: 2,
    GateType.NOR: 2,
    GateType.XOR: 2,
    GateType.XNOR: 2,
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.LUT: 1,
}

_MAX_ARITY = {
    GateType.NOT: 1,
    GateType.BUF: 1,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    # LUT truth tables are stored as ints; cap fan-in to keep them sane.
    GateType.LUT: 16,
}


def arity_range(gtype: GateType) -> "tuple[int, int | None]":
    """Return the inclusive ``(min, max)`` fan-in for ``gtype``.

    ``max`` is ``None`` for gates with unbounded fan-in (AND/OR/...).
    """
    return _MIN_ARITY[gtype], _MAX_ARITY.get(gtype)


def lut_table(gtype: GateType, n_inputs: int, table: "int | None") -> int:
    """Validate and normalize the truth table of a LUT gate.

    The table is an integer whose bit *m* is the output for the input
    minterm *m* (input 0 is the least-significant selector bit).
    """
    if gtype is not GateType.LUT:
        if table is not None:
            raise CircuitError(f"{gtype} gates do not take a truth table")
        return 0
    if table is None:
        raise CircuitError("LUT gates require a truth table")
    rows = 1 << n_inputs
    if not 0 <= table < (1 << rows):
        raise CircuitError(
            f"LUT truth table {table:#x} out of range for {n_inputs} inputs"
        )
    return table


# ---------------------------------------------------------------------------
# Packed (bit-parallel) evaluation
# ---------------------------------------------------------------------------


def _packed_and(operands: Sequence[int], mask: int, table: int) -> int:
    acc = mask
    for op in operands:
        acc &= op
    return acc


def _packed_or(operands: Sequence[int], mask: int, table: int) -> int:
    acc = 0
    for op in operands:
        acc |= op
    return acc


def _packed_nand(operands: Sequence[int], mask: int, table: int) -> int:
    acc = mask
    for op in operands:
        acc &= op
    return acc ^ mask


def _packed_nor(operands: Sequence[int], mask: int, table: int) -> int:
    acc = 0
    for op in operands:
        acc |= op
    return (acc ^ mask) & mask


def _packed_xor(operands: Sequence[int], mask: int, table: int) -> int:
    acc = 0
    for op in operands:
        acc ^= op
    return acc & mask


def _packed_xnor(operands: Sequence[int], mask: int, table: int) -> int:
    acc = 0
    for op in operands:
        acc ^= op
    return (acc ^ mask) & mask


def _packed_not(operands: Sequence[int], mask: int, table: int) -> int:
    return (operands[0] ^ mask) & mask


def _packed_buf(operands: Sequence[int], mask: int, table: int) -> int:
    return operands[0] & mask


def _packed_const0(operands: Sequence[int], mask: int, table: int) -> int:
    return 0


def _packed_const1(operands: Sequence[int], mask: int, table: int) -> int:
    return mask


#: Module-level packed-evaluation dispatch table, one entry per gate type.
#: The compiled kernel indexes this at compile time; :func:`eval_packed`
#: stays as a thin compat shim over it.
PACKED_DISPATCH = {
    GateType.AND: _packed_and,
    GateType.OR: _packed_or,
    GateType.NAND: _packed_nand,
    GateType.NOR: _packed_nor,
    GateType.XOR: _packed_xor,
    GateType.XNOR: _packed_xnor,
    GateType.NOT: _packed_not,
    GateType.BUF: _packed_buf,
    GateType.CONST0: _packed_const0,
    GateType.CONST1: _packed_const1,
    GateType.LUT: lambda operands, mask, table: _eval_lut_packed(
        operands, mask, table
    ),
}


def eval_packed(
    gtype: GateType,
    operands: Sequence[int],
    mask: int,
    table: int = 0,
) -> int:
    """Evaluate a gate over packed pattern words.

    ``operands`` are integers whose bit *j* is the value of that input in
    pattern *j*; ``mask`` has one bit set per valid pattern.  The result is
    masked to the pattern width.  Thin shim over :data:`PACKED_DISPATCH`.
    """
    try:
        fn = PACKED_DISPATCH[gtype]
    except (KeyError, TypeError):
        raise CircuitError(f"unknown gate type {gtype!r}") from None
    return fn(operands, mask, table)


def _eval_lut_packed(operands: Sequence[int], mask: int, table: int) -> int:
    """Bit-parallel LUT evaluation by minterm expansion."""
    n = len(operands)
    out = 0
    for minterm in range(1 << n):
        if not (table >> minterm) & 1:
            continue
        term = mask
        for i in range(n):
            if (minterm >> i) & 1:
                term &= operands[i]
            else:
                term &= operands[i] ^ mask
            if not term:
                break
        out |= term
    return out


def eval_bool(gtype: GateType, operands: Sequence[int], table: int = 0) -> int:
    """Evaluate a gate on scalar 0/1 operands; returns 0 or 1."""
    return eval_packed(gtype, operands, 1, table)


# ---------------------------------------------------------------------------
# Probability evaluation (independent inputs)
# ---------------------------------------------------------------------------


def gate_probability(
    gtype: GateType,
    probs: Sequence[float],
    table: int = 0,
) -> float:
    """Exact 1-probability of a gate output for *independent* inputs.

    This is the tree rule of [AgAg75]: exact whenever the input signals are
    statistically independent, and the elementary step of the PROTEST
    estimator (paper §2, cases 2 and 3).
    """
    if gtype is GateType.AND:
        acc = 1.0
        for p in probs:
            acc *= p
        return acc
    if gtype is GateType.OR:
        acc = 1.0
        for p in probs:
            acc *= 1.0 - p
        return 1.0 - acc
    if gtype is GateType.NAND:
        acc = 1.0
        for p in probs:
            acc *= p
        return 1.0 - acc
    if gtype is GateType.NOR:
        acc = 1.0
        for p in probs:
            acc *= 1.0 - p
        return acc
    if gtype is GateType.XOR:
        acc = 0.0
        for p in probs:
            acc = acc + p - 2.0 * acc * p
        return acc
    if gtype is GateType.XNOR:
        acc = 0.0
        for p in probs:
            acc = acc + p - 2.0 * acc * p
        return 1.0 - acc
    if gtype is GateType.NOT:
        return 1.0 - probs[0]
    if gtype is GateType.BUF:
        return probs[0]
    if gtype is GateType.CONST0:
        return 0.0
    if gtype is GateType.CONST1:
        return 1.0
    if gtype is GateType.LUT:
        return _lut_probability(probs, table)
    raise CircuitError(f"unknown gate type {gtype!r}")


def _lut_probability(probs: Sequence[float], table: int) -> float:
    n = len(probs)
    total = 0.0
    for minterm in range(1 << n):
        if not (table >> minterm) & 1:
            continue
        weight = 1.0
        for i in range(n):
            weight *= probs[i] if (minterm >> i) & 1 else 1.0 - probs[i]
        total += weight
    return total


def cofactor_probability(
    gtype: GateType,
    probs: Sequence[float],
    pin: int,
    value: int,
    table: int = 0,
) -> float:
    """Output probability with input ``pin`` forced to ``value`` (0/1)."""
    forced = list(probs)
    forced[pin] = float(value)
    return gate_probability(gtype, forced, table)


def boolean_difference_probability(
    gtype: GateType,
    probs: Sequence[float],
    pin: int,
    table: int = 0,
    exact: bool = False,
) -> float:
    """Probability that toggling input ``pin`` toggles the gate output.

    With ``exact=False`` this is the paper's signal-flow pin model
    ``f(..0..) (+) f(..1..)`` with ``t (+) y = t + y - 2ty``: the two
    cofactor probabilities are combined *as if independent*.  With
    ``exact=True`` the true Boolean difference ``P(f|pin=0 XOR f|pin=1)``
    is computed, which is exact for independent side inputs (our ablation
    model; removes part of the paper's systematic under-estimation).
    """
    if not exact:
        f0 = cofactor_probability(gtype, probs, pin, 0, table)
        f1 = cofactor_probability(gtype, probs, pin, 1, table)
        return f0 + f1 - 2.0 * f0 * f1
    return _exact_boolean_difference(gtype, probs, pin, table)


def _exact_boolean_difference(
    gtype: GateType,
    probs: Sequence[float],
    pin: int,
    table: int,
) -> float:
    """Exact ``P(df/dx = 1)`` for independent side inputs.

    Decomposable gate types have closed forms (a pin toggle propagates
    through AND/NAND iff every side input is 1, through OR/NOR iff every
    side input is 0, through XOR/XNOR/NOT/BUF always), so only LUTs pay
    the exponential enumeration — vendored ISCAS-class netlists carry
    32-input reduction gates, where 2^31 minterms per pin is not a cost,
    it's a hang.
    """
    n = len(probs)
    side = [i for i in range(n) if i != pin]
    if gtype in (GateType.AND, GateType.NAND):
        weight = 1.0
        for i in side:
            weight *= probs[i]
        return weight
    if gtype in (GateType.OR, GateType.NOR):
        weight = 1.0
        for i in side:
            weight *= 1.0 - probs[i]
        return weight
    if gtype in (GateType.XOR, GateType.XNOR, GateType.NOT, GateType.BUF):
        return 1.0
    total = 0.0
    operands = [0] * n
    for assignment in range(1 << len(side)):
        weight = 1.0
        for j, i in enumerate(side):
            bit = (assignment >> j) & 1
            operands[i] = bit
            weight *= probs[i] if bit else 1.0 - probs[i]
        if weight == 0.0:
            continue
        operands[pin] = 0
        f0 = eval_bool(gtype, operands, table)
        operands[pin] = 1
        f1 = eval_bool(gtype, operands, table)
        if f0 != f1:
            total += weight
    return total


# ---------------------------------------------------------------------------
# Structural attributes used by SCOAP / STAFAN / collapsing
# ---------------------------------------------------------------------------

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

_INVERTING = {
    GateType.NAND: True,
    GateType.NOR: True,
    GateType.NOT: True,
    GateType.XNOR: True,
    GateType.AND: False,
    GateType.OR: False,
    GateType.XOR: False,
    GateType.BUF: False,
}


def controlling_value(gtype: GateType) -> "int | None":
    """The controlling input value of the gate, or ``None`` if it has none."""
    return _CONTROLLING.get(gtype)


def inversion_parity(gtype: GateType) -> "bool | None":
    """Whether the gate inverts (NAND/NOR/NOT/XNOR).  ``None`` for LUT/const."""
    return _INVERTING.get(gtype)
