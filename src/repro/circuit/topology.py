"""Structural analysis: fan-out, levels, cones and joining points.

The joining-point machinery implements the paper's Fig. 2 definition: for
two nodes ``a`` and ``b``, the set ``V(a, b)`` consists of the nodes with at
least two immediate successors, one of which lies on a path to ``a`` and
another on a path to ``b``.  A gate output exhibits reconvergent fan-out
exactly when ``V(a, b)`` of its input pair is non-empty.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.circuit.netlist import Circuit, Pin

__all__ = ["Topology"]


class Topology:
    """Derived structural views over a :class:`Circuit`.

    The object is cheap to construct (one pass over the gates); expensive
    cone queries are computed lazily and cached.  ``cache=False`` disables
    the ``bounded_tfi`` memoization (the estimator's hot query), restoring
    the recompute-every-call behaviour — the legacy baseline the perf
    bench and the kernel parity tests measure against.
    """

    def __init__(self, circuit: Circuit, cache: bool = True) -> None:
        self.circuit = circuit
        #: Consumers of each node as ``(gate_name, pin_index)`` pairs.
        self.branches: Dict[str, Tuple[Pin, ...]] = {}
        branches: Dict[str, List[Pin]] = {node: [] for node in circuit.nodes}
        for gate in circuit.gates.values():
            for pin, src in enumerate(gate.inputs):
                branches[src].append((gate.name, pin))
        self.branches = {node: tuple(pins) for node, pins in branches.items()}
        #: Topological position of every node.
        self.topo_index: Dict[str, int] = {
            node: i for i, node in enumerate(circuit.nodes)
        }
        self.level: Dict[str, int] = self._compute_levels()
        self._tfo_cache: Dict[str, Tuple[str, ...]] = {}
        self._tfi_cache: Dict[str, FrozenSet[str]] = {}
        self._cache_bounded = cache
        self._bounded_tfi_cache: Dict[
            "tuple[str, int | None]", FrozenSet[str]
        ] = {}

    # -- elementary views -------------------------------------------------------

    def _compute_levels(self) -> Dict[str, int]:
        level: Dict[str, int] = {}
        circuit = self.circuit
        for node in circuit.nodes:
            if circuit.is_input(node):
                level[node] = 0
            else:
                gate = circuit.gates[node]
                level[node] = 1 + max(
                    (level[src] for src in gate.inputs), default=0
                )
        return level

    @property
    def depth(self) -> int:
        """Logic depth of the circuit (maximal level)."""
        return max(self.level.values(), default=0)

    def fanout_degree(self, node: str) -> int:
        """Number of fan-out branches (gate input pins) plus 1 if a PO."""
        extra = 1 if self.circuit.is_output(node) else 0
        return len(self.branches[node]) + extra

    def is_stem(self, node: str) -> bool:
        """True when the node has more than one fan-out branch."""
        return self.fanout_degree(node) > 1

    # -- cones --------------------------------------------------------------------

    def tfo(self, node: str) -> Tuple[str, ...]:
        """Transitive fan-out of ``node`` (excluding it), topologically sorted."""
        cached = self._tfo_cache.get(node)
        if cached is not None:
            return cached
        seen: Set[str] = set()
        stack = [gate for gate, _pin in self.branches[node]]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(gate for gate, _pin in self.branches[current])
        cone = tuple(sorted(seen, key=self.topo_index.__getitem__))
        self._tfo_cache[node] = cone
        return cone

    def tfi(self, node: str) -> FrozenSet[str]:
        """Transitive fan-in of ``node`` (including it)."""
        cached = self._tfi_cache.get(node)
        if cached is not None:
            return cached
        circuit = self.circuit
        seen: Set[str] = {node}
        stack = [node]
        while stack:
            current = stack.pop()
            if circuit.is_input(current):
                continue
            for src in circuit.gates[current].inputs:
                if src not in seen:
                    seen.add(src)
                    stack.append(src)
        result = frozenset(seen)
        self._tfi_cache[node] = result
        return result

    def bounded_tfi(self, node: str, max_depth: "int | None") -> Set[str]:
        """Transitive fan-in of ``node`` up to ``max_depth`` edges back.

        Includes ``node`` itself.  ``max_depth=None`` means unbounded.
        Results are memoized per ``(node, max_depth)`` (as frozensets —
        treat them as read-only); the estimator issues this query once per
        conditional-probability evaluation on a small recurring node set.
        """
        if self._cache_bounded:
            key = (node, max_depth)
            cached = self._bounded_tfi_cache.get(key)
            if cached is None:
                cached = frozenset(self._bounded_tfi(node, max_depth))
                self._bounded_tfi_cache[key] = cached
            return cached
        return self._bounded_tfi(node, max_depth)

    def _bounded_tfi(self, node: str, max_depth: "int | None") -> Set[str]:
        """Uncached depth-bounded fan-in walk (see :meth:`bounded_tfi`)."""
        if max_depth is None:
            return set(self.tfi(node))
        circuit = self.circuit
        seen: Dict[str, int] = {node: 0}
        frontier = [node]
        depth = 0
        while frontier and depth < max_depth:
            depth += 1
            next_frontier: List[str] = []
            for current in frontier:
                if circuit.is_input(current):
                    continue
                for src in circuit.gates[current].inputs:
                    if src not in seen:
                        seen[src] = depth
                        next_frontier.append(src)
            frontier = next_frontier
        return set(seen)

    # -- joining points -------------------------------------------------------------

    def joining_points(
        self,
        nodes: Sequence[str],
        max_depth: "int | None" = None,
    ) -> List[str]:
        """Joining points ``V`` of a tuple of nodes (typically gate inputs).

        A node ``x`` belongs to ``V`` when it has at least two fan-out
        branches and lies in the (depth-bounded) transitive fan-in of at
        least two *distinct pins* of the tuple.  Repeated nodes in ``nodes``
        (a gate fed twice from the same signal) therefore make that node its
        own joining point, matching the paper's definition.

        The result is sorted topologically (inputs first).
        """
        if len(nodes) < 2:
            return []
        tfis = [self.bounded_tfi(node, max_depth) for node in nodes]
        candidates: Dict[str, int] = {}
        for i, tfi in enumerate(tfis):
            for node in tfi:
                candidates[node] = candidates.get(node, 0) + 1
        seen_twice = {node for node, hits in candidates.items() if hits >= 2}
        # A literal repeat like AND(a, a) never counts twice above because the
        # two pins have identical fan-in sets; handle it explicitly.
        duplicates = {
            node for i, node in enumerate(nodes) if node in nodes[:i]
        }
        seen_twice |= duplicates
        result = [
            node
            for node in seen_twice
            if len(self.branches[node]) >= 2
        ]
        result.sort(key=self.topo_index.__getitem__)
        return result

    def is_reconvergent(self, gate_name: str,
                        max_depth: "int | None" = None) -> bool:
        """True when the gate's inputs share at least one joining point."""
        gate = self.circuit.gates[gate_name]
        return bool(self.joining_points(gate.inputs, max_depth))

    def reconvergent_gates(self, max_depth: "int | None" = None) -> List[str]:
        """All gates with reconvergent fan-out at their inputs."""
        return [
            name
            for name in self.circuit.gates
            if self.is_reconvergent(name, max_depth)
        ]

    # -- conditional-evaluation support ----------------------------------------------

    def forward_cone_within(
        self,
        sources: Iterable[str],
        allowed: Set[str],
    ) -> List[str]:
        """Gate nodes reachable from ``sources`` while staying in ``allowed``.

        Returns the gates (not the sources) in topological order; this is the
        re-evaluation schedule for a conditional probability query whose
        relevant region is ``allowed`` (usually a bounded TFI of the target).
        """
        seen: Set[str] = set()
        stack = [s for s in sources if s in allowed]
        cone: Set[str] = set()
        while stack:
            current = stack.pop()
            for gate_name, _pin in self.branches[current]:
                if gate_name in seen or gate_name not in allowed:
                    continue
                seen.add(gate_name)
                cone.add(gate_name)
                stack.append(gate_name)
        return sorted(cone, key=self.topo_index.__getitem__)
