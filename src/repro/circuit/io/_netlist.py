"""Shared netlist-assembly machinery for the import readers.

Both front-ends (:mod:`repro.circuit.io.bench` and
:mod:`repro.circuit.io.verilog`) tokenize very different surface syntax
into the same small vocabulary — input/output declarations, gate
definitions, flip-flops — and every industrial-robustness concern lives
here, once:

* line-numbered :class:`~repro.errors.ParseError` diagnostics for
  duplicate declarations, nodes driven twice, undeclared sources and
  undriven outputs (the raw :class:`~repro.circuit.netlist.Circuit`
  constructor would reject most of these too, but without saying *where*
  in a 10k-line netlist the problem is);
* optional case-insensitive node resolution (the ``.bench`` dialect):
  the first-seen spelling of a name is canonical and every other
  spelling resolves to it, so ``INPUT(g1)`` + ``G10 = NAND(G1, ...)``
  connect instead of silently producing a dangling source;
* automatic combinational extraction of sequential elements: a
  ``DFF`` is cut into a pseudo primary input (its output ``Q``) and a
  pseudo primary output (its data node ``D``) — the standard scan-design
  view the paper assumes (§1) — instead of a hard parse failure.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.circuit.netlist import Circuit, Gate
from repro.circuit.types import GateType
from repro.errors import CircuitError, ParseError

__all__ = ["NetlistAssembler", "NetlistInfo", "SEQUENTIAL_MODES"]

#: Accepted values of the readers' ``sequential`` knob: ``"cut"``
#: extracts the combinational core (flip-flop outputs become pseudo
#: primary inputs, their data nodes pseudo primary outputs), ``"reject"``
#: restores the historical hard :class:`ParseError`.
SEQUENTIAL_MODES = ("cut", "reject")


@dataclasses.dataclass(frozen=True)
class NetlistInfo:
    """Import diagnostics the :class:`Circuit` object itself cannot carry.

    Attributes
    ----------
    source_format:
        ``"bench"`` or ``"verilog"``.
    flipflops:
        ``(Q, D)`` node-name pairs of the cut state elements, in
        definition order (empty for purely combinational netlists).
    pseudo_inputs / pseudo_outputs:
        The nodes *added* to the primary input/output lists by the cut
        (``pseudo_outputs`` omits data nodes that were already declared
        primary outputs).
    """

    source_format: str
    flipflops: Tuple[Tuple[str, str], ...] = ()
    pseudo_inputs: Tuple[str, ...] = ()
    pseudo_outputs: Tuple[str, ...] = ()

    @property
    def is_sequential(self) -> bool:
        return bool(self.flipflops)


class NetlistAssembler:
    """Accumulates declarations and builds a validated :class:`Circuit`."""

    def __init__(self, source_format: str, case_sensitive: bool = True) -> None:
        self.source_format = source_format
        self.case_sensitive = case_sensitive
        self._canonical: Dict[str, str] = {}
        self._inputs: List[str] = []
        self._input_lines: Dict[str, int] = {}
        self._outputs: List[str] = []
        self._output_lines: Dict[str, int] = {}
        self._gates: Dict[str, Gate] = {}
        self._gate_lines: Dict[str, int] = {}
        # Gate sources with the line that referenced them, checked once
        # every definition is in (out-of-order definitions are legal).
        self._references: List[Tuple[str, str, int]] = []
        self._flipflops: List[Tuple[str, str]] = []
        self._ff_lines: Dict[str, int] = {}

    # -- name interning -------------------------------------------------------

    def intern(self, name: str) -> str:
        """Resolve ``name`` to its canonical spelling (first seen wins)."""
        if self.case_sensitive:
            return name
        key = name.casefold()
        canonical = self._canonical.get(key)
        if canonical is None:
            self._canonical[key] = canonical = name
        return canonical

    # -- declarations ---------------------------------------------------------

    def add_input(self, name: str, lineno: "int | None" = None) -> str:
        node = self.intern(name)
        previous = self._input_lines.get(node)
        if previous is not None:
            raise ParseError(
                f"duplicate INPUT({node}) (first declared on line {previous})",
                lineno,
            )
        self._inputs.append(node)
        self._input_lines[node] = lineno or 0
        return node

    def add_output(self, name: str, lineno: "int | None" = None) -> str:
        node = self.intern(name)
        previous = self._output_lines.get(node)
        if previous is not None:
            raise ParseError(
                f"duplicate OUTPUT({node}) (first declared on line {previous})",
                lineno,
            )
        self._outputs.append(node)
        self._output_lines[node] = lineno or 0
        return node

    def add_gate(
        self,
        target: str,
        gtype: GateType,
        sources: Tuple[str, ...],
        lineno: "int | None" = None,
        table: int = 0,
    ) -> str:
        node = self.intern(target)
        self._check_driven_once(node, lineno)
        interned = tuple(self.intern(src) for src in sources)
        for src in interned:
            self._references.append((src, node, lineno or 0))
        try:
            gate = Gate(node, gtype, interned, table)
        except CircuitError as error:
            raise ParseError(str(error), lineno) from error
        self._gates[node] = gate
        self._gate_lines[node] = lineno or 0
        return node

    def add_flipflop(
        self, q: str, d: str, lineno: "int | None" = None
    ) -> str:
        """Record a state element ``q = DFF(d)`` for combinational cutting."""
        node = self.intern(q)
        self._check_driven_once(node, lineno)
        data = self.intern(d)
        self._references.append((data, node, lineno or 0))
        self._flipflops.append((node, data))
        self._ff_lines[node] = lineno or 0
        return node

    def _check_driven_once(self, node: str, lineno: "int | None") -> None:
        previous = self._gate_lines.get(node, self._ff_lines.get(node))
        if previous is not None:
            raise ParseError(
                f"node {node!r} is driven twice "
                f"(first defined on line {previous})",
                lineno,
            )
        declared = self._input_lines.get(node)
        if declared is not None:
            raise ParseError(
                f"node {node!r} is a declared INPUT and cannot also be "
                f"driven by a gate (declared on line {declared})",
                lineno,
            )

    # -- assembly -------------------------------------------------------------

    def build(
        self, name: str, sequential: str = "cut"
    ) -> Tuple[Circuit, NetlistInfo]:
        if sequential not in SEQUENTIAL_MODES:
            raise ParseError(
                f"sequential mode must be one of {SEQUENTIAL_MODES}, "
                f"got {sequential!r}"
            )
        if self._flipflops and sequential == "reject":
            q = self._flipflops[0][0]
            raise ParseError(
                "sequential element DFF is not supported in 'reject' mode; "
                "pass sequential='cut' to extract the combinational part",
                self._ff_lines.get(q) or None,
            )
        inputs = list(self._inputs)
        outputs = list(self._outputs)
        pseudo_inputs: List[str] = []
        pseudo_outputs: List[str] = []
        if self._flipflops:
            output_set = set(outputs)
            for q, d in self._flipflops:
                # The state output becomes a fully controllable pseudo-PI
                # (scan-in), the data input a fully observable pseudo-PO
                # (scan-out), in flip-flop definition order.
                pseudo_inputs.append(q)
                inputs.append(q)
                if d not in output_set:
                    pseudo_outputs.append(d)
                    outputs.append(d)
                    output_set.add(d)
        known = set(inputs) | set(self._gates)
        for src, consumer, lineno in self._references:
            if src not in known:
                raise ParseError(
                    f"node {consumer!r} reads {src!r}, which is neither a "
                    "declared INPUT nor defined by any gate",
                    lineno or None,
                )
        for node in self._outputs:
            if node not in known:
                raise ParseError(
                    f"OUTPUT({node}) is never driven",
                    self._output_lines.get(node) or None,
                )
        if not outputs:
            raise ParseError("netlist declares no OUTPUT(...)")
        try:
            circuit = Circuit(name, inputs, outputs, self._gates.values())
        except CircuitError as error:
            # Residual structural failures (combinational loops) have no
            # single offending line; surface them as parse failures with
            # the constructor's message.
            raise ParseError(f"invalid netlist: {error}") from error
        info = NetlistInfo(
            source_format=self.source_format,
            flipflops=tuple(self._flipflops),
            pseudo_inputs=tuple(pseudo_inputs),
            pseudo_outputs=tuple(pseudo_outputs),
        )
        return circuit, info
