"""Hardened reader for the ISCAS-85/89 ``.bench`` netlist format.

The classic benchmark dialect::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G11 = NOT(G10)
    G22 = DFF(G11)        # ISCAS-89; cut into pseudo-PI/PO by default

Industrial-distribution quirks this reader tolerates (and the original
minimal parser did not):

* **out-of-order definitions** — gates may be used before they are
  defined; references are resolved once the whole file is read;
* **multi-line definitions** — an argument list may span physical lines
  (the historical files wrap wide fan-in gates); logical lines continue
  while parentheses are unbalanced or a line ends in ``,`` or ``=``;
* **case-insensitive names** — gate *types* and *node names* both; the
  first-seen spelling of a node is canonical, so ``INPUT(g1)`` feeding
  ``NAND(G1, ...)`` connects instead of leaving a dangling source;
* **sequential elements** — ``DFF`` gates are cut into pseudo
  primary-input/primary-output pairs (automatic combinational
  extraction, the scan-design view of paper §1) unless
  ``sequential="reject"`` asks for the historical hard error;
* **CRLF line endings, blank lines, trailing comments** anywhere.

Malformed input fails with a line-numbered
:class:`~repro.errors.ParseError`: duplicate ``INPUT``/``OUTPUT``
declarations, nodes driven twice, undeclared sources and undriven
outputs all name the offending line (and the conflicting earlier one).
"""

from __future__ import annotations

import pathlib
import re
from typing import Iterator, List, Tuple

from repro.circuit.io._netlist import NetlistAssembler, NetlistInfo
from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.errors import ParseError

__all__ = ["load_bench", "parse_bench", "read_bench"]

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$", re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^\s=()]+)\s*=\s*([A-Za-z01_]+)\s*\(\s*([^()]*)\s*\)$"
)

_TYPE_ALIASES = {
    "AND": GateType.AND,
    "OR": GateType.OR,
    "NAND": GateType.NAND,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}

#: Sequential cell spellings found across .bench distributions.
_DFF_ALIASES = frozenset({"DFF", "FF", "FLIPFLOP"})


def _logical_lines(text: str) -> Iterator[Tuple[int, str]]:
    """Yield ``(first_lineno, logical_line)`` with continuations joined.

    Comments (``#`` to end of line) are stripped *before* joining, so a
    wrapped argument list may carry a trailing comment on every physical
    line.  A logical line continues while its parentheses are unbalanced
    or it ends in ``,`` or ``=``.
    """
    pending: List[str] = []
    start = 0
    depth = 0
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if not pending:
            start = lineno
        pending.append(line)
        depth += line.count("(") - line.count(")")
        if depth < 0:
            raise ParseError("unbalanced ')'", lineno)
        if depth > 0 or line.endswith((",", "=")):
            continue
        yield start, " ".join(pending)
        pending = []
        depth = 0
    if pending:
        raise ParseError("unterminated definition (unbalanced '(')", start)


def _split_args(arg_text: str, lineno: int) -> Tuple[str, ...]:
    arg_text = arg_text.strip()
    if not arg_text:
        return ()
    parts = [part.strip() for part in arg_text.split(",")]
    if any(not part or " " in part for part in parts):
        raise ParseError(f"malformed argument list {arg_text!r}", lineno)
    return tuple(parts)


def read_bench(
    text: str, name: str = "bench", sequential: str = "cut"
) -> Tuple[Circuit, NetlistInfo]:
    """Parse ``.bench`` source text, returning the circuit and import info.

    ``sequential="cut"`` (default) extracts the combinational core of a
    sequential netlist — every ``DFF`` output becomes a pseudo primary
    input and every ``DFF`` data node a pseudo primary output, recorded
    on the returned :class:`~repro.circuit.io.NetlistInfo`;
    ``sequential="reject"`` raises :class:`ParseError` on the first
    state element instead.
    """
    assembler = NetlistAssembler("bench", case_sensitive=False)
    for lineno, line in _logical_lines(text):
        decl = _DECL_RE.match(line)
        if decl:
            kind = decl.group(1).upper()
            if kind == "INPUT":
                assembler.add_input(decl.group(2), lineno)
            else:
                assembler.add_output(decl.group(2), lineno)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match:
            target, type_name, arg_text = gate_match.groups()
            sources = _split_args(arg_text, lineno)
            type_key = type_name.upper()
            if type_key in _DFF_ALIASES:
                if len(sources) != 1:
                    raise ParseError(
                        f"{type_key} takes exactly one data input, "
                        f"got {len(sources)}",
                        lineno,
                    )
                assembler.add_flipflop(target, sources[0], lineno)
                continue
            gtype = _TYPE_ALIASES.get(type_key)
            if gtype is None:
                raise ParseError(f"unknown gate type {type_name!r}", lineno)
            assembler.add_gate(target, gtype, sources, lineno)
            continue
        raise ParseError(f"cannot parse {line!r}", lineno)
    return assembler.build(name, sequential)


def parse_bench(
    text: str, name: str = "bench", sequential: str = "cut"
) -> Circuit:
    """Parse ``.bench`` source text into a :class:`Circuit`."""
    circuit, _info = read_bench(text, name, sequential)
    return circuit


def load_bench(
    path: "str | pathlib.Path",
    name: "str | None" = None,
    sequential: str = "cut",
) -> Circuit:
    """Read and parse a ``.bench`` file.

    The default circuit name is the file's stem, resolved portably
    (``pathlib``), so ``C:\\bench\\c880.bench`` and ``nets/c880.bench``
    both name the circuit ``c880``.
    """
    path = pathlib.Path(path)
    text = path.read_text(encoding="utf-8")
    if name is None:
        name = path.stem
    return parse_bench(text, name, sequential)
