"""Reader for gate-level structural Verilog.

Covers the subset the gate-level benchmark distributions (ISCAS-85/89
Verilog translations, synthesized netlists of the same alphabet) use::

    // comment            /* block comments too */
    module c17 (N1, N2, N3, N6, N7, N22, N23);
      input N1, N2, N3, N6, N7;
      output N22, N23;
      wire N10, N11, N16, N19;
      nand g1 (N10, N1, N3);
      nand (N11, N3, N6);          // instance names are optional
      nand g3 (N16, N2, N11), g4 (N19, N11, N7);
      assign N22 = N10;            // identifier / ~identifier / 1'b0 / 1'b1
      dff r1 (Q, D);               // cut into pseudo-PI/PO like .bench DFFs
    endmodule

Supported declarations: ``input``/``output``/``wire`` lists with vector
ranges (``input [7:0] a`` expands to nodes ``a[7]`` ... ``a[0]``), the
gate primitives ``and or nand nor xor xnor not buf``, ``dff`` state
elements (combinational extraction, same semantics as the ``.bench``
reader), and ``assign`` of an identifier, its complement or a 1-bit
constant.  Primitive port order is Verilog's: output first, then the
inputs.  Everything is validated through the shared assembler, so
duplicate declarations, double-driven nets, undeclared sources and
undriven outputs fail with line-numbered
:class:`~repro.errors.ParseError` diagnostics.  Per the Verilog
standard, identifiers are case-sensitive (unlike ``.bench`` names).
"""

from __future__ import annotations

import pathlib
import re
from typing import Iterator, List, Tuple

from repro.circuit.io._netlist import NetlistAssembler, NetlistInfo
from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.errors import ParseError

__all__ = ["load_verilog", "parse_verilog", "read_verilog"]

_PRIMITIVES = {
    "and": GateType.AND,
    "or": GateType.OR,
    "nand": GateType.NAND,
    "nor": GateType.NOR,
    "xor": GateType.XOR,
    "xnor": GateType.XNOR,
    "not": GateType.NOT,
    "buf": GateType.BUF,
}

_DFF_KEYWORDS = frozenset({"dff", "dffp", "fd", "flipflop"})

_MODULE_RE = re.compile(
    r"^module\s+([A-Za-z_\\][\w$\\]*)\s*(?:\(([^)]*)\))?$"
)
_RANGE_RE = re.compile(r"^\[\s*(\d+)\s*:\s*(\d+)\s*\]$")
_IDENT_RE = re.compile(r"^[A-Za-z_\\][\w$\\]*(\[\d+\])?$")
_CONST_RE = re.compile(r"^1'[bB]([01])$")
_INSTANCE_RE = re.compile(
    r"^\s*(?:([A-Za-z_\\][\w$\\]*)\s*)?\(\s*([^()]*)\s*\)\s*$"
)
_ASSIGN_RE = re.compile(r"^assign\s+(\S+)\s*=\s*(.+)$")


def _strip_comments(text: str) -> str:
    """Blank out ``//`` and ``/* */`` comments, preserving line numbers."""
    out: List[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "/" and i + 1 < n:
            nxt = text[i + 1]
            if nxt == "/":
                end = text.find("\n", i)
                i = n if end < 0 else end
                continue
            if nxt == "*":
                end = text.find("*/", i + 2)
                if end < 0:
                    raise ParseError(
                        "unterminated /* comment",
                        text.count("\n", 0, i) + 1,
                    )
                out.append("\n" * text.count("\n", i, end + 2))
                i = end + 2
                continue
        out.append(ch)
        i += 1
    return "".join(out)


def _statements(text: str) -> Iterator[Tuple[int, str]]:
    """Split on ``;`` (and ``endmodule``), yielding ``(lineno, stmt)``."""
    lineno = 1
    pending_line = 1
    pending: List[str] = []
    for ch in text:
        if ch == ";":
            stmt = "".join(pending).strip()
            if stmt:
                yield pending_line, stmt
            pending = []
            continue
        if not pending:
            # Skip (un-buffered) whitespace between statements so
            # pending_line is the line of the statement's first real
            # character, not of the previous statement's ';'.
            if ch.isspace():
                if ch == "\n":
                    lineno += 1
                continue
            pending_line = lineno
        pending.append(ch)
        if ch == "\n":
            lineno += 1
    stmt = "".join(pending).strip()
    if stmt:
        yield pending_line, stmt


def _split_decl(body: str, lineno: int) -> List[str]:
    """Expand an input/output/wire declaration body into node names."""
    body = body.strip()
    match = re.match(r"^(\[[^\]]*\])\s*(.+)$", body)
    indices: "List[int] | None" = None
    if match:
        range_match = _RANGE_RE.match(match.group(1))
        if not range_match:
            raise ParseError(
                f"malformed vector range {match.group(1)!r}", lineno
            )
        msb, lsb = int(range_match.group(1)), int(range_match.group(2))
        step = -1 if msb >= lsb else 1
        indices = list(range(msb, lsb + step, step))
        body = match.group(2)
    names: List[str] = []
    for part in body.split(","):
        base = part.strip()
        if not base or not _IDENT_RE.match(base) or "[" in base:
            raise ParseError(f"malformed declaration name {base!r}", lineno)
        if indices is None:
            names.append(base)
        else:
            names.extend(f"{base}[{i}]" for i in indices)
    return names


def _check_net(name: str, lineno: int) -> str:
    name = name.strip()
    if not _IDENT_RE.match(name):
        raise ParseError(f"malformed net reference {name!r}", lineno)
    return name.lstrip("\\")


def _instances(body: str, lineno: int) -> Iterator[Tuple[str, List[str]]]:
    """Split ``g1 (a, b), g2 (c, d)`` into per-instance port lists."""
    depth = 0
    start = 0
    chunks: List[str] = []
    for i, ch in enumerate(body):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ParseError("unbalanced ')'", lineno)
        elif ch == "," and depth == 0:
            chunks.append(body[start:i])
            start = i + 1
    chunks.append(body[start:])
    for chunk in chunks:
        match = _INSTANCE_RE.match(chunk)
        if not match:
            raise ParseError(f"malformed instance {chunk.strip()!r}", lineno)
        ports = [
            _check_net(port, lineno)
            for port in match.group(2).split(",")
            if port.strip() or match.group(2).strip()
        ]
        yield (match.group(1) or ""), ports


def read_verilog(
    text: str, name: "str | None" = None, sequential: str = "cut"
) -> Tuple[Circuit, NetlistInfo]:
    """Parse structural Verilog source, returning circuit and import info."""
    assembler = NetlistAssembler("verilog", case_sensitive=True)
    module_name: "str | None" = None
    wires: set = set()
    done = False
    for lineno, stmt in _statements(_strip_comments(text)):
        stmt = re.sub(r"\s+", " ", stmt).strip()
        if done:
            raise ParseError(f"statement after endmodule: {stmt!r}", lineno)
        if stmt == "endmodule":
            done = True
            continue
        if stmt.startswith("endmodule"):
            # "endmodule" has no terminating ';' — the next statement
            # may have been glued onto it by the splitter.
            raise ParseError(
                f"statement after endmodule: {stmt[len('endmodule'):].strip()!r}",
                lineno,
            )
        if stmt.startswith("module"):
            match = _MODULE_RE.match(stmt)
            if not match:
                raise ParseError(f"malformed module header {stmt!r}", lineno)
            if module_name is not None:
                raise ParseError("duplicate module header", lineno)
            module_name = match.group(1).lstrip("\\")
            continue
        keyword = stmt.split(" ", 1)[0].lower()
        body = stmt[len(keyword):].strip()
        if keyword in ("input", "output", "wire"):
            for net in _split_decl(body, lineno):
                net = net.lstrip("\\")
                if keyword == "input":
                    assembler.add_input(net, lineno)
                elif keyword == "output":
                    assembler.add_output(net, lineno)
                else:
                    wires.add(net)
            continue
        if keyword in _PRIMITIVES:
            gtype = _PRIMITIVES[keyword]
            for label, ports in _instances(body, lineno):
                if len(ports) < 2:
                    raise ParseError(
                        f"{keyword} instance needs an output and at least "
                        f"one input, got {len(ports)} port(s)",
                        lineno,
                    )
                assembler.add_gate(
                    ports[0], gtype, tuple(ports[1:]), lineno
                )
            continue
        if keyword in _DFF_KEYWORDS:
            for label, ports in _instances(body, lineno):
                if len(ports) != 2:
                    raise ParseError(
                        f"{keyword} instance takes (Q, D), got "
                        f"{len(ports)} port(s)",
                        lineno,
                    )
                assembler.add_flipflop(ports[0], ports[1], lineno)
            continue
        if keyword == "assign":
            match = _ASSIGN_RE.match(stmt)
            if not match:
                raise ParseError(f"malformed assign {stmt!r}", lineno)
            lhs = _check_net(match.group(1), lineno)
            rhs = match.group(2).strip()
            const = _CONST_RE.match(rhs)
            if const:
                gtype = (
                    GateType.CONST1 if const.group(1) == "1"
                    else GateType.CONST0
                )
                assembler.add_gate(lhs, gtype, (), lineno)
            elif rhs.startswith("~"):
                src = _check_net(rhs[1:], lineno)
                assembler.add_gate(lhs, GateType.NOT, (src,), lineno)
            else:
                src = _check_net(rhs, lineno)
                assembler.add_gate(lhs, GateType.BUF, (src,), lineno)
            continue
        raise ParseError(f"cannot parse statement {stmt!r}", lineno)
    if module_name is None:
        raise ParseError("no module header found")
    if not done:
        raise ParseError("missing endmodule")
    return assembler.build(name or module_name, sequential)


def parse_verilog(
    text: str, name: "str | None" = None, sequential: str = "cut"
) -> Circuit:
    """Parse structural Verilog source text into a :class:`Circuit`."""
    circuit, _info = read_verilog(text, name, sequential)
    return circuit


def load_verilog(
    path: "str | pathlib.Path",
    name: "str | None" = None,
    sequential: str = "cut",
) -> Circuit:
    """Read and parse a structural Verilog (``.v``) file.

    Unlike ``.bench`` loading, the default circuit name comes from the
    ``module`` header (which the dialect requires), not the file stem.
    """
    path = pathlib.Path(path)
    return parse_verilog(
        path.read_text(encoding="utf-8"), name, sequential
    )
