"""Netlist import layer: industrial netlist ingestion for the library.

One front door for every supported on-disk netlist format::

    from repro.circuit.io import load_netlist

    circuit = load_netlist("nets/c7552.bench")      # ISCAS-85/89 .bench
    circuit = load_netlist("nets/c432.v")           # structural Verilog
    circuit = load_netlist("nets/demo.sdl")         # the library's SDL

Format is chosen by file suffix (:data:`NETLIST_SUFFIXES`);
:func:`is_netlist_path` is the cheap test the CLI, the sweep front-end
and :class:`~repro.api.engine.AnalysisEngine` use to tell a netlist path
from a registered circuit name.  The readers share one assembly layer
(:mod:`repro.circuit.io._netlist`) providing line-numbered diagnostics,
case-insensitive ``.bench`` node resolution, duplicate detection and
automatic combinational extraction of ``DFF`` state elements
(``sequential="cut"``); ``read_bench``/``read_verilog`` additionally
return a :class:`NetlistInfo` describing what the cut did.
"""

from __future__ import annotations

import pathlib

from repro.circuit.io._netlist import (
    SEQUENTIAL_MODES,
    NetlistAssembler,
    NetlistInfo,
)
from repro.circuit.io.bench import load_bench, parse_bench, read_bench
from repro.circuit.io.verilog import (
    load_verilog,
    parse_verilog,
    read_verilog,
)
from repro.circuit.netlist import Circuit
from repro.errors import ReproError

__all__ = [
    "NETLIST_SUFFIXES",
    "NetlistAssembler",
    "NetlistInfo",
    "SEQUENTIAL_MODES",
    "is_netlist_path",
    "load_bench",
    "load_netlist",
    "load_verilog",
    "parse_bench",
    "parse_verilog",
    "read_bench",
    "read_verilog",
]

#: Recognized netlist file suffixes, mapped to their loader.
NETLIST_SUFFIXES = (".bench", ".v", ".verilog", ".sdl")


def is_netlist_path(spec: "str | pathlib.Path") -> bool:
    """True when ``spec`` names a netlist file by suffix."""
    return str(spec).lower().endswith(NETLIST_SUFFIXES)


def load_netlist(
    path: "str | pathlib.Path",
    name: "str | None" = None,
    sequential: str = "cut",
) -> Circuit:
    """Load a netlist file, picking the reader from the file suffix."""
    suffix = pathlib.Path(path).suffix.lower()
    if suffix == ".bench":
        return load_bench(path, name, sequential)
    if suffix in (".v", ".verilog"):
        return load_verilog(path, name, sequential)
    if suffix == ".sdl":
        from repro.circuit.sdl import load_sdl

        circuit = load_sdl(str(path))
        if name is not None:
            circuit = Circuit(
                name, circuit.inputs, circuit.outputs,
                circuit.gates.values(),
            )
        return circuit
    raise ReproError(
        f"unknown netlist format {suffix!r} for {str(path)!r}; "
        f"supported suffixes: {', '.join(NETLIST_SUFFIXES)}"
    )
