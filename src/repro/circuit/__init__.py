"""Netlist substrate: circuit structures, parsers and structural analysis."""

from repro.circuit.builder import CircuitBuilder
from repro.circuit.io import (
    NetlistInfo,
    is_netlist_path,
    load_bench,
    load_netlist,
    load_verilog,
    parse_bench,
    parse_verilog,
    read_bench,
    read_verilog,
)
from repro.circuit.netlist import Circuit, Gate, Pin
from repro.circuit.sdl import format_sdl, load_sdl, parse_sdl, save_sdl
from repro.circuit.topology import Topology
from repro.circuit.transistors import (
    gate_equivalents,
    gate_transistors,
    transistor_count,
)
from repro.circuit.types import GateType
from repro.circuit.validate import Issue, check, validate
from repro.circuit.writer import format_bench, save_bench

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "Gate",
    "GateType",
    "Issue",
    "NetlistInfo",
    "Pin",
    "Topology",
    "check",
    "format_bench",
    "format_sdl",
    "gate_equivalents",
    "gate_transistors",
    "is_netlist_path",
    "load_bench",
    "load_netlist",
    "load_sdl",
    "load_verilog",
    "parse_bench",
    "parse_sdl",
    "parse_verilog",
    "read_bench",
    "read_verilog",
    "save_bench",
    "save_sdl",
    "transistor_count",
    "validate",
]
