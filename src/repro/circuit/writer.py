"""Serialization of circuits to the ISCAS-85/89 ``.bench`` format."""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.errors import CircuitError

__all__ = ["format_bench", "save_bench"]

_BENCH_NAMES = {
    GateType.AND: "AND",
    GateType.OR: "OR",
    GateType.NAND: "NAND",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}


def format_bench(
    circuit: Circuit,
    flipflops: Sequence[Tuple[str, str]] = (),
) -> str:
    """Serialize to ``.bench`` text.

    LUT gates have no ``.bench`` counterpart and raise
    :class:`~repro.errors.CircuitError`; use the SDL writer for those.

    ``flipflops`` re-sequentializes a combinational extraction: each
    ``(q, d)`` pair must name a pseudo primary input ``q`` and its data
    node ``d`` (as reported by
    :class:`~repro.circuit.io.NetlistInfo`); ``q`` is emitted as a
    ``q = DFF(d)`` state element instead of an ``INPUT`` declaration,
    and ``d`` loses the ``OUTPUT`` declaration the cut added — the
    ISCAS-89 shape :func:`repro.circuit.io.read_bench` round-trips.
    """
    q_nodes = {q for q, _d in flipflops}
    d_nodes = {d for _q, d in flipflops}
    for q, d in flipflops:
        if not circuit.is_input(q):
            raise CircuitError(
                f"flip-flop output {q!r} is not a primary input of the "
                "combinational extraction"
            )
        if not circuit.has_node(d):
            raise CircuitError(f"flip-flop data node {d!r} does not exist")
    lines = [f"# {circuit.name}"]
    for node in circuit.inputs:
        if node not in q_nodes:
            lines.append(f"INPUT({node})")
    for node in circuit.outputs:
        if node not in d_nodes:
            lines.append(f"OUTPUT({node})")
    for q, d in flipflops:
        lines.append(f"{q} = DFF({d})")
    for node in circuit.nodes:
        if circuit.is_input(node):
            continue
        gate = circuit.gates[node]
        type_name = _BENCH_NAMES.get(gate.gtype)
        if type_name is None:
            raise CircuitError(
                f"gate {gate.name!r}: {gate.gtype} cannot be written to "
                ".bench; use SDL instead"
            )
        lines.append(f"{gate.name} = {type_name}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.bench`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_bench(circuit))
