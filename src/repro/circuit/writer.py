"""Serialization of circuits to the ISCAS-85 ``.bench`` format."""

from __future__ import annotations

from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.errors import CircuitError

__all__ = ["format_bench", "save_bench"]

_BENCH_NAMES = {
    GateType.AND: "AND",
    GateType.OR: "OR",
    GateType.NAND: "NAND",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.NOT: "NOT",
    GateType.BUF: "BUFF",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}


def format_bench(circuit: Circuit) -> str:
    """Serialize to ``.bench`` text.

    LUT gates have no ``.bench`` counterpart and raise
    :class:`~repro.errors.CircuitError`; use the SDL writer for those.
    """
    lines = [f"# {circuit.name}"]
    for node in circuit.inputs:
        lines.append(f"INPUT({node})")
    for node in circuit.outputs:
        lines.append(f"OUTPUT({node})")
    for node in circuit.nodes:
        if circuit.is_input(node):
            continue
        gate = circuit.gates[node]
        type_name = _BENCH_NAMES.get(gate.gtype)
        if type_name is None:
            raise CircuitError(
                f"gate {gate.name!r}: {gate.gtype} cannot be written to "
                ".bench; use SDL instead"
            )
        lines.append(f"{gate.name} = {type_name}({', '.join(gate.inputs)})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: str) -> None:
    """Write a circuit to a ``.bench`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_bench(circuit))
