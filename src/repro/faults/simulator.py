"""Parallel-pattern single-fault simulation.

For every fault the simulator injects the stuck value and propagates the
*difference* region event-driven through the fan-out cone, over a whole
block of packed patterns at once.  Per fault it records

* the number of detecting patterns (``P_SIM = count / N``, the paper's
  simulation reference of §4), and
* the index of the first detecting pattern (for the coverage-growth curves
  of Table 6).

``drop_detected=True`` skips already-detected faults in later blocks (the
classical fault dropping), which leaves first-detection indices exact but
makes detection *counts* lower bounds.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.circuit.types import eval_packed
from repro.errors import SimulationError
from repro.faults.model import Fault, fault_universe
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate

__all__ = ["FaultSimulator", "FaultSimResult", "FaultRecord"]


@dataclasses.dataclass
class FaultRecord:
    """Per-fault outcome of a simulation run."""

    fault: Fault
    detect_count: int = 0
    first_detect: Optional[int] = None
    simulated_patterns: int = 0

    @property
    def detected(self) -> bool:
        return self.first_detect is not None

    @property
    def detection_probability(self) -> float:
        """Empirical detection probability (``P_SIM``)."""
        if self.simulated_patterns == 0:
            return 0.0
        return self.detect_count / self.simulated_patterns


class FaultSimResult:
    """Aggregate outcome of a fault-simulation run."""

    def __init__(
        self,
        records: Dict[Fault, FaultRecord],
        n_patterns: int,
        dropped: bool,
    ) -> None:
        self.records = records
        self.n_patterns = n_patterns
        self.dropped = dropped

    @property
    def faults(self) -> List[Fault]:
        return list(self.records)

    def coverage(self) -> float:
        """Fraction of faults detected by the whole pattern set."""
        if not self.records:
            return 0.0
        detected = sum(1 for r in self.records.values() if r.detected)
        return detected / len(self.records)

    def coverage_at(self, n: int) -> float:
        """Fault coverage after the first ``n`` patterns."""
        if not self.records:
            return 0.0
        detected = sum(
            1
            for r in self.records.values()
            if r.first_detect is not None and r.first_detect < n
        )
        return detected / len(self.records)

    def coverage_curve(self, checkpoints: Sequence[int]) -> List[float]:
        """Coverage after each checkpoint pattern count (Table 6 rows)."""
        return [self.coverage_at(n) for n in checkpoints]

    def detection_probabilities(self) -> Dict[Fault, float]:
        """``P_SIM`` per fault; exact only without fault dropping."""
        if self.dropped:
            raise SimulationError(
                "detection counts are lower bounds after fault dropping; "
                "re-run with drop_detected=False for P_SIM"
            )
        return {
            fault: record.detection_probability
            for fault, record in self.records.items()
        }

    def undetected(self) -> List[Fault]:
        return [f for f, r in self.records.items() if not r.detected]


class FaultSimulator:
    """Stuck-at fault simulator for one circuit."""

    def __init__(
        self,
        circuit: Circuit,
        faults: "Iterable[Fault] | None" = None,
    ) -> None:
        self.circuit = circuit
        self.topology = Topology(circuit)
        self._gates = circuit.gates
        self._topo_index = self.topology.topo_index
        self._output_set = frozenset(circuit.outputs)
        self.faults: List[Fault] = (
            list(faults) if faults is not None else fault_universe(circuit)
        )
        for fault in self.faults:
            self._check_fault(fault)

    def _check_fault(self, fault: Fault) -> None:
        if fault.pin is None:
            if not self.circuit.has_node(fault.node):
                raise SimulationError(f"fault on unknown node {fault.node!r}")
            return
        gate = self._gates.get(fault.node)
        if gate is None:
            raise SimulationError(
                f"branch fault on {fault.node!r}, which is not a gate"
            )
        if fault.pin >= gate.arity:
            raise SimulationError(
                f"branch fault pin {fault.pin} out of range for "
                f"{fault.node!r} (arity {gate.arity})"
            )

    # -- main entry point -------------------------------------------------------

    def run(
        self,
        patterns: PatternSet,
        block_size: int = 1024,
        drop_detected: bool = False,
    ) -> FaultSimResult:
        """Simulate all faults against all patterns.

        Patterns are processed in blocks of ``block_size``; within a block
        the propagation is bit-parallel.
        """
        if patterns.n_patterns == 0:
            raise SimulationError("empty pattern set")
        if block_size < 1:
            raise SimulationError("block_size must be positive")
        records = {fault: FaultRecord(fault) for fault in self.faults}
        offset = 0
        while offset < patterns.n_patterns:
            stop = min(offset + block_size, patterns.n_patterns)
            block = patterns.slice(offset, stop)
            good = simulate(self.circuit, block)
            mask = block.mask
            for fault in self.faults:
                record = records[fault]
                if drop_detected and record.detected:
                    continue
                detect = self.detection_word(fault, good, mask)
                record.simulated_patterns += block.n_patterns
                if detect:
                    record.detect_count += detect.bit_count()
                    if record.first_detect is None:
                        first = (detect & -detect).bit_length() - 1
                        record.first_detect = offset + first
            offset = stop
        return FaultSimResult(records, patterns.n_patterns, drop_detected)

    def detection_probabilities(
        self, patterns: PatternSet, block_size: int = 4096
    ) -> Dict[Fault, float]:
        """Convenience: exact ``P_SIM`` map over the given pattern set."""
        result = self.run(patterns, block_size=block_size, drop_detected=False)
        return result.detection_probabilities()

    # -- single-fault propagation -------------------------------------------------

    def detection_word(
        self,
        fault: Fault,
        good: Mapping[str, int],
        mask: int,
    ) -> int:
        """Detection word of one fault over one block (bit per pattern).

        ``good`` are fault-free packed node values (from
        :func:`repro.logicsim.simulate`); bit *j* of the result is set when
        pattern *j* detects the fault at some primary output.
        """
        forced = mask if fault.value else 0
        overlay: Dict[str, int] = {}
        detect = 0
        heap: List[tuple] = []
        queued = set()

        def schedule(node: str) -> None:
            for consumer, _pin in self.topology.branches[node]:
                if consumer not in queued:
                    queued.add(consumer)
                    heapq.heappush(
                        heap, (self._topo_index[consumer], consumer)
                    )

        first_gate: Optional[str] = None
        if fault.pin is None:
            diff = good[fault.node] ^ forced
            if diff == 0:
                return 0
            overlay[fault.node] = forced
            if fault.node in self._output_set:
                detect |= diff
            schedule(fault.node)
        else:
            first_gate = fault.node
            queued.add(first_gate)
            heapq.heappush(heap, (self._topo_index[first_gate], first_gate))

        while heap:
            _, name = heapq.heappop(heap)
            gate = self._gates[name]
            operands = [
                overlay.get(src, good[src]) for src in gate.inputs
            ]
            if name == first_gate and fault.pin is not None:
                operands[fault.pin] = forced
            word = eval_packed(gate.gtype, operands, mask, gate.table)
            if word == good[name]:
                continue
            overlay[name] = word
            if name in self._output_set:
                detect |= word ^ good[name]
            schedule(name)
        return detect & mask
