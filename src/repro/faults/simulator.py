"""Parallel-pattern single-fault simulation.

For every fault the simulator injects the stuck value and propagates the
*difference* region through the fan-out cone, over a whole block of
packed patterns at once.  Per fault it records

* the number of detecting patterns (``P_SIM = count / N``, the paper's
  simulation reference of §4), and
* the index of the first detecting pattern (for the coverage-growth curves
  of Table 6).

``drop_detected=True`` skips already-detected faults in later blocks (the
classical fault dropping), which leaves first-detection indices exact but
makes detection *counts* lower bounds.

Block propagation runs on a pluggable evaluation backend
(:mod:`repro.backends`) over the compiled kernel (:mod:`repro.kernel`):
the ``"python"`` backend packs faults into big-int lanes and propagates
the merged difference region, the ``"numpy"`` backend sweeps
register-allocated fan-out-cone programs over word matrices — every
backend produces bit-identical detection words.  ``use_kernel=False``
selects the legacy event-driven interpreter (parity reference and perf
baseline).  The single-fault :meth:`FaultSimulator.detection_word`
primitive (ATPG, the exact enumerator) always runs on the packed
python kernel regardless of backend.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.circuit.types import eval_packed
from repro.errors import SimulationError
from repro.faults.model import Fault, fault_universe
from repro.kernel import compile_circuit
from repro.logicsim.patterns import PatternSet
from repro.logicsim.simulator import simulate
from repro.telemetry.metrics import REGISTRY
from repro.telemetry.profiling import phase_if_active
from repro.telemetry.tracing import span

__all__ = ["FaultSimulator", "FaultSimResult", "FaultRecord"]

_SIM_RUNS = REGISTRY.counter(
    "protest_faultsim_runs_total",
    "Fault-simulation runs per evaluation backend",
    ("backend",),
)
_SIM_FAULT_PATTERNS = REGISTRY.counter(
    "protest_backend_fault_patterns_total",
    "Fault x pattern evaluations per evaluation backend",
    ("backend",),
)
_SIM_SECONDS = REGISTRY.counter(
    "protest_backend_seconds_total",
    "Wall-clock seconds spent in fault simulation per backend",
    ("backend",),
)




@dataclasses.dataclass
class FaultRecord:
    """Per-fault outcome of a simulation run."""

    fault: Fault
    detect_count: int = 0
    first_detect: Optional[int] = None
    simulated_patterns: int = 0

    @property
    def detected(self) -> bool:
        return self.first_detect is not None

    @property
    def detection_probability(self) -> float:
        """Empirical detection probability (``P_SIM``)."""
        if self.simulated_patterns == 0:
            return 0.0
        return self.detect_count / self.simulated_patterns


class FaultSimResult:
    """Aggregate outcome of a fault-simulation run."""

    def __init__(
        self,
        records: Dict[Fault, FaultRecord],
        n_patterns: int,
        dropped: bool,
    ) -> None:
        self.records = records
        self.n_patterns = n_patterns
        self.dropped = dropped

    @property
    def faults(self) -> List[Fault]:
        return list(self.records)

    def coverage(self) -> float:
        """Fraction of faults detected by the whole pattern set."""
        if not self.records:
            return 0.0
        detected = sum(1 for r in self.records.values() if r.detected)
        return detected / len(self.records)

    def coverage_at(self, n: int) -> float:
        """Fault coverage after the first ``n`` patterns."""
        if not self.records:
            return 0.0
        detected = sum(
            1
            for r in self.records.values()
            if r.first_detect is not None and r.first_detect < n
        )
        return detected / len(self.records)

    def coverage_curve(self, checkpoints: Sequence[int]) -> List[float]:
        """Coverage after each checkpoint pattern count (Table 6 rows)."""
        return [self.coverage_at(n) for n in checkpoints]

    def detection_probabilities(self) -> Dict[Fault, float]:
        """``P_SIM`` per fault; exact only without fault dropping."""
        if self.dropped:
            raise SimulationError(
                "detection counts are lower bounds after fault dropping; "
                "re-run with drop_detected=False for P_SIM"
            )
        return {
            fault: record.detection_probability
            for fault, record in self.records.items()
        }

    def undetected(self) -> List[Fault]:
        return [f for f, r in self.records.items() if not r.detected]


class FaultSimulator:
    """Stuck-at fault simulator for one circuit.

    ``topology`` lets callers (the :class:`repro.api.AnalysisEngine`)
    share an already-built structural view; it is only materialized when
    the legacy path needs it.
    """

    def __init__(
        self,
        circuit: Circuit,
        faults: "Iterable[Fault] | None" = None,
        use_kernel: bool = True,
        topology: "Topology | None" = None,
        backend=None,
    ) -> None:
        self.circuit = circuit
        self._topology = topology
        self._gates = circuit.gates
        self._output_set = frozenset(circuit.outputs)
        self._use_kernel = use_kernel
        self.faults: List[Fault] = (
            list(faults) if faults is not None else fault_universe(circuit)
        )
        for fault in self.faults:
            self._check_fault(fault)
        if use_kernel:
            from repro.backends import resolve_backend

            self._backend = resolve_backend(backend, circuit)
            self._compiled = compile_circuit(circuit, self._backend)
            self._scratch = self._backend.make_scratch(
                self._compiled, self.faults
            )
        else:
            if backend is not None:
                raise SimulationError(
                    "backend selection requires the compiled kernel "
                    "(use_kernel=True)"
                )
            self._backend = None
            self._compiled = None
            self._scratch = None
        if self._compiled is not None:
            n = self._compiled.n_nodes
            # Version-stamped overlay scratch of the single-fault
            # detection_word path (owned per simulator so one compiled
            # artifact can serve concurrent simulators).
            self._faulty = [0] * n
            self._stamp = [0] * n
            self._version = 0
            self._spec_cache: Dict[Fault, tuple] = {}
            self._last_good: "Mapping[str, int] | None" = None
            self._last_good_arr: "List[int] | None" = None

    @property
    def backend(self):
        """The active block-evaluation backend (``None`` on the legacy path)."""
        return self._backend

    @property
    def topology(self) -> Topology:
        if self._topology is None:
            self._topology = Topology(self.circuit)
        return self._topology

    @property
    def _topo_index(self) -> Dict[str, int]:
        return self.topology.topo_index

    def _check_fault(self, fault: Fault) -> None:
        if fault.pin is None:
            if not self.circuit.has_node(fault.node):
                raise SimulationError(f"fault on unknown node {fault.node!r}")
            return
        gate = self._gates.get(fault.node)
        if gate is None:
            raise SimulationError(
                f"branch fault on {fault.node!r}, which is not a gate"
            )
        if fault.pin >= gate.arity:
            raise SimulationError(
                f"branch fault pin {fault.pin} out of range for "
                f"{fault.node!r} (arity {gate.arity})"
            )

    # -- main entry point -------------------------------------------------------

    def run(
        self,
        patterns: PatternSet,
        block_size: int = 1024,
        drop_detected: bool = False,
    ) -> FaultSimResult:
        """Simulate all faults against all patterns.

        Patterns are processed in blocks of ``block_size``; within a block
        the propagation is bit-parallel.
        """
        if patterns.n_patterns == 0:
            raise SimulationError("empty pattern set")
        if block_size < 1:
            raise SimulationError("block_size must be positive")
        backend_name = (
            self._backend.name if self._backend is not None else "legacy"
        )
        records = {fault: FaultRecord(fault) for fault in self.faults}
        evaluated = 0
        with span(
            "faultsim.run",
            circuit=self.circuit.name,
            backend=backend_name,
            faults=len(self.faults),
            patterns=patterns.n_patterns,
        ) as run_span:
            offset = 0
            while offset < patterns.n_patterns:
                stop = min(offset + block_size, patterns.n_patterns)
                block = patterns.slice(offset, stop)
                mask = block.mask
                if self._compiled is not None:
                    alive = [
                        fault
                        for fault in self.faults
                        if not (drop_detected and records[fault].detected)
                    ]
                    if alive:
                        with span(
                            "backend.fault_sim_words",
                            backend=backend_name,
                            faults=len(alive),
                            patterns=block.n_patterns,
                        ), phase_if_active(backend_name):
                            detect_words = self._backend.fault_sim_words(
                                self._compiled, self._scratch, alive,
                                block.words, mask, block.n_patterns,
                            )
                        evaluated += len(alive) * block.n_patterns
                        for fault in alive:
                            record = records[fault]
                            record.simulated_patterns += block.n_patterns
                            detect = detect_words.get(fault, 0)
                            if detect:
                                record.detect_count += detect.bit_count()
                                if record.first_detect is None:
                                    first = (detect & -detect).bit_length() - 1
                                    record.first_detect = offset + first
                else:
                    good_map = simulate(self.circuit, block, use_kernel=False)
                    for fault in self.faults:
                        record = records[fault]
                        if drop_detected and record.detected:
                            continue
                        detect = self._legacy_detection_word(
                            fault, good_map, mask
                        )
                        record.simulated_patterns += block.n_patterns
                        evaluated += block.n_patterns
                        if detect:
                            record.detect_count += detect.bit_count()
                            if record.first_detect is None:
                                first = (detect & -detect).bit_length() - 1
                                record.first_detect = offset + first
                offset = stop
            run_span.set("fault_patterns", evaluated)
        _SIM_RUNS.labels(backend=backend_name).inc()
        _SIM_FAULT_PATTERNS.labels(backend=backend_name).inc(evaluated)
        _SIM_SECONDS.labels(backend=backend_name).inc(run_span.duration)
        return FaultSimResult(records, patterns.n_patterns, drop_detected)

    def detection_probabilities(
        self, patterns: PatternSet, block_size: int = 4096
    ) -> Dict[Fault, float]:
        """Convenience: exact ``P_SIM`` map over the given pattern set."""
        result = self.run(patterns, block_size=block_size, drop_detected=False)
        return result.detection_probabilities()

    # -- single-fault propagation -------------------------------------------------

    def detection_word(
        self,
        fault: Fault,
        good: Mapping[str, int],
        mask: int,
    ) -> int:
        """Detection word of one fault over one block (bit per pattern).

        ``good`` are fault-free packed node values (from
        :func:`repro.logicsim.simulate`); bit *j* of the result is set when
        pattern *j* detects the fault at some primary output.
        """
        if self._compiled is not None:
            # Callers (ATPG, the exact enumerator) loop many faults over
            # one good mapping: convert it to a flat array once.  The
            # strong reference keeps the id stable while memoized.
            if self._last_good is not good:
                self._last_good_arr = self._compiled.values_from_dict(good)
                self._last_good = good
            return self._kernel_detection_word(
                self._fault_spec(fault), self._last_good_arr, mask
            )
        return self._legacy_detection_word(fault, good, mask)

    # -- compiled-kernel propagation ------------------------------------------------

    def _fault_spec(self, fault: Fault) -> tuple:
        """Precompiled per-fault injection data.

        ``(site index, pin, stuck-at-one?, site is output?, cone plan
        entries, site operand indices or None)`` — everything the inner
        loop needs, resolved once per fault site.
        """
        spec = self._spec_cache.get(fault)
        if spec is None:
            compiled = self._compiled
            site = compiled.index[fault.node]
            args = compiled.args_of[site] if fault.pin is not None else None
            spec = (
                site,
                fault.pin,
                bool(fault.value),
                compiled.is_output[site],
                compiled.cone_entries(site),
                args,
            )
            self._spec_cache[fault] = spec
        return spec

    def _kernel_detection_word(
        self, spec: tuple, good: List[int], mask: int
    ) -> int:
        """Re-evaluate one fault's precompiled cone slice with one override."""
        site, pin, stuck_one, site_is_out, cone, site_args = spec
        forced = mask if stuck_one else 0
        compiled = self._compiled
        faulty = self._faulty
        stamp = self._stamp
        self._version = version = self._version + 1
        if pin is None:
            diff = good[site] ^ forced
            if not diff:
                return 0
            word = forced
        else:
            # Branch fault: the gate is re-evaluated with one input forced;
            # its own stem keeps the good value upstream.
            operands = [good[a] for a in site_args]
            operands[pin] = forced
            word = compiled.direct_fn[site](
                operands, mask, compiled.tables[site]
            )
            diff = word ^ good[site]
            if not diff:
                return 0
        faulty[site] = word
        stamp[site] = version
        detect = diff if site_is_out else 0
        for i, fn, args, table, is_out in cone:
            changed = False
            for a in args:
                if stamp[a] == version:
                    changed = True
                    break
            if not changed:
                continue
            word = fn(faulty, stamp, version, good, args, mask, table)
            if word == good[i]:
                continue
            faulty[i] = word
            stamp[i] = version
            if is_out:
                detect |= word ^ good[i]
        return detect & mask

    # -- legacy event-driven propagation --------------------------------------------

    def _legacy_detection_word(
        self,
        fault: Fault,
        good: Mapping[str, int],
        mask: int,
    ) -> int:
        """Heap-scheduled difference propagation (pre-kernel behaviour)."""
        forced = mask if fault.value else 0
        overlay: Dict[str, int] = {}
        detect = 0
        heap: List[tuple] = []
        queued = set()
        topo_index = self._topo_index
        branches = self.topology.branches

        def schedule(node: str) -> None:
            for consumer, _pin in branches[node]:
                if consumer not in queued:
                    queued.add(consumer)
                    heapq.heappush(heap, (topo_index[consumer], consumer))

        first_gate: Optional[str] = None
        if fault.pin is None:
            diff = good[fault.node] ^ forced
            if diff == 0:
                return 0
            overlay[fault.node] = forced
            if fault.node in self._output_set:
                detect |= diff
            schedule(fault.node)
        else:
            first_gate = fault.node
            queued.add(first_gate)
            heapq.heappush(heap, (topo_index[first_gate], first_gate))

        while heap:
            _, name = heapq.heappop(heap)
            gate = self._gates[name]
            operands = [
                overlay.get(src, good[src]) for src in gate.inputs
            ]
            if name == first_gate and fault.pin is not None:
                operands[fault.pin] = forced
            word = eval_packed(gate.gtype, operands, mask, gate.table)
            if word == good[name]:
                continue
            overlay[name] = word
            if name in self._output_set:
                detect |= word ^ good[name]
            schedule(name)
        return detect & mask
