"""Stuck-at fault model, collapsing and parallel-pattern fault simulation."""

from repro.faults.collapse import CollapsedFaults, collapse
from repro.faults.coverage import (
    TABLE6_CHECKPOINTS,
    coverage_table,
    predicted_coverage,
)
from repro.faults.model import (
    Fault,
    branch_faults,
    fault_universe,
    faults_for_nodes,
    stem_faults,
)
from repro.faults.simulator import FaultRecord, FaultSimResult, FaultSimulator

__all__ = [
    "CollapsedFaults",
    "Fault",
    "FaultRecord",
    "FaultSimResult",
    "FaultSimulator",
    "TABLE6_CHECKPOINTS",
    "branch_faults",
    "collapse",
    "coverage_table",
    "fault_universe",
    "faults_for_nodes",
    "predicted_coverage",
    "stem_faults",
]
