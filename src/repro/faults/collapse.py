"""Structural fault-equivalence collapsing.

Two faults are equivalent when every test detects either both or neither.
The classical structural rules are applied:

* AND/NAND: any input s-a-0 is equivalent to the output s-a-0 (AND) /
  s-a-1 (NAND); dually OR/NOR with input s-a-1.
* NOT/BUF: each input fault is equivalent to the correspondingly
  (un)inverted output fault.
* A fan-out-free stem fault is equivalent to the single branch fault it
  feeds.

Collapsing is exact (equivalence only, no dominance), so every collapsed
class has identical detection behaviour — a property the test suite checks
by simulation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.circuit.types import GateType, controlling_value, inversion_parity
from repro.faults.model import Fault, fault_universe

__all__ = ["collapse", "CollapsedFaults"]


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[Fault, Fault] = {}

    def find(self, item: Fault) -> Fault:
        parent = self.parent.setdefault(item, item)
        if parent is item:
            return item
        root = self.find(parent)
        self.parent[item] = root
        return root

    def union(self, a: Fault, b: Fault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            self.parent[rb] = ra


class CollapsedFaults:
    """Result of :func:`collapse`: representatives and their classes."""

    def __init__(self, classes: Dict[Fault, List[Fault]]) -> None:
        self.classes = classes

    @property
    def representatives(self) -> List[Fault]:
        return sorted(self.classes, key=lambda f: f.sort_key)

    def class_of(self, representative: Fault) -> List[Fault]:
        return self.classes[representative]

    @property
    def n_collapsed(self) -> int:
        return len(self.classes)

    @property
    def n_total(self) -> int:
        return sum(len(members) for members in self.classes.values())

    def __len__(self) -> int:
        return len(self.classes)


def collapse(
    circuit: Circuit,
    faults: "Sequence[Fault] | None" = None,
) -> CollapsedFaults:
    """Collapse a fault list (default: the full universe) by equivalence."""
    if faults is None:
        faults = fault_universe(circuit)
    available = set(faults)
    uf = _UnionFind()
    topo = Topology(circuit)

    def maybe_union(a: Fault, b: Fault) -> None:
        if a in available and b in available:
            uf.union(a, b)

    for gate in circuit.gates.values():
        gtype = gate.gtype
        ctrl = controlling_value(gtype)
        inverts = inversion_parity(gtype)
        if gtype in (GateType.NOT, GateType.BUF):
            flip = 1 if gtype is GateType.NOT else 0
            for value in (0, 1):
                maybe_union(
                    Fault(gate.name, 0, value),
                    Fault(gate.name, None, value ^ flip),
                )
        elif ctrl is not None and inverts is not None:
            out_value = ctrl ^ (1 if inverts else 0)
            for pin in range(gate.arity):
                maybe_union(
                    Fault(gate.name, pin, ctrl),
                    Fault(gate.name, None, out_value),
                )
        # Fan-out-free stems: stem fault == its only branch fault.
        for pin, src in enumerate(gate.inputs):
            if topo.fanout_degree(src) == 1:
                for value in (0, 1):
                    maybe_union(
                        Fault(src, None, value),
                        Fault(gate.name, pin, value),
                    )

    classes: Dict[Fault, List[Fault]] = {}
    for fault in faults:
        root = uf.find(fault)
        classes.setdefault(root, []).append(fault)
    # Prefer a stem fault as the class representative.
    normalized: Dict[Fault, List[Fault]] = {}
    for members in classes.values():
        members.sort(key=lambda f: f.sort_key)
        normalized[members[0]] = members
    return CollapsedFaults(normalized)
