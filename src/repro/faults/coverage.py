"""Coverage-curve helpers (Table 6 style reporting)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.faults.simulator import FaultSimResult

__all__ = ["TABLE6_CHECKPOINTS", "coverage_table", "predicted_coverage"]

#: The pattern counts reported in the paper's Table 6.
TABLE6_CHECKPOINTS = (
    10, 100, 1000, 2000, 3000, 4000, 5000, 6000,
    7000, 8000, 9000, 10000, 11000, 12000,
)


def coverage_table(
    results: Dict[str, FaultSimResult],
    checkpoints: Sequence[int] = TABLE6_CHECKPOINTS,
) -> List[List[str]]:
    """Rows of a Table-6 style coverage table.

    ``results`` maps column labels (e.g. ``"DIV not optim."``) to fault
    simulation results; each row is a checkpoint with coverage percentages.
    """
    labels = list(results)
    rows: List[List[str]] = []
    for n in checkpoints:
        row = [str(n)]
        for label in labels:
            result = results[label]
            if n > result.n_patterns:
                row.append("-")
            else:
                row.append(f"{100.0 * result.coverage_at(n):.1f}")
        rows.append(row)
    return rows


def predicted_coverage(
    detection_probs: Sequence[float], n_patterns: int
) -> float:
    """Expected fault coverage after ``n_patterns`` random patterns.

    ``E[cov] = mean_f (1 - (1 - P_f)^N)`` — the estimator-side counterpart
    of a simulated coverage curve, used to cross-check Table 6 predictions.
    """
    if not detection_probs:
        return 0.0
    import math

    total = 0.0
    for p in detection_probs:
        if p <= 0.0:
            continue
        if p >= 1.0:
            total += 1.0
            continue
        total += 1.0 - math.exp(n_patterns * math.log1p(-p))
    return total / len(detection_probs)
