"""Single stuck-at fault model on gate pins.

The paper's faults live on component *pins* ("the detection probability of
a stuck-at-i, i=0,1, fault at x", §3): both the output pins of gates /
primary inputs (**stem** faults) and the input pins of gates (**branch**
faults, distinct fault sites on every fan-out branch).
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.errors import ReproError

__all__ = ["Fault", "fault_universe", "stem_faults", "branch_faults"]


@dataclasses.dataclass(frozen=True)
class Fault:
    """One stuck-at fault.

    ``pin is None``: stem fault on node ``node`` (a primary input or a gate
    output).  Otherwise: branch fault on input pin ``pin`` of gate ``node``.
    ``value`` is the stuck logic value (0 or 1).
    """

    node: str
    pin: Optional[int]
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ReproError(f"stuck value must be 0/1, got {self.value!r}")
        if self.pin is not None and self.pin < 0:
            raise ReproError(f"negative pin index {self.pin}")

    @property
    def is_stem(self) -> bool:
        return self.pin is None

    @property
    def site(self) -> str:
        """Human-readable fault site."""
        if self.pin is None:
            return self.node
        return f"{self.node}.in{self.pin}"

    def __str__(self) -> str:
        return f"{self.site} s-a-{self.value}"

    @property
    def sort_key(self) -> "tuple[bool, str, int, int]":
        """Stable ordering key (stems first, then by site)."""
        return (self.pin is not None, self.node, self.pin or 0, self.value)


def stem_faults(circuit: Circuit) -> List[Fault]:
    """Both polarities on every node (primary inputs and gate outputs)."""
    faults: List[Fault] = []
    for node in circuit.nodes:
        faults.append(Fault(node, None, 0))
        faults.append(Fault(node, None, 1))
    return faults


def branch_faults(circuit: Circuit, only_fanout_stems: bool = False) -> List[Fault]:
    """Both polarities on every gate input pin.

    With ``only_fanout_stems=True``, pins fed by a fan-out-free node are
    skipped (they are equivalent to the driving stem fault anyway); this is
    the cheap half of checkpoint-style reduction.
    """
    from repro.circuit.topology import Topology

    topo = Topology(circuit) if only_fanout_stems else None
    faults: List[Fault] = []
    for gate in circuit.gates.values():
        for pin, src in enumerate(gate.inputs):
            if topo is not None and topo.fanout_degree(src) <= 1:
                continue
            faults.append(Fault(gate.name, pin, 0))
            faults.append(Fault(gate.name, pin, 1))
    return faults


def fault_universe(
    circuit: Circuit,
    include_branches: bool = True,
    only_fanout_stems: bool = False,
) -> List[Fault]:
    """The full uncollapsed stuck-at fault list of a circuit."""
    faults = stem_faults(circuit)
    if include_branches:
        faults.extend(branch_faults(circuit, only_fanout_stems))
    return faults


def faults_for_nodes(circuit: Circuit, nodes: Sequence[str]) -> Iterator[Fault]:
    """Stem faults restricted to the given nodes (both polarities)."""
    for node in nodes:
        if not circuit.has_node(node):
            raise ReproError(f"unknown node {node!r}")
        yield Fault(node, None, 0)
        yield Fault(node, None, 1)
