"""The :class:`Protest` facade — the tool's workflow in one object.

Mirrors the input/output contract of the original tool (paper §1):

* estimated signal probability at each node for a given input tuple;
* estimated detection probability of each fault;
* the number of patterns needed for a required fault coverage with a
  desired confidence;
* an optimized tuple of input signal probabilities;
* random pattern sets realizing a tuple of probabilities;
* results of a static fault simulation with those patterns.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.detection.estimator import DetectionProbabilityEstimator
from repro.errors import EstimationError
from repro.faults.model import Fault, fault_universe
from repro.faults.simulator import FaultSimResult, FaultSimulator
from repro.logicsim.patterns import PatternSet
from repro.optimize.hillclimb import (
    OptimizationResult,
    optimize_input_probabilities,
)
from repro.probability.estimator import (
    EstimatorParams,
    SignalProbabilities,
    SignalProbabilityEstimator,
)
from repro.report.tables import ascii_table, format_count
from repro.testlen.length import expected_coverage, required_test_length

__all__ = ["Protest", "TestabilityReport"]


@dataclasses.dataclass
class TestabilityReport:
    """Summary of one analysis run (printable)."""

    circuit_name: str
    n_faults: int
    min_detection: float
    median_detection: float
    hardest_faults: List[Tuple[Fault, float]]
    test_lengths: Dict[Tuple[float, float], int]

    def to_text(self) -> str:
        lines = [
            f"PROTEST analysis of {self.circuit_name}",
            f"  faults analysed: {self.n_faults}",
            f"  min / median estimated P_f: "
            f"{self.min_detection:.3e} / {self.median_detection:.3e}",
            "  hardest faults:",
        ]
        for fault, p in self.hardest_faults:
            lines.append(f"    {str(fault):30s} P_f = {p:.3e}")
        rows = [
            [f"{d:.2f}", f"{e:.3f}", format_count(n)]
            for (d, e), n in sorted(self.test_lengths.items())
        ]
        lines.append(
            ascii_table(["d", "e", "N"], rows, title="  required test lengths")
        )
        return "\n".join(lines)


class Protest:
    """Probabilistic testability analysis of one combinational circuit."""

    def __init__(
        self,
        circuit: Circuit,
        params: "EstimatorParams | None" = None,
        stem_model: str = "chain",
        pin_model: str = "boolean_difference",
        faults: "Iterable[Fault] | None" = None,
    ) -> None:
        self.circuit = circuit
        self.params = params or EstimatorParams()
        self.topology = Topology(circuit)
        self.faults: List[Fault] = (
            list(faults) if faults is not None else fault_universe(circuit)
        )
        self._detector = DetectionProbabilityEstimator(
            circuit, self.params, stem_model, pin_model, self.topology
        )
        self._fsim: "FaultSimulator | None" = None

    # -- estimation ---------------------------------------------------------------

    def signal_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> SignalProbabilities:
        """Estimated 1-probability of every node."""
        return self._detector.signal_estimator.run(input_probs)

    def detection_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
    ) -> Dict[Fault, float]:
        """Estimated detection probability of every fault."""
        return self._detector.run(
            input_probs=input_probs,
            faults=faults if faults is not None else self.faults,
        )

    # -- test lengths ----------------------------------------------------------------

    def test_length(
        self,
        confidence: float = 0.95,
        fraction: float = 1.0,
        input_probs: "float | Mapping[str, float] | None" = None,
        detection_probs: "Mapping[Fault, float] | None" = None,
    ) -> int:
        """Patterns needed so the easiest ``fraction`` of faults is covered
        with probability ``confidence`` (formula (3), Tables 2/3/5)."""
        if detection_probs is None:
            detection_probs = self.detection_probabilities(input_probs)
        return required_test_length(
            list(detection_probs.values()), confidence, fraction
        )

    def expected_coverage(
        self,
        n_patterns: int,
        input_probs: "float | Mapping[str, float] | None" = None,
        detection_probs: "Mapping[Fault, float] | None" = None,
    ) -> float:
        """Predicted fault coverage after ``n_patterns`` random patterns."""
        if detection_probs is None:
            detection_probs = self.detection_probabilities(input_probs)
        return expected_coverage(list(detection_probs.values()), n_patterns)

    # -- optimization ----------------------------------------------------------------

    def optimize(
        self,
        n_ref: int = 4096,
        grid: int = 16,
        max_rounds: int = 10,
        start: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
        **kwargs,
    ) -> OptimizationResult:
        """Optimize the input probabilities (paper §6, Table 4).

        Extra keyword arguments (``jitter``, ``seed``, ``step_sizes``,
        ``inputs``) pass through to
        :func:`repro.optimize.optimize_input_probabilities`.
        """
        return optimize_input_probabilities(
            self.circuit,
            n_ref=n_ref,
            grid=grid,
            max_rounds=max_rounds,
            start=start,
            params=self.params,
            stem_model=self._detector.observability_analyzer.stem_model,
            pin_model=self._detector.observability_analyzer.pin_model,
            faults=faults if faults is not None else self.faults,
            **kwargs,
        )

    # -- patterns and simulation --------------------------------------------------------

    def generate_patterns(
        self,
        n_patterns: int,
        input_probs: "float | Mapping[str, float] | None" = None,
        seed: "int | None" = None,
    ) -> PatternSet:
        """Random pattern set realizing the given input probabilities."""
        return PatternSet.random(
            self.circuit.inputs, n_patterns, input_probs, seed
        )

    def fault_simulate(
        self,
        patterns: PatternSet,
        faults: "Iterable[Fault] | None" = None,
        drop_detected: bool = True,
        block_size: int = 1024,
    ) -> FaultSimResult:
        """Static fault simulation of a pattern set."""
        fault_list = list(faults) if faults is not None else self.faults
        simulator = FaultSimulator(self.circuit, fault_list)
        return simulator.run(
            patterns, block_size=block_size, drop_detected=drop_detected
        )

    # -- reporting --------------------------------------------------------------------

    def analyze(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        confidences: Sequence[float] = (0.95, 0.98, 0.999),
        fractions: Sequence[float] = (1.0, 0.98),
        hardest: int = 5,
    ) -> TestabilityReport:
        """One-shot analysis: detection probabilities plus test lengths."""
        detection = self.detection_probabilities(input_probs)
        ranked = sorted(detection.items(), key=lambda item: item[1])
        values = sorted(detection.values())
        lengths: Dict[Tuple[float, float], int] = {}
        for fraction in fractions:
            for confidence in confidences:
                try:
                    lengths[(fraction, confidence)] = required_test_length(
                        values, confidence, fraction
                    )
                except EstimationError:
                    lengths[(fraction, confidence)] = -1
        return TestabilityReport(
            circuit_name=self.circuit.name,
            n_faults=len(detection),
            min_detection=values[0] if values else 0.0,
            median_detection=values[len(values) // 2] if values else 0.0,
            hardest_faults=ranked[:hardest],
            test_lengths=lengths,
        )
