"""The :class:`Protest` facade — the tool's workflow in one object.

.. deprecated::
    ``Protest`` is now a thin backward-compatible shim over
    :class:`repro.api.AnalysisEngine`; new code should use the
    :mod:`repro.api` layer directly (typed :class:`~repro.api.ProtestConfig`,
    memoized stages, serializable results, ``run_sweep`` batching).  Every
    old signature keeps working and now benefits from the engine's stage
    caching: ``analyze()`` → ``test_length()`` → ``expected_coverage()``
    chains estimate each stage exactly once.

Mirrors the input/output contract of the original tool (paper §1):

* estimated signal probability at each node for a given input tuple;
* estimated detection probability of each fault;
* the number of patterns needed for a required fault coverage with a
  desired confidence;
* an optimized tuple of input signal probabilities;
* random pattern sets realizing a tuple of probabilities;
* results of a static fault simulation with those patterns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.api.config import ProtestConfig
from repro.api.engine import AnalysisEngine
from repro.api.results import TestabilityReport
from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.faults.model import Fault
from repro.faults.simulator import FaultSimResult
from repro.logicsim.patterns import PatternSet
from repro.optimize.hillclimb import OptimizationResult
from repro.probability.estimator import EstimatorParams, SignalProbabilities

__all__ = ["Protest", "TestabilityReport"]


class Protest:
    """Probabilistic testability analysis of one combinational circuit.

    .. deprecated::
        Thin shim over :class:`repro.api.AnalysisEngine`; prefer the
        engine for new code.  The ``engine`` attribute exposes the
        underlying instance (and its ``cache_info()``).
    """

    def __init__(
        self,
        circuit: Circuit,
        params: "EstimatorParams | None" = None,
        stem_model: str = "chain",
        pin_model: str = "boolean_difference",
        faults: "Iterable[Fault] | None" = None,
    ) -> None:
        params = params or EstimatorParams()
        config = ProtestConfig(
            maxvers=params.maxvers,
            maxlist=params.maxlist,
            candidate_cap=params.candidate_cap,
            stem_model=stem_model,
            pin_model=pin_model,
        )
        self.engine = AnalysisEngine(circuit, config, faults=faults)
        self.circuit = circuit
        self.params = params

    @property
    def topology(self) -> Topology:
        return self.engine.topology

    @property
    def faults(self) -> List[Fault]:
        return self.engine.faults

    # -- estimation ---------------------------------------------------------------

    def signal_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> SignalProbabilities:
        """Estimated 1-probability of every node.

        .. deprecated:: use :meth:`AnalysisEngine.signal_probabilities`
            for a serializable result with provenance.
        """
        return self.engine.raw_signal_probabilities(input_probs)

    def detection_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
    ) -> Dict[Fault, float]:
        """Estimated detection probability of every fault.

        .. deprecated:: use :meth:`AnalysisEngine.detection_probabilities`.
        """
        return self.engine.raw_detection_probabilities(input_probs, faults)

    # -- test lengths ----------------------------------------------------------------

    def test_length(
        self,
        confidence: float = 0.95,
        fraction: float = 1.0,
        input_probs: "float | Mapping[str, float] | None" = None,
        detection_probs: "Mapping[Fault, float] | None" = None,
    ) -> int:
        """Patterns needed so the easiest ``fraction`` of faults is covered
        with probability ``confidence`` (formula (3), Tables 2/3/5).

        .. deprecated:: use :meth:`AnalysisEngine.test_length`; passing
            ``detection_probs`` is unnecessary there — the engine caches
            the estimation stages itself.
        """
        from repro.testlen.length import required_test_length

        if detection_probs is not None:
            return required_test_length(
                list(detection_probs.values()), confidence, fraction
            )
        result = self.engine.test_length(confidence, fraction, input_probs)
        if result.n_patterns is None:
            # Preserve the historical contract: raise, don't return None.
            required_test_length(
                list(self.detection_probabilities(input_probs).values()),
                confidence,
                fraction,
            )
        return result.n_patterns  # type: ignore[return-value]

    def expected_coverage(
        self,
        n_patterns: int,
        input_probs: "float | Mapping[str, float] | None" = None,
        detection_probs: "Mapping[Fault, float] | None" = None,
    ) -> float:
        """Predicted fault coverage after ``n_patterns`` random patterns.

        .. deprecated:: use :meth:`AnalysisEngine.expected_coverage`.
        """
        from repro.testlen.length import expected_coverage

        if detection_probs is not None:
            return expected_coverage(
                list(detection_probs.values()), n_patterns
            )
        return self.engine.expected_coverage(n_patterns, input_probs)

    # -- optimization ----------------------------------------------------------------

    def optimize(
        self,
        n_ref: int = 4096,
        grid: int = 16,
        max_rounds: int = 10,
        start: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
        **kwargs,
    ) -> OptimizationResult:
        """Optimize the input probabilities (paper §6, Table 4).

        Extra keyword arguments (``jitter``, ``seed``, ``step_sizes``,
        ``inputs``) pass through to
        :func:`repro.optimize.optimize_input_probabilities`.
        """
        return self.engine.optimize(
            n_ref=n_ref,
            grid=grid,
            max_rounds=max_rounds,
            start=start,
            faults=faults,
            **kwargs,
        )

    # -- patterns and simulation --------------------------------------------------------

    def generate_patterns(
        self,
        n_patterns: int,
        input_probs: "float | Mapping[str, float] | None" = None,
        seed: "int | None" = None,
    ) -> PatternSet:
        """Random pattern set realizing the given input probabilities.

        Unlike :meth:`AnalysisEngine.generate_patterns` (which defaults to
        the config seed), ``seed=None`` keeps the historical behaviour of
        drawing fresh OS entropy on every call.
        """
        return PatternSet.random(
            self.circuit.inputs, n_patterns, input_probs, seed
        )

    def fault_simulate(
        self,
        patterns: PatternSet,
        faults: "Iterable[Fault] | None" = None,
        drop_detected: bool = True,
        block_size: int = 1024,
    ) -> FaultSimResult:
        """Static fault simulation of a pattern set.

        .. deprecated:: use :meth:`AnalysisEngine.fault_simulate` for a
            serializable :class:`~repro.api.SimulationResult`.
        """
        return self.engine.raw_fault_simulate(
            patterns, faults, drop_detected=drop_detected,
            block_size=block_size,
        )

    # -- reporting --------------------------------------------------------------------

    def analyze(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        confidences: Sequence[float] = (0.95, 0.98, 0.999),
        fractions: Sequence[float] = (1.0, 0.98),
        hardest: int = 5,
    ) -> TestabilityReport:
        """One-shot analysis: detection probabilities plus test lengths.

        Requirements no finite test can reach (undetectable faults in the
        kept set) are reported as ``None`` in ``test_lengths`` and render
        as ``"inf"`` in ``to_text()``.
        """
        return self.engine.analyze(
            input_probs,
            confidences=confidences,
            fractions=fractions,
            hardest=hardest,
        )
