"""Signal-flow observability propagation (paper §3).

For every pin ``x`` the value ``s(x)`` models the probability that a change
at ``x`` is visible at a primary output.  Propagation runs in reverse
topological order:

* a primary output is observable with probability 1;
* a fan-out stem combines its branch observabilities with one of the two
  models the paper gives:

  - ``chain``:  ``s(x) = s(x1) (+) ... (+) s(xm)`` with
    ``t (+) y = t + y - 2ty`` — the associative "exactly one path" rule;
  - ``multi_output``: ``s(x) = 1 - (1-s(x1))...(1-s(xm))`` — "an
    alternative model for circuits with a large number of primary outputs";

* a gate input pin ``e_i`` attenuates the gate output's observability by
  the probability that toggling ``e_i`` toggles the output:
  ``s(e_i) = s(x) * (f(..0..) (+) f(..1..))``.  The ``independent`` pin
  model combines the two cofactor probabilities as if they were
  independent (the paper's formula); ``boolean_difference`` computes the
  exact per-gate Boolean difference probability instead (our ablation).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple

from repro.circuit.netlist import Circuit, Pin
from repro.circuit.topology import Topology
from repro.circuit.types import boolean_difference_probability
from repro.errors import EstimationError

__all__ = ["Observabilities", "ObservabilityAnalyzer", "combine_chain"]

STEM_MODELS = ("chain", "multi_output")
PIN_MODELS = ("independent", "boolean_difference")


def combine_chain(values: "list[float]") -> float:
    """Fold with the paper's associative ``t (+) y = t + y - 2ty``."""
    acc = 0.0
    for v in values:
        acc = acc + v - 2.0 * acc * v
    return acc


@dataclasses.dataclass
class Observabilities:
    """Stem and pin observabilities of one analysis run."""

    stems: Dict[str, float]
    pins: Dict[Pin, float]
    stem_model: str
    pin_model: str

    def stem(self, node: str) -> float:
        return self.stems[node]

    def pin(self, gate: str, pin: int) -> float:
        return self.pins[(gate, pin)]


class ObservabilityAnalyzer:
    """Reverse-topological observability propagation."""

    def __init__(
        self,
        circuit: Circuit,
        stem_model: str = "chain",
        pin_model: str = "boolean_difference",
        topology: "Topology | None" = None,
    ) -> None:
        if stem_model not in STEM_MODELS:
            raise EstimationError(
                f"stem_model must be one of {STEM_MODELS}, got {stem_model!r}"
            )
        if pin_model not in PIN_MODELS:
            raise EstimationError(
                f"pin_model must be one of {PIN_MODELS}, got {pin_model!r}"
            )
        self.circuit = circuit
        self.topology = topology or Topology(circuit)
        self.stem_model = stem_model
        self.pin_model = pin_model

    def run(self, signal_probs: Mapping[str, float]) -> Observabilities:
        """Propagate observabilities given the signal probabilities."""
        stems: Dict[str, float] = {}
        pins: Dict[Pin, float] = {}
        exact_pin = self.pin_model == "boolean_difference"
        for node in reversed(self.circuit.nodes):
            branch_values = []
            if self.circuit.is_output(node):
                branch_values.append(1.0)
            for gate_name, pin in self.topology.branches[node]:
                branch_values.append(pins[(gate_name, pin)])
            if self.stem_model == "chain":
                stem = combine_chain(branch_values)
            else:
                miss = 1.0
                for v in branch_values:
                    miss *= 1.0 - v
                stem = 1.0 - miss
            stems[node] = stem
            if self.circuit.is_input(node):
                continue
            gate = self.circuit.gates[node]
            operand_probs = [signal_probs[src] for src in gate.inputs]
            for pin in range(gate.arity):
                sensitivity = boolean_difference_probability(
                    gate.gtype,
                    operand_probs,
                    pin,
                    gate.table,
                    exact=exact_pin,
                )
                pins[(node, pin)] = stem * sensitivity
        return Observabilities(stems, pins, self.stem_model, self.pin_model)
