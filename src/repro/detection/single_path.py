"""Single-path sensitization estimation (paper §3, optional mode).

"PROTEST offers also the option to estimate the probability of single path
sensitization": instead of attenuating a single observability value through
the fan-out cone, enumerate concrete structural paths from the fault site
to the primary outputs, estimate each path's sensitization probability as
the product of its per-gate Boolean-difference factors, and combine the
paths with the associative ``t (+) y = t + y - 2ty`` ("exactly one path
sensitized").  Costlier than the signal-flow model but closer to the event
being modelled; path enumeration is bounded by ``max_paths``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.circuit.types import boolean_difference_probability
from repro.errors import EstimationError
from repro.faults.model import Fault
from repro.detection.observability import combine_chain

__all__ = ["SinglePathEstimator"]


class SinglePathEstimator:
    """Bounded path enumeration with per-path sensitization products."""

    def __init__(
        self,
        circuit: Circuit,
        max_paths: int = 64,
        exact_pin: bool = False,
        topology: "Topology | None" = None,
    ) -> None:
        if max_paths < 1:
            raise EstimationError("max_paths must be >= 1")
        self.circuit = circuit
        self.topology = topology or Topology(circuit)
        self.max_paths = max_paths
        self.exact_pin = exact_pin

    # -- path machinery -----------------------------------------------------------

    def _paths_from(self, node: str) -> List[List[Tuple[str, int]]]:
        """Structural paths (lists of (gate, pin) hops) from node to any PO.

        A path ending on the node itself (when the node is a primary
        output) is represented by the empty hop list.  Enumeration is
        depth-first and truncated at ``max_paths``.
        """
        paths: List[List[Tuple[str, int]]] = []

        def walk(current: str, hops: List[Tuple[str, int]]) -> None:
            if len(paths) >= self.max_paths:
                return
            if self.circuit.is_output(current):
                paths.append(list(hops))
                if len(paths) >= self.max_paths:
                    return
            for gate_name, pin in self.topology.branches[current]:
                hops.append((gate_name, pin))
                walk(gate_name, hops)
                hops.pop()

        walk(node, [])
        return paths

    def _path_probability(
        self,
        hops: List[Tuple[str, int]],
        signal_probs: Mapping[str, float],
    ) -> float:
        """Product of per-gate sensitization factors along one path."""
        probability = 1.0
        for gate_name, pin in hops:
            gate = self.circuit.gates[gate_name]
            operand_probs = [signal_probs[src] for src in gate.inputs]
            probability *= boolean_difference_probability(
                gate.gtype,
                operand_probs,
                pin,
                gate.table,
                exact=self.exact_pin,
            )
            if probability == 0.0:
                break
        return probability

    # -- public API -----------------------------------------------------------------

    def observability(
        self, node: str, signal_probs: Mapping[str, float]
    ) -> float:
        """Single-path observability of a stem node."""
        paths = self._paths_from(node)
        return combine_chain(
            [self._path_probability(p, signal_probs) for p in paths]
        )

    def run(
        self,
        faults: Iterable[Fault],
        signal_probs: Mapping[str, float],
    ) -> Dict[Fault, float]:
        """Detection probabilities via explicit path enumeration."""
        result: Dict[Fault, float] = {}
        stem_cache: Dict[str, float] = {}
        for fault in faults:
            if fault.pin is None:
                line = fault.node
                if line not in stem_cache:
                    stem_cache[line] = self.observability(line, signal_probs)
                observability = stem_cache[line]
                line_prob = signal_probs[line]
            else:
                gate = self.circuit.gates[fault.node]
                source = gate.inputs[fault.pin]
                line_prob = signal_probs[source]
                # Paths through this specific pin: factor for the pin's own
                # gate, then the gate output's single-path observability.
                operand_probs = [signal_probs[s] for s in gate.inputs]
                factor = boolean_difference_probability(
                    gate.gtype,
                    operand_probs,
                    fault.pin,
                    gate.table,
                    exact=self.exact_pin,
                )
                if fault.node not in stem_cache:
                    stem_cache[fault.node] = self.observability(
                        fault.node, signal_probs
                    )
                observability = factor * stem_cache[fault.node]
            excitation = line_prob if fault.value == 0 else 1.0 - line_prob
            result[fault] = excitation * observability
        return result
