"""Fault detection probability estimation (signal-flow and single-path)."""

from repro.detection.estimator import (
    DetectionProbabilityEstimator,
    detection_probability,
)
from repro.detection.exact import exact_detection_probabilities
from repro.detection.observability import (
    Observabilities,
    ObservabilityAnalyzer,
    combine_chain,
)
from repro.detection.single_path import SinglePathEstimator

__all__ = [
    "DetectionProbabilityEstimator",
    "Observabilities",
    "ObservabilityAnalyzer",
    "SinglePathEstimator",
    "combine_chain",
    "detection_probability",
    "exact_detection_probabilities",
]
