"""Exact fault detection probabilities by exhaustive fault simulation.

Ground truth for the accuracy experiments (Table 1 / Figs 5, 6 use the
sampled ``P_SIM``; for circuits with few inputs this module provides the
noise-free exact value, optionally under non-uniform input weights).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

from repro.circuit.netlist import Circuit
from repro.errors import EstimationError
from repro.faults.model import Fault, fault_universe
from repro.faults.simulator import FaultSimulator
from repro.logicsim.patterns import PatternSet, resolve_input_probs
from repro.logicsim.simulator import simulate
from repro.probability.exact import pattern_weights

__all__ = ["exact_detection_probabilities"]


def exact_detection_probabilities(
    circuit: Circuit,
    faults: "Iterable[Fault] | None" = None,
    input_probs: "float | Mapping[str, float] | None" = None,
    max_inputs: int = 18,
) -> Dict[Fault, float]:
    """Exact ``P_f`` for every fault over the full ``2^n`` input space."""
    n = len(circuit.inputs)
    if n > max_inputs:
        raise EstimationError(
            f"{circuit.name!r} has {n} inputs; exact detection enumeration "
            f"capped at {max_inputs}"
        )
    fault_list: List[Fault] = (
        list(faults) if faults is not None else fault_universe(circuit)
    )
    resolved = resolve_input_probs(circuit.inputs, input_probs)
    patterns = PatternSet.exhaustive(circuit.inputs)
    good = simulate(circuit, patterns)
    simulator = FaultSimulator(circuit, fault_list)
    uniform = all(abs(p - 0.5) < 1e-15 for p in resolved.values())
    weights = (
        None
        if uniform
        else pattern_weights(n, [resolved[i] for i in circuit.inputs])
    )
    total = patterns.n_patterns
    result: Dict[Fault, float] = {}
    for fault in fault_list:
        word = simulator.detection_word(fault, good, patterns.mask)
        if weights is None:
            result[fault] = word.bit_count() / total
        else:
            acc = 0.0
            while word:
                low = word & -word
                acc += weights[low.bit_length() - 1]
                word ^= low
            result[fault] = acc
    return result
