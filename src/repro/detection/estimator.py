"""Fault detection probability estimation (paper §3).

Combines the signal probabilities with the observability model:

* ``x`` stuck-at-0 is detected when the fault-free line carries 1 *and*
  the change is observed: ``P = p_x * s(x)`` (the paper's ``x^0``);
* ``x`` stuck-at-1 dually: ``P = (1 - p_x) * s(x)`` (``x^1``).

Stem faults use the stem observability, branch faults the pin
observability of their gate input.

The default pin model is ``boolean_difference``: on unate gates (AND, OR,
NAND, NOR — the original tool's gate library) it is *identical* to the
paper's independent-cofactor formula, and it is the correct generalization
when XOR/XNOR appear as primitive gates, as they do in our adder-based
netlists.  The literal formula remains available as
``pin_model="independent"`` and is compared in the model-ablation bench.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.errors import EstimationError
from repro.faults.model import Fault, fault_universe
from repro.detection.observability import Observabilities, ObservabilityAnalyzer
from repro.probability.estimator import (
    EstimatorParams,
    SignalProbabilities,
    SignalProbabilityEstimator,
)

__all__ = ["DetectionProbabilityEstimator", "detection_probability"]


def detection_probability(
    fault: Fault,
    circuit: Circuit,
    signal_probs: Mapping[str, float],
    observabilities: Observabilities,
) -> float:
    """Estimated detection probability of one fault."""
    if fault.pin is None:
        line_prob = signal_probs[fault.node]
        observability = observabilities.stem(fault.node)
    else:
        gate = circuit.gates[fault.node]
        source = gate.inputs[fault.pin]
        line_prob = signal_probs[source]
        observability = observabilities.pin(fault.node, fault.pin)
    excitation = line_prob if fault.value == 0 else 1.0 - line_prob
    return excitation * observability


class DetectionProbabilityEstimator:
    """One-stop estimator: signal probabilities -> observability -> P_f."""

    def __init__(
        self,
        circuit: Circuit,
        params: "EstimatorParams | None" = None,
        stem_model: str = "chain",
        pin_model: str = "boolean_difference",
        topology: "Topology | None" = None,
        use_kernel: bool = True,
    ) -> None:
        self.circuit = circuit
        self.topology = topology or Topology(circuit, cache=use_kernel)
        self.signal_estimator = SignalProbabilityEstimator(
            circuit, params, self.topology, use_kernel=use_kernel
        )
        self.observability_analyzer = ObservabilityAnalyzer(
            circuit, stem_model, pin_model, self.topology
        )

    def run(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
        signal_probs: "SignalProbabilities | None" = None,
    ) -> Dict[Fault, float]:
        """Estimate detection probabilities for a fault list.

        ``faults`` defaults to the full uncollapsed universe.  A
        pre-computed ``signal_probs`` (e.g. from an incremental update)
        short-circuits the signal-probability stage.
        """
        signal_probs, observabilities = self.stages(input_probs, signal_probs)
        return self.run_with(signal_probs, observabilities, faults)

    def stages(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        signal_probs: "SignalProbabilities | None" = None,
    ) -> "tuple[SignalProbabilities, Observabilities]":
        """The two expensive intermediate artifacts, separately reusable.

        Callers that sweep many fault subsets or (d, e) requirements at one
        input tuple compute the stages once and feed them to
        :meth:`run_with` — the cache-friendly split the
        :class:`repro.api.AnalysisEngine` memoizes around.
        """
        if signal_probs is None:
            signal_probs = self.signal_estimator.run(input_probs)
        elif input_probs is not None:
            raise EstimationError(
                "pass either input_probs or signal_probs, not both"
            )
        observabilities = self.observability_analyzer.run(signal_probs)
        return signal_probs, observabilities

    def run_with(
        self,
        signal_probs: "SignalProbabilities | Mapping[str, float]",
        observabilities: Observabilities,
        faults: "Iterable[Fault] | None" = None,
    ) -> Dict[Fault, float]:
        """Per-fault detection probabilities from precomputed stages."""
        fault_list: List[Fault] = (
            list(faults) if faults is not None else fault_universe(self.circuit)
        )
        return {
            fault: detection_probability(
                fault, self.circuit, signal_probs, observabilities
            )
            for fault in fault_list
        }
