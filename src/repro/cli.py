"""Command-line interface: ``protest <subcommand>``.

Subcommands
-----------
``analyze``    estimate testability and required test lengths
``testlen``    just the Table-2/3 style N for given d/e
``optimize``   hill-climb the input probabilities (Table 4)
``generate``   emit a (weighted) random pattern set
``fsim``       fault-simulate a pattern set and print the coverage curve
``sample``     Monte-Carlo grading with confidence intervals
``sweep``      analyse many circuits under many configs in one call
``serve``      run the HTTP analysis service (:mod:`repro.service`)
``circuits``   list the built-in evaluation circuits
``convert``    convert netlists (.bench/.v/.sdl in, .bench/.sdl out)

Circuits are referenced either by a built-in name (see ``circuits``) or by
a netlist file path — ISCAS-85/89 ``.bench`` (sequential netlists are
combinationally extracted), structural Verilog ``.v``, or the library's
``.sdl`` (see :mod:`repro.circuit.io`).  ``analyze``, ``testlen``, ``optimize``,
``fsim``, ``sample`` and ``sweep`` accept ``--json`` to emit the result
objects' serialized payloads instead of ASCII tables, ``--preset`` to
start from a named :class:`~repro.api.ProtestConfig` preset, and
``--backend {auto,python,numpy}`` to pick the evaluation engine behind
the compiled kernel (:mod:`repro.backends`).  ``sweep`` accepts
``--executor {process,thread,inline}`` to pick the pool type and
``--method sampled`` to Monte-Carlo grade every cell.

The same subcommands plus ``sweep`` accept ``--trace PATH`` to dump the
command's spans as Chrome/Perfetto trace-event JSON
(:mod:`repro.telemetry.tracing`); ``serve`` exposes ``--log-level`` for
structured JSON logs and ``--trace-dir`` for per-job trace files.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import Dict, List

from repro.api.config import METHODS, ProtestConfig, available_presets
from repro.api.engine import AnalysisEngine
from repro.api.sweep import EXECUTORS, run_sweep
from repro.backends import AUTO_BACKEND, registered_backends
from repro.circuit.io import NETLIST_SUFFIXES, is_netlist_path, load_netlist
from repro.circuit.netlist import Circuit
from repro.circuit.sdl import save_sdl
from repro.circuit.transistors import transistor_count
from repro.circuit.writer import save_bench
from repro.circuits.library import REGISTRY, build, names
from repro.errors import ReproError
from repro.faults.coverage import TABLE6_CHECKPOINTS
from repro.report.tables import ascii_table, format_count
from repro.sampling.intervals import INTERVAL_METHODS
from repro.sampling.montecarlo import SamplingPlan
from repro.telemetry.logs import LOG_LEVELS
from repro.telemetry.profiling import PhaseProfiler
from repro.telemetry.tracing import export_chrome_trace, span

#: Defaults quoted in the ``sample`` subcommand's help text.
_PLAN = SamplingPlan()

__all__ = ["main"]


def _load_circuit(spec: str) -> Circuit:
    if spec in REGISTRY:
        return build(spec)
    if is_netlist_path(spec):
        return load_netlist(spec)
    raise ReproError(
        f"unknown circuit {spec!r}: not a registered name and not a "
        f"netlist path ({'/'.join(NETLIST_SUFFIXES)})"
    )


def _load_probs(spec: "str | None") -> "Dict[str, float] | float | None":
    if spec is None:
        return None
    try:
        return float(spec)
    except ValueError:
        pass
    with open(spec, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ReproError(f"{spec}: expected a JSON object of input probabilities")
    return {str(k): float(v) for k, v in data.items()}


def _backend_choices() -> "List[str]":
    return [AUTO_BACKEND] + registered_backends()


def _config(args: argparse.Namespace) -> ProtestConfig:
    """Resolve the preset + per-flag overrides into one config."""
    base = ProtestConfig.preset(args.preset)
    overrides = {}
    for knob in ("maxvers", "maxlist", "stem_model", "pin_model", "backend"):
        value = getattr(args, knob, None)
        if value is not None:
            overrides[knob] = value
    return base.replace(**overrides) if overrides else base


def _engine(args: argparse.Namespace) -> AnalysisEngine:
    return AnalysisEngine(_load_circuit(args.circuit), _config(args))


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("circuit",
                        help="built-in name or .bench/.v/.sdl path")
    parser.add_argument("--probs", default=None,
                        help="input 1-probability: scalar or JSON file")
    parser.add_argument("--preset", default="paper",
                        choices=available_presets(),
                        help="ProtestConfig preset to start from")
    parser.add_argument("--maxvers", type=int, default=None,
                        help="MAXVERS: max conditioning-set size (default 3)")
    parser.add_argument("--maxlist", type=int, default=None,
                        help="MAXLIST: joining-point search depth (default 8)")
    parser.add_argument("--stem-model", default=None,
                        choices=("chain", "multi_output"))
    parser.add_argument("--pin-model", default=None,
                        choices=("independent", "boolean_difference"))
    parser.add_argument("--backend", default=None,
                        choices=_backend_choices(),
                        help="evaluation engine behind the compiled kernel "
                             "(auto picks numpy for large circuits when "
                             "installed; all backends are bit-identical)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of tables")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome/Perfetto trace-event JSON of "
                             "this command's spans (open in about:tracing "
                             "or ui.perfetto.dev)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="write a phase-profile JSON: self/cumulative "
                             "times per stage, kernel level and opcode "
                             "class, backend word calls, and estimator "
                             "stages, plus collapsed flamegraph stacks and "
                             "a memory section")


def _cmd_analyze(args: argparse.Namespace) -> int:
    engine = _engine(args)
    report = engine.analyze(_load_probs(args.probs))
    if args.json:
        payload = report.to_dict()
        payload["transistors"] = transistor_count(engine.circuit)
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(report.to_text())
    print(f"  transistors (CMOS): {transistor_count(engine.circuit)}")
    return 0


def _cmd_testlen(args: argparse.Namespace) -> int:
    engine = _engine(args)
    probs = _load_probs(args.probs)
    results = [
        engine.test_length(confidence, fraction, probs)
        for fraction in args.fraction
        for confidence in args.confidence
    ]
    if args.json:
        payload = {
            "circuit": engine.circuit.name,
            "results": [r.to_dict() for r in results],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [
        [f"{r.fraction:.2f}", f"{r.confidence:.3f}",
         format_count(r.n_patterns) if r.n_patterns is not None else "inf"]
        for r in results
    ]
    print(ascii_table(["d", "e", "N"], rows,
                      title=f"required test lengths for {engine.circuit.name}"))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    engine = _engine(args)
    result = engine.optimize(
        n_ref=args.n_ref, grid=args.grid, max_rounds=args.rounds,
        start=_load_probs(args.probs),
    )
    if args.json:
        payload = {
            "circuit": engine.circuit.name,
            "initial_score": result.initial_score,
            "score": result.score,
            "rounds": result.rounds,
            "evaluations": result.evaluations,
            "probabilities": result.probabilities,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"log J_N: {result.initial_score:.2f} -> {result.score:.2f} "
              f"({result.rounds} rounds, {result.evaluations} evaluations)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.probabilities, handle, indent=2, sort_keys=True)
        if not args.json:
            print(f"optimized probabilities written to {args.output}")
    elif not args.json:
        rows = [[name, f"{p:.4f}"] for name, p in
                sorted(result.probabilities.items())]
        print(ascii_table(["input", "p"], rows))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    engine = _engine(args)
    patterns = engine.generate_patterns(args.count, _load_probs(args.probs),
                                        seed=args.seed)

    def rows():
        for j in range(patterns.n_patterns):
            vec = patterns.vector(j)
            yield "".join(str(vec[name]) for name in patterns.inputs)

    if args.json:
        payload = {
            "circuit": engine.circuit.name,
            "inputs": list(patterns.inputs),
            "seed": args.seed,
            "patterns": list(rows()),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    for row in rows():
        print(row)
    return 0


def _cmd_fsim(args: argparse.Namespace) -> int:
    engine = _engine(args)
    patterns = engine.generate_patterns(args.count, _load_probs(args.probs),
                                        seed=args.seed)
    result = engine.fault_simulate(patterns)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    checkpoints = [n for n in TABLE6_CHECKPOINTS if n <= args.count]
    if args.count not in checkpoints:
        checkpoints.append(args.count)
    rows = [[str(n), f"{100.0 * result.raw.coverage_at(n):.1f}"]
            for n in checkpoints]
    print(ascii_table(["patterns", "coverage %"], rows,
                      title=f"fault simulation of {engine.circuit.name} "
                            f"({result.n_faults} faults)"))
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    overrides = {"method": "sampled"}
    for knob in ("target_halfwidth", "confidence_level", "max_patterns",
                 "interval_method", "fault_sample", "seed"):
        value = getattr(args, knob, None)
        if value is not None:
            overrides[knob] = value
    engine = AnalysisEngine(
        _load_circuit(args.circuit), _config(args).replace(**overrides)
    )
    probs = _load_probs(args.probs)
    report = engine.sampled_analyze(probs)
    validation = engine.cross_validate(probs) if args.cross_validate else None
    if args.json:
        payload = report.to_dict()
        if validation is not None:
            payload["cross_validation"] = validation.to_dict()
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.to_text())
        if validation is not None:
            print(validation.to_text())
    if validation is not None and not validation.ok:
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    configs = [ProtestConfig.preset(name) for name in args.presets or ["paper"]]
    if args.method is not None:
        configs = [c.replace(method=args.method, name=c.name) for c in configs]
    if args.backend is not None:
        configs = [c.replace(backend=args.backend, name=c.name)
                   for c in configs]
    result = run_sweep(
        [_load_circuit(spec) for spec in args.circuits],
        configs,
        workers=args.workers,
        input_probs=_load_probs(args.probs),
        confidences=tuple(args.confidence),
        fractions=tuple(args.fraction),
        executor=args.executor,
        timeout=args.timeout,
        retries=args.retries,
    )
    if args.json:
        print(result.to_json(indent=2))
    else:
        print(result.to_table())
    return 1 if result.failed else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_circuits=args.max_circuits,
        max_reports=args.max_reports,
        default_timeout=args.timeout,
        verbose=args.verbose,
        journal=args.journal,
        max_queue=args.max_queue,
        retries=args.retries,
        grace=args.grace,
        log_level=args.log_level,
        trace_dir=args.trace_dir,
    )


def _cmd_circuits(_args: argparse.Namespace) -> int:
    rows = []
    for name in names():
        circuit = build(name)
        rows.append([name, circuit.name, str(len(circuit.inputs)),
                     str(len(circuit.outputs)), str(circuit.n_gates),
                     str(transistor_count(circuit))])
    print(ascii_table(
        ["name", "title", "inputs", "outputs", "gates", "transistors"], rows))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    if args.output.endswith(".bench"):
        save_bench(circuit, args.output)
    elif args.output.endswith(".sdl"):
        save_sdl(circuit, args.output)
    else:
        raise ReproError("output must end in .bench or .sdl")
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="protest",
        description="Probabilistic testability analysis "
                    "(reproduction of Wunderlich, DAC 1985)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="full testability report")
    _add_common(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("testlen", help="required random test length")
    _add_common(p)
    p.add_argument("--confidence", "-e", type=float, nargs="+",
                   default=[0.95, 0.98, 0.999])
    p.add_argument("--fraction", "-d", type=float, nargs="+",
                   default=[1.0, 0.98])
    p.set_defaults(func=_cmd_testlen)

    p = sub.add_parser("optimize", help="optimize input probabilities")
    _add_common(p)
    p.add_argument("--n-ref", type=int, default=4096)
    p.add_argument("--grid", type=int, default=16)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--output", "-o", default=None,
                   help="write optimized probabilities to a JSON file")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("generate", help="emit random patterns")
    _add_common(p)
    p.add_argument("--count", "-n", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("fsim", help="fault-simulate random patterns")
    _add_common(p)
    p.add_argument("--count", "-n", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fsim)

    p = sub.add_parser(
        "sample",
        help="Monte-Carlo grading with confidence intervals",
    )
    _add_common(p)
    p.add_argument("--target-halfwidth", type=float, default=None,
                   help="stop sampling once the widest interval halfwidth "
                        f"is at most this (default {_PLAN.target_halfwidth})")
    p.add_argument("--confidence-level", type=float, default=None,
                   help="two-sided interval confidence "
                        f"(default {_PLAN.confidence_level})")
    p.add_argument("--max-patterns", type=int, default=None,
                   help="hard cap on simulated patterns "
                        f"(default {_PLAN.max_patterns})")
    p.add_argument("--interval-method", default=None,
                   choices=INTERVAL_METHODS)
    p.add_argument("--fault-sample", type=int, default=None,
                   help="grade only a stratified subsample of this many faults")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--cross-validate", action="store_true",
                   help="also check the analytic estimates against the "
                        "sampled intervals (exit 1 on flags)")
    p.set_defaults(func=_cmd_sample)

    p = sub.add_parser(
        "sweep", help="analyse many circuits under many configs"
    )
    p.add_argument("circuits", nargs="+",
                   help="built-in names or .bench/.v/.sdl paths")
    p.add_argument("--preset", dest="presets", action="append",
                   choices=available_presets(), default=None,
                   help="config preset; repeat for a config grid")
    p.add_argument("--workers", "-w", type=int, default=None)
    p.add_argument("--executor", choices=EXECUTORS, default=None,
                   help="pool type: process (default for multi-cell "
                        "sweeps), thread, or inline for the "
                        "deterministic serial path")
    p.add_argument("--method", choices=METHODS, default=None,
                   help="override every preset's method (sampled = "
                        "Monte-Carlo grading with intervals)")
    p.add_argument("--backend", choices=_backend_choices(), default=None,
                   help="override every preset's evaluation backend "
                        "(selection re-resolves inside each worker)")
    p.add_argument("--probs", default=None,
                   help="input 1-probability: scalar or JSON file")
    p.add_argument("--confidence", "-e", type=float, nargs="+",
                   default=[0.95, 0.98, 0.999])
    p.add_argument("--fraction", "-d", type=float, nargs="+",
                   default=[1.0, 0.98])
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run wall-clock limit in seconds; a cell "
                        "exceeding it is recorded as timed out instead "
                        "of hanging the sweep (pool executors only)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts for cells whose worker died "
                        "(a broken pool); estimation failures are "
                        "never retried")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of tables")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a Chrome/Perfetto trace-event JSON of "
                        "this sweep's spans (process workers ship "
                        "theirs back to the parent)")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "serve", help="run the HTTP analysis service (repro.service)"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="TCP port; 0 binds an ephemeral port (the bound "
                        "address is printed on startup)")
    p.add_argument("--workers", "-w", type=int, default=2,
                   help="job worker threads")
    p.add_argument("--max-circuits", type=int, default=64,
                   help="interned-circuit cache bound")
    p.add_argument("--max-reports", type=int, default=256,
                   help="finished-report cache bound")
    p.add_argument("--timeout", type=float, default=None,
                   help="default per-job wall-clock budget in seconds")
    p.add_argument("--journal", default=None, metavar="PATH",
                   help="checkpoint journal file: sampled jobs persist "
                        "per-block state there and a restarted server "
                        "resumes them seed-exactly")
    p.add_argument("--max-queue", type=int, default=None,
                   help="bound on queued jobs; submits beyond it get "
                        "429 + Retry-After instead of unbounded backlog")
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts for jobs failing transiently "
                        "(worker crash, broken pool); permanent errors "
                        "fail immediately")
    p.add_argument("--grace", type=float, default=5.0,
                   help="drain budget in seconds on SIGTERM/SIGINT: "
                        "running jobs get this long to finish before "
                        "being aborted at their next checkpoint")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request to stderr")
    p.add_argument("--log-level", default="info", choices=LOG_LEVELS,
                   help="structured JSON log level on stderr "
                        "('off' keeps the process silent)")
    p.add_argument("--trace-dir", default=None, metavar="DIR",
                   help="write a Chrome/Perfetto trace-<job>.json per "
                        "finished job into this directory")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("circuits", help="list built-in circuits")
    p.set_defaults(func=_cmd_circuits)

    p = sub.add_parser("convert", help="convert netlist formats")
    p.add_argument("circuit")
    p.add_argument("output")
    p.set_defaults(func=_cmd_convert)
    return parser


def main(argv: "List[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    profile_path = getattr(args, "profile", None)
    profiler = PhaseProfiler() if profile_path is not None else None
    try:
        with _activated(profiler):
            with span(f"cli.{args.command}", command=args.command) as root:
                status = args.func(args)
                root.set("status", status)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if trace_path is not None:
        export_chrome_trace(trace_path, trace_id=root.trace_id)
        print(f"trace written to {trace_path}", file=sys.stderr)
    if profiler is not None:
        with open(profile_path, "w", encoding="utf-8") as handle:
            json.dump(profiler.to_payload(), handle, indent=2, sort_keys=True)
        print(f"profile written to {profile_path}", file=sys.stderr)
    return status


def _activated(profiler: "PhaseProfiler | None"):
    return contextlib.nullcontext() if profiler is None else profiler.activate()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
