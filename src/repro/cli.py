"""Command-line interface: ``protest <subcommand>``.

Subcommands
-----------
``analyze``    estimate testability and required test lengths
``testlen``    just the Table-2/3 style N for given d/e
``optimize``   hill-climb the input probabilities (Table 4)
``generate``   emit a (weighted) random pattern set
``fsim``       fault-simulate a pattern set and print the coverage curve
``circuits``   list the built-in evaluation circuits
``convert``    convert between .bench and .sdl netlists

Circuits are referenced either by a built-in name (see ``circuits``) or by
a ``.bench`` / ``.sdl`` file path.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.circuit.bench_parser import load_bench
from repro.circuit.netlist import Circuit
from repro.circuit.sdl import load_sdl, save_sdl
from repro.circuit.transistors import transistor_count
from repro.circuit.writer import save_bench
from repro.circuits.library import REGISTRY, build, names
from repro.errors import ReproError
from repro.faults.coverage import TABLE6_CHECKPOINTS
from repro.logicsim.patterns import PatternSet
from repro.probability.estimator import EstimatorParams
from repro.protest import Protest
from repro.report.tables import ascii_table, format_count

__all__ = ["main"]


def _load_circuit(spec: str) -> Circuit:
    if spec in REGISTRY:
        return build(spec)
    if spec.endswith(".bench"):
        return load_bench(spec)
    if spec.endswith(".sdl"):
        return load_sdl(spec)
    raise ReproError(
        f"unknown circuit {spec!r}: not a registered name and not a "
        ".bench/.sdl path"
    )


def _load_probs(spec: "str | None") -> "Dict[str, float] | float | None":
    if spec is None:
        return None
    try:
        return float(spec)
    except ValueError:
        pass
    with open(spec, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ReproError(f"{spec}: expected a JSON object of input probabilities")
    return {str(k): float(v) for k, v in data.items()}


def _tool(args: argparse.Namespace) -> Protest:
    circuit = _load_circuit(args.circuit)
    params = EstimatorParams(maxvers=args.maxvers, maxlist=args.maxlist)
    return Protest(circuit, params, stem_model=args.stem_model,
                   pin_model=args.pin_model)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("circuit", help="built-in name or .bench/.sdl path")
    parser.add_argument("--probs", default=None,
                        help="input 1-probability: scalar or JSON file")
    parser.add_argument("--maxvers", type=int, default=3,
                        help="MAXVERS: max conditioning-set size")
    parser.add_argument("--maxlist", type=int, default=8,
                        help="MAXLIST: joining-point search depth")
    parser.add_argument("--stem-model", default="chain",
                        choices=("chain", "multi_output"))
    parser.add_argument("--pin-model", default="boolean_difference",
                        choices=("independent", "boolean_difference"))


def _cmd_analyze(args: argparse.Namespace) -> int:
    tool = _tool(args)
    report = tool.analyze(_load_probs(args.probs))
    print(report.to_text())
    print(f"  transistors (CMOS): {transistor_count(tool.circuit)}")
    return 0


def _cmd_testlen(args: argparse.Namespace) -> int:
    tool = _tool(args)
    detection = tool.detection_probabilities(_load_probs(args.probs))
    rows = []
    for fraction in args.fraction:
        for confidence in args.confidence:
            n = tool.test_length(confidence, fraction,
                                 detection_probs=detection)
            rows.append([f"{fraction:.2f}", f"{confidence:.3f}",
                         format_count(n)])
    print(ascii_table(["d", "e", "N"], rows,
                      title=f"required test lengths for {tool.circuit.name}"))
    return 0


def _cmd_optimize(args: argparse.Namespace) -> int:
    tool = _tool(args)
    result = tool.optimize(
        n_ref=args.n_ref, grid=args.grid, max_rounds=args.rounds,
        start=_load_probs(args.probs),
    )
    print(f"log J_N: {result.initial_score:.2f} -> {result.score:.2f} "
          f"({result.rounds} rounds, {result.evaluations} evaluations)")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result.probabilities, handle, indent=2, sort_keys=True)
        print(f"optimized probabilities written to {args.output}")
    else:
        rows = [[name, f"{p:.4f}"] for name, p in
                sorted(result.probabilities.items())]
        print(ascii_table(["input", "p"], rows))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    tool = _tool(args)
    patterns = tool.generate_patterns(args.count, _load_probs(args.probs),
                                      seed=args.seed)
    for j in range(patterns.n_patterns):
        vec = patterns.vector(j)
        print("".join(str(vec[name]) for name in patterns.inputs))
    return 0


def _cmd_fsim(args: argparse.Namespace) -> int:
    tool = _tool(args)
    patterns = tool.generate_patterns(args.count, _load_probs(args.probs),
                                      seed=args.seed)
    result = tool.fault_simulate(patterns)
    checkpoints = [n for n in TABLE6_CHECKPOINTS if n <= args.count]
    if args.count not in checkpoints:
        checkpoints.append(args.count)
    rows = [[str(n), f"{100.0 * result.coverage_at(n):.1f}"]
            for n in checkpoints]
    print(ascii_table(["patterns", "coverage %"], rows,
                      title=f"fault simulation of {tool.circuit.name} "
                            f"({len(tool.faults)} faults)"))
    return 0


def _cmd_circuits(_args: argparse.Namespace) -> int:
    rows = []
    for name in names():
        circuit = build(name)
        rows.append([name, circuit.name, str(len(circuit.inputs)),
                     str(len(circuit.outputs)), str(circuit.n_gates),
                     str(transistor_count(circuit))])
    print(ascii_table(
        ["name", "title", "inputs", "outputs", "gates", "transistors"], rows))
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    circuit = _load_circuit(args.circuit)
    if args.output.endswith(".bench"):
        save_bench(circuit, args.output)
    elif args.output.endswith(".sdl"):
        save_sdl(circuit, args.output)
    else:
        raise ReproError("output must end in .bench or .sdl")
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="protest",
        description="Probabilistic testability analysis "
                    "(reproduction of Wunderlich, DAC 1985)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("analyze", help="full testability report")
    _add_common(p)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("testlen", help="required random test length")
    _add_common(p)
    p.add_argument("--confidence", "-e", type=float, nargs="+",
                   default=[0.95, 0.98, 0.999])
    p.add_argument("--fraction", "-d", type=float, nargs="+",
                   default=[1.0, 0.98])
    p.set_defaults(func=_cmd_testlen)

    p = sub.add_parser("optimize", help="optimize input probabilities")
    _add_common(p)
    p.add_argument("--n-ref", type=int, default=4096)
    p.add_argument("--grid", type=int, default=16)
    p.add_argument("--rounds", type=int, default=10)
    p.add_argument("--output", "-o", default=None,
                   help="write optimized probabilities to a JSON file")
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser("generate", help="emit random patterns")
    _add_common(p)
    p.add_argument("--count", "-n", type=int, default=16)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("fsim", help="fault-simulate random patterns")
    _add_common(p)
    p.add_argument("--count", "-n", type=int, default=1000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fsim)

    p = sub.add_parser("circuits", help="list built-in circuits")
    p.set_defaults(func=_cmd_circuits)

    p = sub.add_parser("convert", help="convert netlist formats")
    p.add_argument("circuit")
    p.add_argument("output")
    p.set_defaults(func=_cmd_convert)
    return parser


def main(argv: "List[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
