"""Batch front-end: analyse many circuits under many configs in one call.

``run_sweep`` is the workload the benchmark tables actually run — every
``bench_table*.py`` is "a few circuits × a config grid" — packaged as a
single parallel call returning serializable per-run reports::

    result = run_sweep(["alu", "div", "comp8"], ["paper", "fast"], workers=4)
    for run in result.runs:
        print(run.circuit, run.config.name, run.report.test_lengths)
    open("sweep.json", "w").write(result.to_json(indent=2))

Failures are captured per run (``run.error``) instead of aborting the
sweep, so one pathological circuit cannot sink a nightly batch.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import pickle
import threading
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.api.config import ProtestConfig
from repro.api.engine import AnalysisEngine
from repro.api.results import SampledReport, TestabilityReport, _Serializable
from repro.circuit.netlist import Circuit
from repro.errors import ReproError
from repro.report.tables import ascii_table, format_count
from repro.resilience.chaos import ChaosKill, chaos_point
from repro.telemetry.tracing import (
    SpanContext,
    current_context,
    drain_spans,
    ingest_spans,
    span,
    use_context,
)

__all__ = ["SweepRun", "SweepResult", "run_sweep"]


@dataclasses.dataclass
class SweepRun:
    """One (circuit, config) cell of a sweep.

    ``report`` is a :class:`TestabilityReport` for analytic configs and
    a :class:`SampledReport` for ``method="sampled"`` configs; both
    serialize with a ``kind`` tag that round-trips the right class.
    """

    circuit: str
    config: ProtestConfig
    report: "TestabilityReport | SampledReport | None"
    error: Optional[str] = None
    elapsed: float = 0.0
    #: True when the run was abandoned by the per-run wall-clock limit
    #: (``run_sweep(timeout=...)``); ``elapsed`` then records the time
    #: the sweep actually waited before giving up on the cell.
    timed_out: bool = False
    #: Trace events recorded in a foreign *process* worker, shipped back
    #: for re-ingestion into the parent's span buffer (empty when the
    #: cell ran in-process).  Transport, not payload: excluded from
    #: ``to_dict`` and comparisons.
    spans: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "config": self.config.to_dict(),
            "report": self.report.to_dict() if self.report else None,
            "error": self.error,
            "elapsed": self.elapsed,
            "timed_out": self.timed_out,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepRun":
        report = data.get("report")
        if report is None:
            decoded = None
        elif report.get("kind") == "sampled_report":
            decoded = SampledReport.from_dict(report)
        else:
            decoded = TestabilityReport.from_dict(report)
        return cls(
            circuit=data["circuit"],
            config=ProtestConfig.from_dict(data["config"]),
            report=decoded,
            error=data.get("error"),
            elapsed=data.get("elapsed", 0.0),
            timed_out=data.get("timed_out", False),
        )


@dataclasses.dataclass
class SweepResult(_Serializable):
    """All runs of one sweep, in deterministic circuit-major order."""

    runs: List[SweepRun]

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def ok(self) -> List[SweepRun]:
        return [run for run in self.runs if run.ok]

    @property
    def failed(self) -> List[SweepRun]:
        return [run for run in self.runs if not run.ok]

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "sweep", "runs": [run.to_dict() for run in self.runs]}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        return cls(runs=[SweepRun.from_dict(rec) for rec in data["runs"]])

    def to_table(self) -> str:
        """Compact per-run summary (one row per (circuit, config))."""
        rows = []
        for run in self.runs:
            if not run.ok:
                rows.append([run.circuit, run.config.name, "-", "-",
                             f"error: {run.error}"])
                continue
            report = run.report
            if report.test_lengths:
                key = min(report.test_lengths)  # smallest (d, e) requirement
                n = report.test_lengths[key]
                n_text = format_count(n) if n is not None else "inf"
            else:
                n_text = "-"
            rows.append([
                run.circuit,
                run.config.name,
                str(report.n_faults),
                f"{report.min_detection:.2e}",
                n_text,
            ])
        return ascii_table(
            ["circuit", "config", "faults", "min P_f", "N"],
            rows,
            title="sweep results",
        )


def _circuit_label(spec: "Circuit | str") -> str:
    return spec if isinstance(spec, str) else spec.name


def _run_one(
    circuit: "Circuit | str",
    config: ProtestConfig,
    input_probs,
    confidences: Sequence[float],
    fractions: Sequence[float],
    attempt: int = 0,
    trace: "Dict[str, Any] | None" = None,
) -> SweepRun:
    label = _circuit_label(circuit)
    # ``trace`` carries the parent sweep's span context (plus the pid
    # that produced it) into this worker; spans opened here nest under
    # it even across a process boundary, where the finished events are
    # shipped back on ``SweepRun.spans`` because the parent's in-memory
    # buffer is not shared.
    context = SpanContext.from_payload(
        trace if trace is None else
        {"trace_id": trace["trace_id"], "span_id": trace["span_id"]}
    )
    foreign = trace is not None and trace.get("pid") != os.getpid()
    start = time.perf_counter()
    run: "SweepRun | None" = None
    with use_context(context):
        with span(
            "sweep.cell", circuit=label, config=config.name, attempt=attempt
        ) as cell:
            try:
                chaos_point("sweep.cell", circuit=label, attempt=attempt)
                engine = AnalysisEngine(circuit, config)
                if config.method == "sampled":
                    report = engine.sampled_analyze(
                        input_probs, confidences=confidences,
                        fractions=fractions,
                    )
                else:
                    report = engine.analyze(
                        input_probs, confidences=confidences,
                        fractions=fractions,
                    )
                run = SweepRun(
                    circuit=label, config=config, report=report,
                    elapsed=time.perf_counter() - start,
                )
            except ReproError as error:
                run = SweepRun(
                    circuit=label, config=config, report=None,
                    error=str(error),
                    elapsed=time.perf_counter() - start,
                )
    if foreign:
        run.spans = drain_spans(cell.trace_id)
    return run


def _adopt_spans(run: SweepRun) -> SweepRun:
    """Re-ingest trace events a process worker shipped back."""
    if run.spans:
        ingest_spans(run.spans)
        run.spans = []
    return run


#: Recognized values of the ``executor`` knob.
EXECUTORS = ("process", "thread", "inline")


def run_sweep(
    circuits: "Iterable[Circuit | str]",
    configs: "Iterable[ProtestConfig | str]" = ("paper",),
    workers: "int | None" = None,
    input_probs=None,
    confidences: Sequence[float] = (0.95, 0.98, 0.999),
    fractions: Sequence[float] = (1.0, 0.98),
    executor: "str | None" = None,
    timeout: "float | None" = None,
    cancel: "threading.Event | None" = None,
    retries: int = 1,
) -> SweepResult:
    """Analyse every circuit under every config, in parallel.

    Parameters
    ----------
    circuits:
        Circuits or registered circuit names.
    configs:
        :class:`ProtestConfig` objects or preset names.
    workers:
        Pool size; ``None`` lets :mod:`concurrent.futures` choose,
        ``workers=1`` (or a single cell) runs inline, deterministically.
    executor:
        ``"process"`` (the default for multi-cell sweeps — the analysis
        is CPU-bound pure Python, so processes actually use the cores),
        ``"thread"``, or ``"inline"`` for the deterministic serial path.
        ``None`` picks processes when there is more than one cell.  When
        a process pool cannot be spawned (restricted environments), the
        sweep silently degrades to threads.
    timeout:
        Per-run wall-clock limit in seconds.  A cell the sweep waited
        on for longer is recorded as a failed :class:`SweepRun`
        (``timed_out=True``, ``error="timeout..."``) instead of hanging
        the whole sweep; the pool is then shut down without waiting for
        the stuck worker.  Pool executors only — the ``inline`` path
        cannot preempt a running estimation.
    cancel:
        Optional :class:`threading.Event`; once set, not-yet-collected
        cells are recorded as ``error="cancelled"`` and their pending
        futures revoked.  This is the hook the analysis service's job
        cancellation plumbs into.
    retries:
        Extra attempts granted to a cell whose *worker* died (a broken
        process pool, an injected :class:`ChaosKill`) — substrate
        failures, as opposed to estimation failures, which are never
        retried.  Crashed cells are resubmitted to a fresh pool; a cell
        still crashing after ``1 + retries`` attempts is recorded as a
        failed :class:`SweepRun` with the crash as its ``error``.

    Unparseable circuit names and estimation failures are recorded on the
    affected :class:`SweepRun` (``error``), never raised.
    """
    if executor is not None and executor not in EXECUTORS:
        raise ReproError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    if timeout is not None and timeout <= 0:
        raise ReproError(f"timeout must be positive, got {timeout}")
    if retries < 0:
        raise ReproError(f"retries must be non-negative, got {retries}")
    circuit_list = list(circuits)
    config_list = [ProtestConfig.coerce(c) for c in configs]
    cells: List[Tuple["Circuit | str", ProtestConfig]] = [
        (circuit, config)
        for circuit in circuit_list
        for config in config_list
    ]
    with span(
        "sweep.run", cells=len(cells), executor=executor or "auto"
    ) as sweep_span:
        # Serialized context handed to every cell: workers parent their
        # spans under this sweep, and the pid lets a worker tell whether
        # it must ship its spans back across a process boundary.
        trace = {**sweep_span.context.to_payload(), "pid": os.getpid()}
        if (
            executor == "inline"
            or (workers is not None and workers <= 1)
            or len(cells) <= 1
        ):
            runs = []
            for circuit, config in cells:
                if cancel is not None and cancel.is_set():
                    runs.append(_abandoned_run(circuit, config, "cancelled"))
                    continue
                for attempt in range(retries + 1):
                    try:
                        run = _run_one(
                            circuit, config, input_probs, confidences,
                            fractions, attempt, trace,
                        )
                        break
                    except ChaosKill as error:
                        # Inline there is no worker to die, but the chaos
                        # seam still exercises the retry accounting.
                        if attempt >= retries:
                            run = _abandoned_run(
                                circuit, config,
                                f"worker crashed after {attempt + 1} "
                                f"attempts: ChaosKill: {error}",
                            )
                runs.append(run)
            return SweepResult(runs=runs)
        mode = executor or "process"
        if mode == "process":
            try:
                return SweepResult(
                    runs=_pooled_runs(
                        concurrent.futures.ProcessPoolExecutor, workers,
                        cells, input_probs, confidences, fractions, timeout,
                        cancel, retries, trace,
                    )
                )
            except (OSError, PermissionError, ImportError,
                    NotImplementedError, pickle.PicklingError,
                    concurrent.futures.process.BrokenProcessPool):
                # No usable process pool (sandboxes, missing /dev/shm or
                # sem_open, unpicklable inputs defined in __main__, ...):
                # threads still give overlap on the C-level big-int work.
                pass
        return SweepResult(
            runs=_pooled_runs(
                concurrent.futures.ThreadPoolExecutor, workers, cells,
                input_probs, confidences, fractions, timeout, cancel,
                retries, trace,
            )
        )


def _abandoned_run(
    circuit: "Circuit | str",
    config: ProtestConfig,
    error: str,
    elapsed: float = 0.0,
    timed_out: bool = False,
) -> SweepRun:
    return SweepRun(
        circuit=_circuit_label(circuit), config=config, report=None,
        error=error, elapsed=elapsed, timed_out=timed_out,
    )


def _pooled_runs(
    pool_cls,
    workers: "int | None",
    cells: List[Tuple["Circuit | str", ProtestConfig]],
    input_probs,
    confidences: Sequence[float],
    fractions: Sequence[float],
    timeout: "float | None" = None,
    cancel: "threading.Event | None" = None,
    retries: int = 1,
    trace: "Dict[str, Any] | None" = None,
) -> List[SweepRun]:
    """Run the cells on a pool, in retry rounds.

    A worker death (a broken executor; an injected :class:`ChaosKill`
    unwinding a pool thread) fails only the cells it took with it: those
    are resubmitted to a *fresh* pool, up to ``retries`` extra attempts
    each, while completed results are kept.  Estimation failures are
    already per-run data (``SweepRun.error``) and are never retried.
    Should every attempt crash without a single cell ever completing,
    the last crash propagates so ``run_sweep`` can degrade the executor
    (process pool → threads).
    """
    results: Dict[int, SweepRun] = {}
    pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(cells))]
    any_completed = False
    last_crash: "BaseException | None" = None
    while pending:
        requeue: List[Tuple[int, int]] = []
        pool = pool_cls(max_workers=workers)
        abandoned = False
        try:
            futures = [
                pool.submit(
                    _run_one, cells[i][0], cells[i][1], input_probs,
                    confidences, fractions, attempt, trace,
                )
                for i, attempt in pending
            ]
            for future, (i, attempt) in zip(futures, pending):
                circuit, config = cells[i]
                if cancel is not None and cancel.is_set():
                    abandoned = True
                    future.cancel()
                    results[i] = _abandoned_run(circuit, config, "cancelled")
                    continue
                start = time.perf_counter()
                try:
                    results[i] = _adopt_spans(future.result(timeout=timeout))
                    any_completed = True
                except concurrent.futures.TimeoutError:
                    # A hung worker must not hang the whole sweep: record
                    # the cell as timed out and move on.  The worker itself
                    # cannot be interrupted mid-run — the pool is shut down
                    # without waiting below (best effort: a process keeps
                    # burning CPU until it finishes; a thread until exit).
                    abandoned = True
                    future.cancel()
                    results[i] = _abandoned_run(
                        circuit, config,
                        f"timeout after {timeout:g}s",
                        elapsed=time.perf_counter() - start,
                        timed_out=True,
                    )
                except (concurrent.futures.BrokenExecutor, ChaosKill) as error:
                    # The *worker* died, not the estimation: a broken
                    # process pool fails every in-flight future at once,
                    # a ChaosKill unwinds one pool thread.  Transient by
                    # taxonomy — give the cell another round.
                    abandoned = True
                    last_crash = error
                    if attempt < retries:
                        requeue.append((i, attempt + 1))
                    else:
                        results[i] = _abandoned_run(
                            circuit, config,
                            f"worker crashed after {attempt + 1} attempts: "
                            f"{type(error).__name__}: {error}",
                        )
        finally:
            # cancel_futures revokes everything still queued; wait=False
            # keeps an abandoned (hung or crashed) worker from blocking
            # the return.
            pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
        pending = requeue
    if not any_completed and last_crash is not None and isinstance(
        last_crash, concurrent.futures.BrokenExecutor
    ):
        # Every attempt crashed and nothing ever ran: the substrate is
        # unusable, not flaky — let run_sweep pick another executor.
        raise last_crash
    return [results[i] for i in range(len(cells))]
