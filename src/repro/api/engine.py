"""The cached analysis engine — one circuit, one config, memoized stages.

The paper's tool is a pipeline: signal probabilities → detection
probabilities → test length → optimized input probabilities → pattern
generation → fault simulation.  The engine owns the circuit and a
:class:`~repro.api.config.ProtestConfig` and memoizes each intermediate
artifact (topology, signal probabilities, observabilities, detection
probabilities) keyed by the normalized input-probability tuple, so a chain
like ::

    engine.analyze()          # estimates once
    engine.test_length(0.98)  # cache hit
    engine.expected_coverage(500)  # cache hit

runs every estimation stage exactly once.  ``cache_info()`` exposes the
hit/miss counters the tests assert on.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.config import ProtestConfig
from repro.api.results import (
    CrossValidationResult,
    DetectionResult,
    IntervalEstimate,
    Provenance,
    SampledReport,
    SignalProbResult,
    SimulationResult,
    TestabilityReport,
    TestLengthResult,
)
from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.detection.estimator import DetectionProbabilityEstimator
from repro.errors import EstimationError
from repro.faults.model import Fault, fault_universe
from repro.faults.simulator import FaultSimResult, FaultSimulator
from repro.kernel import CompiledCircuit, compile_circuit
from repro.logicsim.patterns import PatternSet
from repro.optimize.hillclimb import (
    OptimizationResult,
    optimize_input_probabilities,
)
from repro.probability.estimator import (
    SignalProbabilities,
    input_probs_key,
)
from repro.sampling.montecarlo import (
    DetectionSample,
    MonteCarloEstimator,
    SamplingState,
    SignalSample,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import (
    PhaseProfiler,
    active_profiler,
    peak_rss_bytes,
)
from repro.telemetry.tracing import span
from repro.testlen.length import expected_coverage as _expected_coverage
from repro.testlen.length import required_test_length

__all__ = ["AnalysisEngine", "DEFAULT_CROSS_VALIDATION_TOLERANCE"]

#: Coverage-curve checkpoints recorded by :meth:`AnalysisEngine.fault_simulate`.
_CURVE_CHECKPOINTS = (10, 100, 1000, 10_000, 100_000)

#: Memoized pipeline stages, in order — the keys of ``cache_info()``.
_STAGES = (
    "signal", "observability", "detection", "sampling", "signal_sampling",
)

#: Default ``cross_validate`` tolerance.  The analytic estimator is a
#: heuristic with a documented error envelope: the paper's own Table 1
#: reports max detection-probability errors of 0.15 (ALU) and 0.48
#: (MULT), and this reproduction measures excesses up to ~0.60 on the
#: bundled circuits (comp_tree; see BENCH_perf.json "sampling").  The
#: default sits that envelope plus a few interval-halfwidths of seed
#: headroom above it, so a flag means disagreement *beyond* known model
#: error.  Note the structural limit: a per-fault excess over [0, 1]
#: cannot exceed ``max(low, 1 - high)``, so at this tolerance a flag
#: can only fire on extreme-probability faults — the per-fault flag
#: catches backends that break easy/hard faults wholesale, while
#: ``CrossValidationResult.mean_excess`` (gated by
#: ``benchmarks/bench_sampling.py``) and the tree-circuit strict check
#: (``tolerance=0.0``, exact where the estimator has no reconvergence
#: error) cover mid-range breakage.  ``strict_agreement`` always
#: reports the raw containment fraction.
DEFAULT_CROSS_VALIDATION_TOLERANCE = 0.7


class AnalysisEngine:
    """Probabilistic testability analysis with memoized pipeline stages.

    Parameters
    ----------
    circuit:
        A :class:`~repro.circuit.netlist.Circuit`, the name of a
        registered evaluation circuit (``"alu"``, ``"c17"``, ...), or a
        netlist file path (``.bench`` / ``.v`` / ``.sdl``, dispatched
        through :mod:`repro.circuit.io`; sequential ``.bench`` inputs
        are combinationally extracted).  Path strings also work as
        :func:`~repro.api.sweep.run_sweep` cells — they serialize to
        pool workers as plain strings.
    config:
        A :class:`ProtestConfig`, a preset name (``"paper"``, ``"fast"``,
        ``"accurate"``), or ``None`` for the paper preset.
    faults:
        Optional explicit fault list; defaults to the config-shaped
        uncollapsed stuck-at universe.
    use_kernel:
        When true (the default) every stage runs on the shared compiled
        flat-array kernel (:mod:`repro.kernel`) through the evaluation
        backend selected by ``config.backend`` (:mod:`repro.backends`;
        ``"auto"`` picks the numpy word engine for large circuits when
        numpy is importable).  ``False`` selects the legacy interpreters
        throughout — the numerically identical parity reference the
        perf bench measures against.
    registry:
        Optional shared :class:`~repro.telemetry.metrics.MetricsRegistry`
        for the stage counters (the service's job manager passes its
        own); defaults to a private per-engine registry.
    profile:
        When true, attach a
        :class:`~repro.telemetry.profiling.PhaseProfiler` that every
        computed stage activates — stage spans, backend word calls,
        estimator sub-phases and kernel level/opcode bins aggregate
        into :meth:`profile_report`.  Subject to the telemetry
        kill-switch (``PROTEST_TELEMETRY=0`` keeps the hot paths on
        their unprofiled no-op branch).

    Thread safety
    -------------
    One engine may be shared between threads: every stage cache (and its
    run/hit counters) is guarded by a single reentrant lock, held for
    the whole of a stage computation.  The lock is deliberately coarse —
    concurrent callers asking for the same uncached stage serialize and
    the second one takes a cache hit, so each stage still runs *exactly
    once* per input tuple and ``cache_info()`` counters stay consistent
    under contention (the property the service job engine and its
    stress test rely on).
    """

    def __init__(
        self,
        circuit: "Circuit | str",
        config: "ProtestConfig | str | None" = None,
        faults: "Iterable[Fault] | None" = None,
        use_kernel: bool = True,
        registry: "MetricsRegistry | None" = None,
        profile: bool = False,
    ) -> None:
        if isinstance(circuit, str):
            from repro.circuit.io import is_netlist_path, load_netlist

            if is_netlist_path(circuit):
                circuit = load_netlist(circuit)
            else:
                from repro.circuits.library import build

                circuit = build(circuit)
        self.circuit = circuit
        self.use_kernel = use_kernel
        self.config = ProtestConfig.coerce(config)
        # Guards every stage cache, the counters, and the lazily built
        # structure (topology, detector, sampler) — see "Thread safety".
        self._lock = threading.RLock()
        self._backend = None
        if use_kernel:
            # Fail fast on an unknown or unavailable backend name even
            # though analytic stages never dispatch through it — a typo
            # or a missing optional dependency must not silently run.
            _ = self.backend
        self._explicit_faults = list(faults) if faults is not None else None
        self._topology: "Topology | None" = None
        self._faults: "List[Fault] | None" = None
        self._detector: "DetectionProbabilityEstimator | None" = None
        # Stage caches, keyed by the normalized input-probability tuple.
        self._signal_cache: Dict[Tuple[float, ...], SignalProbabilities] = {}
        self._obs_cache: Dict[Tuple[float, ...], object] = {}
        self._detection_cache: Dict[Tuple[float, ...], Dict[Fault, float]] = {}
        self._sampler: "MonteCarloEstimator | None" = None
        self._sample_cache: Dict[Tuple[float, ...], DetectionSample] = {}
        self._signal_sample_cache: Dict[Tuple[float, ...], SignalSample] = {}
        # Analytic detection over the sampler's stratified subsample
        # (kept apart from the full-universe detection cache).
        self._subset_detection_cache: Dict[
            Tuple[float, ...], Dict[Fault, float]
        ] = {}
        # Stage run/hit counters and latencies live in a per-engine
        # telemetry registry: ``cache_info()`` reads it back, and the
        # process-wide /metrics merge picks it up through the registry
        # weak set (see repro.telemetry.metrics).  A private registry
        # dies with the engine, so long-lived owners (the service's
        # JobManager) pass their own to keep stage series scrapeable
        # after the per-job engine is gone — at the cost of cache_info
        # counters then being cumulative across engines.
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._stage_events = self.metrics.counter(
            "protest_engine_stage_events_total",
            "Engine stage executions (event=run) and cache hits (event=hit)",
            ("stage", "event"),
        )
        self._stage_seconds = self.metrics.histogram(
            "protest_engine_stage_seconds",
            "Wall-clock seconds per computed (non-cached) engine stage",
            ("stage",),
        )
        self._stage_rss = self.metrics.gauge(
            "protest_stage_peak_rss_bytes",
            "Process peak RSS observed right after each computed stage",
            ("stage",),
        )
        self._cone_elems = self.metrics.gauge(
            "protest_cone_cache_resident_elems",
            "Elements resident across the kernel's cone caches "
            "(bounded by cone_cache_budget)",
        )
        self._cone_evictions = self.metrics.gauge(
            "protest_cone_cache_evictions",
            "Cone slices evicted from the kernel's bounded cone caches",
        )
        # Opt-in phase profiler (see repro.telemetry.profiling): every
        # computed stage activates it, so stage spans, backend word
        # calls, estimator sub-phases and kernel level/opcode bins all
        # aggregate here.  ``profile_report()`` renders the payload.
        self.profiler: "PhaseProfiler | None" = (
            PhaseProfiler() if profile else None
        )

    # -- lazily built structure ---------------------------------------------------

    @property
    def topology(self) -> Topology:
        with self._lock:
            if self._topology is None:
                self._topology = Topology(self.circuit, cache=self.use_kernel)
            return self._topology

    @property
    def backend(self):
        """The nominally resolved evaluation backend (``None`` off-kernel).

        ``config.backend`` resolved for this circuit with no workload
        hint — ``"auto"`` picks by circuit size and numpy availability.
        Workload-shaped stages re-resolve with their block size
        (``"auto"`` only selects the numpy word engine for blocks wide
        enough to amortize it); the name that *actually ran* is
        recorded per result in ``provenance.backend``.
        """
        if not self.use_kernel:
            return None
        with self._lock:
            if self._backend is None:
                from repro.backends import resolve_backend

                self._backend = resolve_backend(
                    self.config.backend, self.circuit
                )
            return self._backend

    def _block_backend(self, block_size: int):
        """``config.backend`` resolved for a concrete block width."""
        if not self.use_kernel:
            return None
        from repro.backends import resolve_backend

        return resolve_backend(
            self.config.backend, self.circuit, block_bits=block_size
        )

    @property
    def backend_name(self) -> str:
        """The resolved backend's registry name (``"legacy"`` off-kernel)."""
        backend = self.backend
        return backend.name if backend is not None else "legacy"

    @property
    def compiled(self) -> CompiledCircuit:
        """The circuit's compiled flat-array form (one per circuit).

        All stages — simulation, fault simulation, the estimator's
        conditional cones — share this artifact via the module-level
        compile cache (keyed by circuit *and* backend identity), so it
        is built exactly once per (circuit, backend) pair.
        """
        return compile_circuit(self.circuit, self.backend)

    @property
    def faults(self) -> List[Fault]:
        with self._lock:
            if self._faults is None:
                if self._explicit_faults is not None:
                    self._faults = self._explicit_faults
                else:
                    self._faults = fault_universe(
                        self.circuit,
                        include_branches=self.config.include_branches,
                        only_fanout_stems=self.config.only_fanout_stems,
                    )
            return self._faults

    @property
    def detector(self) -> DetectionProbabilityEstimator:
        with self._lock:
            if self._detector is None:
                self._detector = DetectionProbabilityEstimator(
                    self.circuit,
                    self.config.estimator_params(),
                    self.config.stem_model,
                    self.config.pin_model,
                    self.topology,
                    use_kernel=self.use_kernel,
                )
            return self._detector

    @property
    def sampler(self) -> MonteCarloEstimator:
        """The Monte-Carlo grader configured by this engine's config."""
        with self._lock:
            if self._sampler is None:
                # The sampler gets the config *spec*, not the nominal
                # instance: it resolves "auto" against its own block size.
                self._sampler = MonteCarloEstimator(
                    self.circuit,
                    self.faults,
                    self.config.sampling_plan(),
                    use_kernel=self.use_kernel,
                    backend=self.config.backend if self.use_kernel else None,
                )
            return self._sampler

    # -- cache plumbing -----------------------------------------------------------

    def _stage_hit(self, stage: str) -> None:
        self._stage_events.labels(stage=stage, event="hit").inc()

    def _stage_run(self, stage: str, seconds: float) -> None:
        self._stage_events.labels(stage=stage, event="run").inc()
        self._stage_seconds.labels(stage=stage).observe(seconds)
        # Memory accounting per computed stage: the process peak RSS
        # high-water mark and the kernel cone-cache occupancy, both as
        # gauges so /metrics and /stats track them between scrapes.
        rss = peak_rss_bytes()
        if rss:
            self._stage_rss.labels(stage=stage).set(rss)
        # An engine-owned profiler or one activated by the caller (the
        # CLI's --profile) both collect the memory section.
        profiler = self.profiler or active_profiler()
        cone = None
        if self.use_kernel:
            cone = self.cone_cache_info()
            self._cone_elems.set(cone["resident_elems"])
            self._cone_evictions.set(cone["evictions"])
        if profiler is not None:
            if rss:
                profiler.record_memory(f"peak_rss_bytes.{stage}", rss)
            if cone is not None:
                profiler.record_memory("cone_cache", cone)

    def cone_cache_info(self) -> Dict[str, int]:
        """Kernel cone-cache counters, summed across the circuit's live
        compiled artifacts (the analytic and word-backend compiles are
        distinct artifacts with distinct caches)."""
        from repro.kernel import compiled_artifacts

        totals = {"hits": 0, "misses": 0, "evictions": 0,
                  "resident_elems": 0, "resident_slices": 0,
                  "budget_elems": CompiledCircuit.cone_cache_budget}
        for artifact in compiled_artifacts(self.circuit):
            info = artifact.cache_info()
            for key in ("hits", "misses", "evictions", "resident_elems",
                        "resident_slices"):
                totals[key] += info[key]
        return totals

    @contextlib.contextmanager
    def _profiled(self):
        """Activate the engine's profiler (no-op without ``profile=True``)."""
        if self.profiler is None:
            yield
            return
        with self.profiler.activate():
            yield

    def profile_report(self) -> "Dict[str, object] | None":
        """The phase-profile payload, or ``None`` off ``profile=True``.

        Includes the self/cumulative phase table, collapsed-stack
        (flamegraph) lines, and the memory section (per-stage peak RSS,
        cone-cache occupancy).  Stages served from the engine's caches
        contribute nothing — the profile shows computed work only.
        """
        if self.profiler is None:
            return None
        if self.use_kernel:
            self.profiler.record_memory("cone_cache", self.cone_cache_info())
        return self.profiler.to_payload()

    def cache_info(self) -> Dict[str, object]:
        """Per-stage run/hit counters, cache sizes and the active backend.

        Read back from the engine's telemetry registry — the same series
        ``GET /metrics`` exposes as ``protest_engine_stage_events_total``.
        """
        info: Dict[str, object] = {}
        for stage in _STAGES:
            info[f"{stage}_runs"] = int(
                self._stage_events.value(stage=stage, event="run")
            )
            info[f"{stage}_hits"] = int(
                self._stage_events.value(stage=stage, event="hit")
            )
        with self._lock:
            info["cached_input_tuples"] = len(self._signal_cache)
        info["backend"] = self.backend_name
        info["peak_rss_bytes"] = peak_rss_bytes()
        if self.use_kernel:
            info["cone_cache"] = self.cone_cache_info()
        return info

    def clear_cache(self) -> None:
        with self._lock:
            self._signal_cache.clear()
            self._obs_cache.clear()
            self._detection_cache.clear()
            self._sample_cache.clear()
            self._signal_sample_cache.clear()
            self._subset_detection_cache.clear()

    def _key(
        self, input_probs: "float | Mapping[str, float] | None"
    ) -> Tuple[float, ...]:
        return input_probs_key(self.circuit.inputs, input_probs)

    def _signal_for(
        self, key: Tuple[float, ...]
    ) -> "tuple[SignalProbabilities, float, bool]":
        with self._lock:
            cached = self._signal_cache.get(key)
            if cached is not None:
                self._stage_hit("signal")
                return cached, 0.0, True
            probs = dict(zip(self.circuit.inputs, key))
            with self._profiled(), span(
                "engine.signal", circuit=self.circuit.name
            ) as stage:
                result = self.detector.signal_estimator.run(probs)
            self._signal_cache[key] = result
            self._stage_run("signal", stage.duration)
            return result, stage.duration, False

    def _stages_for(self, key: Tuple[float, ...]):
        """Signal probabilities + observabilities, memoized per key."""
        with self._lock:
            timings: Dict[str, float] = {}
            cached: List[str] = []
            signal, t_signal, signal_hit = self._signal_for(key)
            timings["signal"] = t_signal
            if signal_hit:
                cached.append("signal")
            obs = self._obs_cache.get(key)
            if obs is not None:
                self._stage_hit("observability")
                timings["observability"] = 0.0
                cached.append("observability")
            else:
                with self._profiled(), span(
                    "engine.observability", circuit=self.circuit.name
                ) as stage:
                    obs = self.detector.observability_analyzer.run(signal)
                timings["observability"] = stage.duration
                self._obs_cache[key] = obs
                self._stage_run("observability", stage.duration)
            return signal, obs, timings, cached

    def _detection_for(self, key: Tuple[float, ...]):
        """Full-universe detection probabilities, memoized per key."""
        with self._lock:
            cached_det = self._detection_cache.get(key)
            if cached_det is not None:
                self._stage_hit("detection")
                return cached_det, {"detection": 0.0}, ["detection"]
            signal, obs, timings, cached = self._stages_for(key)
            with self._profiled(), span(
                "engine.detection", circuit=self.circuit.name
            ) as stage:
                detection = self.detector.run_with(signal, obs, self.faults)
            timings["detection"] = stage.duration
            self._detection_cache[key] = detection
            self._stage_run("detection", stage.duration)
            return detection, timings, cached

    def _sample_for(
        self,
        key: Tuple[float, ...],
        checkpoint: "Callable[[SampledReport], object] | None" = None,
        state_hook: "Callable[[SamplingState], object] | None" = None,
        resume: "SamplingState | None" = None,
    ):
        """Monte-Carlo detection sample, memoized per input tuple.

        The same stage-caching contract as the analytic stages: a chain
        of ``sampled_analyze()`` → ``sampled_detection_probabilities()``
        → ``cross_validate()`` on one input tuple simulates exactly once.

        ``checkpoint`` receives a partial :class:`SampledReport` after
        every sampled block (see
        :meth:`MonteCarloEstimator.sample_detection_probabilities`); it
        never fires on a cache hit — a memoized sample is already final.
        A checkpoint exception (cancellation, timeout) propagates and
        nothing is cached, so an aborted run can never serve a partial
        sample to later callers.  ``state_hook`` and ``resume`` follow
        the same rule: neither fires nor applies on a cache hit (the
        memoized sample already *is* the bit-identical final answer).
        """
        with self._lock:
            cached = self._sample_cache.get(key)
            if cached is not None:
                self._stage_hit("sampling")
                return cached, {"sampling": 0.0}, ["sampling"]
            start = time.perf_counter()
            probs = dict(zip(self.circuit.inputs, key))
            inner = None
            if checkpoint is not None:
                def inner(partial):
                    checkpoint(self._sampled_report(
                        partial,
                        {"sampling": time.perf_counter() - start},
                        [],
                    ))
            with self._profiled(), span(
                "engine.sampling", circuit=self.circuit.name
            ) as stage:
                sample = self.sampler.sample_detection_probabilities(
                    probs, checkpoint=inner, state_hook=state_hook,
                    resume=resume,
                )
                stage.set("backend", self.sampler.backend_name)
                stage.set("n_patterns", sample.n_patterns)
            self._sample_cache[key] = sample
            self._stage_run("sampling", stage.duration)
            return sample, {"sampling": stage.duration}, []

    def _provenance(
        self,
        timings: Dict[str, float],
        cached: Sequence[str],
        backend: "str | None" = None,
    ) -> Provenance:
        # Provenance records what actually ran.  Packed-pattern stages
        # (fault sim, sampling) pass their resolved backend; the
        # analytic fallback is the python kernel — the conditional-cone
        # evaluator is not backend-dispatched, so an analytic report
        # must not claim the engine's nominally resolved backend.
        if backend is None:
            backend = "python" if self.use_kernel else "legacy"
        return Provenance(
            circuit=self.circuit.name,
            config_hash=self.config.config_hash,
            config_name=self.config.name,
            timings=timings,
            cached=tuple(cached),
            backend=backend,
        )

    # -- estimation ---------------------------------------------------------------

    def signal_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> SignalProbResult:
        """Estimated 1-probability of every node (paper §2)."""
        key = self._key(input_probs)
        signal, elapsed, hit = self._signal_for(key)
        provenance = self._provenance(
            {"signal": elapsed}, ["signal"] if hit else []
        )
        return SignalProbResult(
            provenance=provenance,
            input_probs=dict(signal.input_probs),
            probabilities=signal.as_dict(),
            conditioned_gates=signal.conditioned_gates,
        )

    def raw_signal_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> SignalProbabilities:
        """The estimator-native mapping (for in-process composition)."""
        return self._signal_for(self._key(input_probs))[0]

    def detection_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
    ) -> DetectionResult:
        """Estimated detection probability of every fault (paper §3)."""
        key = self._key(input_probs)
        if faults is None:
            detection, timings, cached = self._detection_for(key)
        else:
            signal, obs, timings, cached = self._stages_for(key)
            detection = self.detector.run_with(signal, obs, faults)
        return DetectionResult(
            provenance=self._provenance(timings, cached),
            input_probs=dict(zip(self.circuit.inputs, key)),
            probabilities=dict(detection),
        )

    def raw_detection_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
    ) -> Dict[Fault, float]:
        """Detection probabilities as a plain ``{Fault: p}`` dict."""
        key = self._key(input_probs)
        if faults is None:
            detection, _, _ = self._detection_for(key)
            return dict(detection)  # copy: the cached dict stays pristine
        signal, obs, _, _ = self._stages_for(key)
        return self.detector.run_with(signal, obs, faults)

    # -- test lengths -----------------------------------------------------------------

    def test_length(
        self,
        confidence: float = 0.95,
        fraction: float = 1.0,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> TestLengthResult:
        """Patterns for the easiest ``fraction`` at ``confidence`` (formula (3)).

        ``n_patterns`` is ``None`` when the kept fault set contains an
        undetectable fault (no finite test reaches the confidence) or the
        length overflows the search bound.
        """
        if not 0.0 < confidence < 1.0:
            raise EstimationError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if not 0.0 < fraction <= 1.0:
            raise EstimationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        detection, timings, cached = self._detection_for(
            self._key(input_probs)
        )
        values = list(detection.values())
        try:
            n: "int | None" = required_test_length(values, confidence, fraction)
        except EstimationError:
            n = None
        return TestLengthResult(
            provenance=self._provenance(timings, cached),
            confidence=confidence,
            fraction=fraction,
            n_patterns=n,
            n_faults=len(values),
        )

    def expected_coverage(
        self,
        n_patterns: int,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> float:
        """Predicted fault coverage after ``n_patterns`` random patterns."""
        detection, _, _ = self._detection_for(self._key(input_probs))
        return _expected_coverage(list(detection.values()), n_patterns)

    # -- optimization -----------------------------------------------------------------

    def optimize(
        self,
        n_ref: int = 4096,
        grid: int = 16,
        max_rounds: int = 10,
        start: "float | Mapping[str, float] | None" = None,
        faults: "Iterable[Fault] | None" = None,
        **kwargs,
    ) -> OptimizationResult:
        """Optimize the input probabilities (paper §6, Table 4)."""
        kwargs.setdefault("seed", self.config.seed)
        return optimize_input_probabilities(
            self.circuit,
            n_ref=n_ref,
            grid=grid,
            max_rounds=max_rounds,
            start=start,
            params=self.config.estimator_params(),
            stem_model=self.config.stem_model,
            pin_model=self.config.pin_model,
            faults=faults if faults is not None else self.faults,
            **kwargs,
        )

    # -- patterns and simulation --------------------------------------------------------

    def generate_patterns(
        self,
        n_patterns: int,
        input_probs: "float | Mapping[str, float] | None" = None,
        seed: "int | None" = None,
    ) -> PatternSet:
        """Random pattern set realizing the given input probabilities."""
        if seed is None:
            seed = self.config.seed
        return PatternSet.random(
            self.circuit.inputs, n_patterns, input_probs, seed
        )

    def fault_simulate(
        self,
        patterns: PatternSet,
        faults: "Iterable[Fault] | None" = None,
        drop_detected: bool = True,
        block_size: int = 1024,
    ) -> SimulationResult:
        """Static fault simulation of a pattern set (paper §7)."""
        start = time.perf_counter()
        raw = self.raw_fault_simulate(
            patterns, faults, drop_detected=drop_detected,
            block_size=block_size,
        )
        elapsed = time.perf_counter() - start
        n = patterns.n_patterns
        checkpoints = [c for c in _CURVE_CHECKPOINTS if c < n] + [n]
        detected = sum(1 for r in raw.records.values() if r.detected)
        backend = self._block_backend(block_size)
        return SimulationResult(
            provenance=self._provenance(
                {"simulation": elapsed}, [],
                backend=backend.name if backend is not None else "legacy",
            ),
            n_patterns=n,
            n_faults=len(raw.records),
            n_detected=detected,
            coverage=raw.coverage(),
            curve={c: raw.coverage_at(c) for c in checkpoints},
            raw=raw,
        )

    def raw_fault_simulate(
        self,
        patterns: PatternSet,
        faults: "Iterable[Fault] | None" = None,
        drop_detected: bool = True,
        block_size: int = 1024,
    ) -> FaultSimResult:
        """The simulator-native result (for in-process composition)."""
        fault_list = list(faults) if faults is not None else self.faults
        simulator = FaultSimulator(
            self.circuit,
            fault_list,
            use_kernel=self.use_kernel,
            topology=self._topology,
            backend=self._block_backend(block_size),
        )
        with self._profiled():
            return simulator.run(
                patterns, block_size=block_size, drop_detected=drop_detected
            )

    # -- reporting --------------------------------------------------------------------

    def analyze(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        confidences: Sequence[float] = (0.95, 0.98, 0.999),
        fractions: Sequence[float] = (1.0, 0.98),
        hardest: int = 5,
    ) -> TestabilityReport:
        """One-shot analysis: detection probabilities plus test lengths.

        Unreachable requirements (undetectable faults in the kept set) are
        recorded as ``None`` in ``test_lengths``.
        """
        key = self._key(input_probs)
        detection, timings, cached = self._detection_for(key)
        ranked = sorted(detection.items(), key=lambda item: item[1])
        values = sorted(detection.values())
        lengths: Dict[Tuple[float, float], Optional[int]] = {}
        for fraction in fractions:
            for confidence in confidences:
                try:
                    lengths[(fraction, confidence)] = required_test_length(
                        values, confidence, fraction
                    )
                except EstimationError:
                    lengths[(fraction, confidence)] = None
        return TestabilityReport(
            circuit_name=self.circuit.name,
            n_faults=len(detection),
            min_detection=values[0] if values else 0.0,
            median_detection=values[len(values) // 2] if values else 0.0,
            hardest_faults=ranked[:hardest],
            test_lengths=lengths,
            provenance=self._provenance(timings, cached),
        )

    # -- Monte-Carlo grading ------------------------------------------------------

    def _sampled_report(
        self,
        sample: DetectionSample,
        timings: Dict[str, float],
        cached: Sequence[str],
        test_lengths: "Dict[Tuple[float, float], Optional[int]] | None" = None,
    ) -> SampledReport:
        config = self.config
        return SampledReport(
            circuit_name=self.circuit.name,
            n_patterns=sample.n_patterns,
            n_faults=len(sample.intervals),
            n_universe=sample.n_universe,
            converged=sample.converged,
            max_halfwidth=sample.max_halfwidth,
            target_halfwidth=config.target_halfwidth,
            confidence_level=config.confidence_level,
            interval_method=config.interval_method,
            seed=config.seed,
            detection=dict(sample.intervals),
            coverage=sample.coverage,
            test_lengths=dict(test_lengths) if test_lengths else {},
            convergence=list(sample.history),
            provenance=self._provenance(
                timings, cached, backend=self.sampler.backend_name
            ),
        )

    def sampled_detection_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        checkpoint: "Callable[[SampledReport], object] | None" = None,
        state_hook: "Callable[[SamplingState], object] | None" = None,
        resume: "SamplingState | None" = None,
    ) -> SampledReport:
        """Monte-Carlo graded detection probabilities, with intervals.

        The statistical counterpart of
        :meth:`detection_probabilities`: every fault's detection
        probability is sampled on the compiled kernel until the
        sequential stopping rule (``config.target_halfwidth`` /
        ``config.max_patterns``) is satisfied.

        ``checkpoint`` receives a partial :class:`SampledReport` after
        every sampled block — successive snapshots carry non-increasing
        ``max_halfwidth``, which is what lets the analysis service
        stream progressively tightening intervals.  It never fires when
        the sample is served from the stage cache, and an exception it
        raises aborts the run without caching (see :meth:`_sample_for`).

        ``state_hook`` and ``resume`` expose the estimator's
        checkpoint/resume seam (see
        :meth:`MonteCarloEstimator.sample_detection_probabilities`):
        the hook receives the raw
        :class:`~repro.sampling.montecarlo.SamplingState` per block, and
        ``resume`` continues an interrupted run seed-exactly.
        """
        sample, timings, cached = self._sample_for(
            self._key(input_probs), checkpoint,
            state_hook=state_hook, resume=resume,
        )
        return self._sampled_report(sample, timings, cached)

    def raw_sampled_detection_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> Dict[Fault, IntervalEstimate]:
        """Sampled intervals as a plain ``{Fault: IntervalEstimate}`` dict."""
        sample, _, _ = self._sample_for(self._key(input_probs))
        return dict(sample.intervals)

    def sampled_signal_probabilities(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> Dict[str, IntervalEstimate]:
        """Monte-Carlo graded signal probabilities (one interval per node).

        Memoized per input tuple like every other stage; the
        ``signal_sampling_runs`` / ``signal_sampling_hits`` counters in
        :meth:`cache_info` track it.
        """
        key = self._key(input_probs)
        with self._lock:
            cached = self._signal_sample_cache.get(key)
            if cached is None:
                probs = dict(zip(self.circuit.inputs, key))
                with self._profiled(), span(
                    "engine.signal_sampling", circuit=self.circuit.name
                ) as stage:
                    cached = self.sampler.sample_signal_probabilities(probs)
                self._signal_sample_cache[key] = cached
                self._stage_run("signal_sampling", stage.duration)
            else:
                self._stage_hit("signal_sampling")
            return dict(cached.intervals)

    def sampled_analyze(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        confidences: Sequence[float] = (0.95, 0.98, 0.999),
        fractions: Sequence[float] = (1.0, 0.98),
        checkpoint: "Callable[[SampledReport], object] | None" = None,
        state_hook: "Callable[[SamplingState], object] | None" = None,
        resume: "SamplingState | None" = None,
    ) -> SampledReport:
        """One-shot Monte-Carlo analysis (the sampled :meth:`analyze`).

        Test lengths are derived from the sampled *point estimates*; a
        kept fault that was never detected in the sample makes the
        requirement unreachable (``None``), exactly like an undetectable
        fault does on the analytic path.  ``checkpoint`` streams partial
        reports per sampled block (see
        :meth:`sampled_detection_probabilities`); snapshots carry no
        test lengths — those are derived once, from the final sample.
        ``state_hook``/``resume`` expose the estimator's
        checkpoint/resume seam, as in
        :meth:`sampled_detection_probabilities`.
        """
        sample, timings, cached = self._sample_for(
            self._key(input_probs), checkpoint,
            state_hook=state_hook, resume=resume,
        )
        values = sorted(iv.estimate for iv in sample.intervals.values())
        lengths: Dict[Tuple[float, float], Optional[int]] = {}
        for fraction in fractions:
            for confidence in confidences:
                try:
                    lengths[(fraction, confidence)] = required_test_length(
                        values, confidence, fraction
                    )
                except EstimationError:
                    lengths[(fraction, confidence)] = None
        return self._sampled_report(sample, timings, cached, lengths)

    def cross_validate(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
        tolerance: float = DEFAULT_CROSS_VALIDATION_TOLERANCE,
    ) -> CrossValidationResult:
        """Check the analytic estimates against the sampled intervals.

        Runs both pipelines (each memoized per input tuple) and flags
        every fault whose analytic detection probability falls outside
        its sampled interval widened by ``tolerance``.  With the default
        tolerance — sized to the estimator's documented error envelope
        (see :data:`DEFAULT_CROSS_VALIDATION_TOLERANCE`) — a flag means
        an implementation bug, which makes this the permanent
        correctness oracle for alternative kernel backends.
        ``strict_agreement`` additionally records the fraction of
        analytic estimates inside the raw interval.
        """
        if tolerance < 0.0:
            raise EstimationError(
                f"tolerance must be non-negative, got {tolerance}"
            )
        key = self._key(input_probs)
        sample, s_timings, s_cached = self._sample_for(key)
        if len(self.sampler.faults) < len(self.faults):
            detection, det_timings, det_cached = self._subset_detection_for(
                key
            )
        else:
            detection, det_timings, det_cached = self._detection_for(key)
        timings = dict(det_timings)
        timings.update(s_timings)
        cached = list(det_cached) + list(s_cached)
        flagged = []
        inside = 0
        max_excess = 0.0
        total_excess = 0.0
        checked = 0
        for fault, interval in sample.intervals.items():
            analytic = detection[fault]
            checked += 1
            excess = interval.excess(analytic)
            max_excess = max(max_excess, excess)
            total_excess += excess
            if excess == 0.0:
                inside += 1
            if excess > tolerance:
                flagged.append((fault, analytic, interval))
        flagged.sort(key=lambda item: -item[2].excess(item[1]))
        return CrossValidationResult(
            circuit_name=self.circuit.name,
            n_checked=checked,
            tolerance=tolerance,
            confidence_level=self.config.confidence_level,
            n_patterns=sample.n_patterns,
            strict_agreement=inside / checked if checked else 1.0,
            max_excess=max_excess,
            mean_excess=total_excess / checked if checked else 0.0,
            flagged=flagged,
            provenance=self._provenance(
                timings, cached, backend=self.sampler.backend_name
            ),
        )

    def _subset_detection_for(self, key: Tuple[float, ...]):
        """Analytic detection over the sampler's stratified subsample.

        Grades only the faults the sampler graded — instead of paying
        for the full universe the subsample was configured to avoid —
        and memoizes per input tuple under the shared detection
        counters.
        """
        with self._lock:
            cached_det = self._subset_detection_cache.get(key)
            if cached_det is not None:
                self._stage_hit("detection")
                return cached_det, {"detection": 0.0}, ["detection"]
            signal, obs, timings, cached = self._stages_for(key)
            with self._profiled(), span(
                "engine.detection", circuit=self.circuit.name, subset=True
            ) as stage:
                detection = self.detector.run_with(
                    signal, obs, self.sampler.faults
                )
            timings["detection"] = stage.duration
            self._subset_detection_cache[key] = detection
            self._stage_run("detection", stage.duration)
            return detection, timings, cached
