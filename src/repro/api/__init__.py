"""Public analysis API: config → engine → results → sweeps.

This is the stable programmatic surface of the reproduction::

    from repro.api import AnalysisEngine, ProtestConfig, run_sweep

    engine = AnalysisEngine("alu", ProtestConfig.preset("paper"))
    report = engine.analyze()              # estimates once
    n = engine.test_length(0.98, 0.98)     # reuses the cached stages
    print(report.to_json(indent=2))

    sweep = run_sweep(["alu", "div", "comp8"], ["paper", "fast"], workers=4)

The legacy :class:`repro.protest.Protest` facade delegates here.
"""

from repro.api.config import PRESETS, ProtestConfig, available_presets
from repro.api.engine import (
    DEFAULT_CROSS_VALIDATION_TOLERANCE,
    AnalysisEngine,
)
from repro.api.results import (
    CrossValidationResult,
    DetectionResult,
    IntervalEstimate,
    Provenance,
    SampledReport,
    SignalProbResult,
    SimulationResult,
    TestabilityReport,
    TestLengthResult,
    canonical_payload,
)
from repro.api.sweep import SweepResult, SweepRun, run_sweep

__all__ = [
    "AnalysisEngine",
    "CrossValidationResult",
    "DEFAULT_CROSS_VALIDATION_TOLERANCE",
    "DetectionResult",
    "IntervalEstimate",
    "PRESETS",
    "Provenance",
    "ProtestConfig",
    "SampledReport",
    "SignalProbResult",
    "SimulationResult",
    "SweepResult",
    "SweepRun",
    "TestLengthResult",
    "TestabilityReport",
    "available_presets",
    "canonical_payload",
    "run_sweep",
]
