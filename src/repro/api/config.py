"""Typed, validated configuration for the analysis engine.

A :class:`ProtestConfig` consolidates every knob that was previously
scattered across :class:`~repro.probability.estimator.EstimatorParams`,
the ``stem_model`` / ``pin_model`` strings, the fault-universe options and
the pattern seed into one frozen object that hashes stably.  Two configs
with the same knobs produce the same :attr:`ProtestConfig.config_hash`
regardless of their display name, which is what the engine caches and the
result provenance record on.

Named presets::

    ProtestConfig.preset("paper")      # the published MAXVERS=3/MAXLIST=8
    ProtestConfig.preset("fast")      # cheap screening sweeps
    ProtestConfig.preset("accurate")  # deep conditioning for sign-off
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from repro.detection.observability import PIN_MODELS, STEM_MODELS
from repro.errors import EstimationError
from repro.probability.estimator import EstimatorParams
from repro.sampling.montecarlo import SamplingPlan

__all__ = ["ProtestConfig", "PRESETS", "METHODS", "available_presets"]

#: Recognized values of the ``method`` knob.
METHODS = ("analytic", "sampled")

#: The sampling knobs' single source of truth for default values.
_PLAN_DEFAULTS = SamplingPlan()


@dataclasses.dataclass(frozen=True)
class ProtestConfig:
    """Frozen configuration of one probabilistic-testability analysis.

    Attributes
    ----------
    maxvers / maxlist / candidate_cap:
        The signal-probability estimator's tuning knobs (paper §2); see
        :class:`~repro.probability.estimator.EstimatorParams`.
    stem_model / pin_model:
        Observability models (paper §3).
    include_branches / only_fanout_stems:
        Shape of the default stuck-at fault universe.
    seed:
        Default seed for pattern generation, Monte-Carlo sampling and
        optimizer jitter.
    backend:
        Evaluation engine behind the compiled kernel
        (:mod:`repro.backends`): a registered backend name
        (``"python"``, ``"numpy"``, or a third-party registration) or
        ``"auto"`` (the default) to pick the numpy word engine for
        large circuits when numpy is importable and the pure-python
        engine otherwise.  Backends are bit-identical; the knob only
        trades throughput.
    method:
        ``"analytic"`` (the paper's estimator pipeline) or ``"sampled"``
        (Monte-Carlo grading, :mod:`repro.sampling`); selects what
        ``run_sweep`` and the sampled engine entry points run.
    target_halfwidth / confidence_level / max_patterns / interval_method /
    fault_sample:
        The Monte-Carlo sequential stopping rule; see
        :class:`~repro.sampling.montecarlo.SamplingPlan`.
    name:
        Display label ("paper", "fast", ...); *not* part of the hash.
    """

    maxvers: int = 3
    maxlist: int = 8
    candidate_cap: int = 10
    stem_model: str = "chain"
    pin_model: str = "boolean_difference"
    include_branches: bool = True
    only_fanout_stems: bool = False
    seed: int = 0
    backend: str = "auto"
    method: str = "analytic"
    # Sampling defaults come from SamplingPlan — one source of truth.
    target_halfwidth: float = _PLAN_DEFAULTS.target_halfwidth
    confidence_level: float = _PLAN_DEFAULTS.confidence_level
    max_patterns: int = _PLAN_DEFAULTS.max_patterns
    interval_method: str = _PLAN_DEFAULTS.interval_method
    fault_sample: Optional[int] = _PLAN_DEFAULTS.fault_sample
    name: str = "custom"

    def __post_init__(self) -> None:
        # EstimatorParams carries the numeric-range validation.
        self.estimator_params()
        if self.stem_model not in STEM_MODELS:
            raise EstimationError(
                f"stem_model must be one of {STEM_MODELS}, "
                f"got {self.stem_model!r}"
            )
        if self.pin_model not in PIN_MODELS:
            raise EstimationError(
                f"pin_model must be one of {PIN_MODELS}, "
                f"got {self.pin_model!r}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise EstimationError(f"seed must be an int, got {self.seed!r}")
        # Any non-empty name is admissible here: third-party backends may
        # register after the config is built.  Unknown names surface as
        # BackendError when the engine resolves them.
        if not isinstance(self.backend, str) or not self.backend:
            raise EstimationError(
                f"backend must be a backend name or 'auto', "
                f"got {self.backend!r}"
            )
        if self.method not in METHODS:
            raise EstimationError(
                f"method must be one of {METHODS}, got {self.method!r}"
            )
        # SamplingPlan carries the sampling-knob validation.
        self.sampling_plan()

    # -- construction ---------------------------------------------------------------

    @classmethod
    def preset(cls, name: str) -> "ProtestConfig":
        """One of the named presets (see :func:`available_presets`)."""
        try:
            return PRESETS[name]
        except KeyError:
            raise EstimationError(
                f"unknown preset {name!r}; available: {available_presets()}"
            ) from None

    @classmethod
    def coerce(cls, value: "ProtestConfig | str | None") -> "ProtestConfig":
        """Accept a config, a preset name, or ``None`` (the paper preset)."""
        if value is None:
            return PRESETS["paper"]
        if isinstance(value, str):
            return cls.preset(value)
        if isinstance(value, ProtestConfig):
            return value
        raise EstimationError(
            f"expected a ProtestConfig or preset name, got {value!r}"
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProtestConfig":
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - fields
        if unknown:
            raise EstimationError(
                f"unknown ProtestConfig keys: {sorted(unknown)}"
            )
        return cls(**dict(data))

    def replace(self, **changes: Any) -> "ProtestConfig":
        """A copy with some knobs changed (relabelled "custom" by default)."""
        changes.setdefault("name", "custom")
        return dataclasses.replace(self, **changes)

    # -- derived views -----------------------------------------------------------------

    def estimator_params(self) -> EstimatorParams:
        """The §2 estimator's parameter bundle."""
        return EstimatorParams(
            maxvers=self.maxvers,
            maxlist=self.maxlist,
            candidate_cap=self.candidate_cap,
        )

    def sampling_plan(self) -> SamplingPlan:
        """The Monte-Carlo grading knobs as a sampling plan."""
        return SamplingPlan(
            target_halfwidth=self.target_halfwidth,
            confidence_level=self.confidence_level,
            max_patterns=self.max_patterns,
            interval_method=self.interval_method,
            seed=self.seed,
            fault_sample=self.fault_sample,
        )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    def to_json(self, indent: "int | None" = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @property
    def config_hash(self) -> str:
        """Stable short hash of the *behavioural* knobs (name excluded)."""
        payload = self.to_dict()
        del payload["name"]
        canonical = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


PRESETS: Dict[str, ProtestConfig] = {
    # The settings of the published tool (paper §2, last paragraph).
    "paper": ProtestConfig(name="paper"),
    # Cheap screening: tree rule plus one conditioning node.
    "fast": ProtestConfig(
        maxvers=1, maxlist=4, candidate_cap=6, name="fast"
    ),
    # Deep conditioning for sign-off quality estimates.
    "accurate": ProtestConfig(
        maxvers=5, maxlist=12, candidate_cap=16, name="accurate"
    ),
    # Monte-Carlo grading with 99% Wilson intervals (repro.sampling).
    "sampled": ProtestConfig(method="sampled", name="sampled"),
}


def available_presets() -> "list[str]":
    """The registered preset names, sorted."""
    return sorted(PRESETS)
