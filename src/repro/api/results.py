"""Serializable result objects of the analysis engine.

Every stage of the pipeline returns a rich result carrying the numbers
*and* their provenance — circuit name, config hash and per-stage wall-clock
timings — so sweep outputs can be archived, diffed and recombined without
re-running the estimators.  All results round-trip through
``to_dict()`` / ``from_dict()`` and serialize with ``to_json()``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults.model import Fault
from repro.report.tables import ascii_table, format_count

__all__ = [
    "Provenance",
    "SignalProbResult",
    "DetectionResult",
    "TestLengthResult",
    "SimulationResult",
    "TestabilityReport",
]


@dataclasses.dataclass(frozen=True)
class Provenance:
    """Where a result came from and what it cost.

    ``timings`` maps stage names (``"signal"``, ``"observability"``,
    ``"detection"``, ...) to seconds; a stage served from the engine cache
    records ``0.0`` and shows up in ``cached`` instead.
    """

    circuit: str
    config_hash: str
    config_name: str = "custom"
    timings: Dict[str, float] = dataclasses.field(default_factory=dict)
    cached: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "config_hash": self.config_hash,
            "config_name": self.config_name,
            "timings": dict(self.timings),
            "cached": list(self.cached),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Provenance":
        return cls(
            circuit=data["circuit"],
            config_hash=data["config_hash"],
            config_name=data.get("config_name", "custom"),
            timings=dict(data.get("timings", {})),
            cached=tuple(data.get("cached", ())),
        )


class _Serializable:
    """``to_json`` / ``from_json`` on top of the per-class dict codecs."""

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_json(self, indent: "int | None" = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str):
        return cls.from_dict(json.loads(payload))


def _fault_to_dict(fault: Fault) -> Dict[str, Any]:
    return {"node": fault.node, "pin": fault.pin, "value": fault.value}


def _fault_from_dict(data: Mapping[str, Any]) -> Fault:
    return Fault(data["node"], data["pin"], data["value"])


@dataclasses.dataclass
class SignalProbResult(_Serializable):
    """Estimated 1-probability of every node (stage 1)."""

    provenance: Provenance
    input_probs: Dict[str, float]
    probabilities: Dict[str, float]
    conditioned_gates: int = 0

    def __getitem__(self, node: str) -> float:
        return self.probabilities[node]

    def __contains__(self, node: str) -> bool:
        return node in self.probabilities

    def __len__(self) -> int:
        return len(self.probabilities)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "signal_probabilities",
            "provenance": self.provenance.to_dict(),
            "input_probs": dict(self.input_probs),
            "probabilities": dict(self.probabilities),
            "conditioned_gates": self.conditioned_gates,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SignalProbResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            input_probs=dict(data["input_probs"]),
            probabilities=dict(data["probabilities"]),
            conditioned_gates=data.get("conditioned_gates", 0),
        )


@dataclasses.dataclass
class DetectionResult(_Serializable):
    """Estimated detection probability of every fault (stage 2)."""

    provenance: Provenance
    input_probs: Dict[str, float]
    probabilities: Dict[Fault, float]

    def __getitem__(self, fault: Fault) -> float:
        return self.probabilities[fault]

    def __len__(self) -> int:
        return len(self.probabilities)

    def values(self) -> List[float]:
        return list(self.probabilities.values())

    def hardest(self, n: int = 5) -> List[Tuple[Fault, float]]:
        """The ``n`` faults with the lowest detection probability."""
        ranked = sorted(self.probabilities.items(), key=lambda item: item[1])
        return ranked[:n]

    def min_detection(self) -> float:
        values = sorted(self.probabilities.values())
        return values[0] if values else 0.0

    def median_detection(self) -> float:
        values = sorted(self.probabilities.values())
        return values[len(values) // 2] if values else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "detection_probabilities",
            "provenance": self.provenance.to_dict(),
            "input_probs": dict(self.input_probs),
            "faults": [
                dict(_fault_to_dict(fault), p=p)
                for fault, p in self.probabilities.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetectionResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            input_probs=dict(data["input_probs"]),
            probabilities={
                _fault_from_dict(rec): rec["p"] for rec in data["faults"]
            },
        )


@dataclasses.dataclass
class TestLengthResult(_Serializable):
    """Required random test length for one (d, e) requirement (stage 3).

    ``n_patterns is None`` means no finite test reaches the confidence —
    the fault set contains an undetectable fault (P_f = 0).
    """

    __test__ = False  # "Test" prefix: keep pytest from collecting this

    provenance: Provenance
    confidence: float
    fraction: float
    n_patterns: Optional[int]
    n_faults: int

    @property
    def reachable(self) -> bool:
        return self.n_patterns is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "test_length",
            "provenance": self.provenance.to_dict(),
            "confidence": self.confidence,
            "fraction": self.fraction,
            "n_patterns": self.n_patterns,
            "n_faults": self.n_faults,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TestLengthResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            confidence=data["confidence"],
            fraction=data["fraction"],
            n_patterns=data["n_patterns"],
            n_faults=data["n_faults"],
        )


@dataclasses.dataclass
class SimulationResult(_Serializable):
    """Fault-simulation outcome of one pattern set (stage 5).

    ``raw`` keeps the full :class:`~repro.faults.simulator.FaultSimResult`
    for in-process callers; it is not serialized.
    """

    provenance: Provenance
    n_patterns: int
    n_faults: int
    n_detected: int
    coverage: float
    curve: Dict[int, float] = dataclasses.field(default_factory=dict)
    raw: Any = dataclasses.field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "fault_simulation",
            "provenance": self.provenance.to_dict(),
            "n_patterns": self.n_patterns,
            "n_faults": self.n_faults,
            "n_detected": self.n_detected,
            "coverage": self.coverage,
            "curve": {str(n): c for n, c in self.curve.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            n_patterns=data["n_patterns"],
            n_faults=data["n_faults"],
            n_detected=data["n_detected"],
            coverage=data["coverage"],
            curve={int(n): c for n, c in data.get("curve", {}).items()},
        )


@dataclasses.dataclass
class TestabilityReport(_Serializable):
    """Summary of one full analysis run (printable and serializable).

    ``test_lengths`` maps ``(fraction, confidence)`` to the required
    pattern count, or ``None`` when the kept fault set contains an
    undetectable fault (rendered as ``"inf"`` by :meth:`to_text`).
    """

    __test__ = False  # "Test" prefix: keep pytest from collecting this

    circuit_name: str
    n_faults: int
    min_detection: float
    median_detection: float
    hardest_faults: List[Tuple[Fault, float]]
    test_lengths: Dict[Tuple[float, float], Optional[int]]
    provenance: Optional[Provenance] = None

    def to_text(self) -> str:
        lines = [
            f"PROTEST analysis of {self.circuit_name}",
            f"  faults analysed: {self.n_faults}",
            f"  min / median estimated P_f: "
            f"{self.min_detection:.3e} / {self.median_detection:.3e}",
            "  hardest faults:",
        ]
        for fault, p in self.hardest_faults:
            lines.append(f"    {str(fault):30s} P_f = {p:.3e}")
        rows = [
            [f"{d:.2f}", f"{e:.3f}",
             format_count(n) if n is not None else "inf"]
            for (d, e), n in sorted(self.test_lengths.items())
        ]
        lines.append(
            ascii_table(["d", "e", "N"], rows, title="  required test lengths")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "testability_report",
            "circuit": self.circuit_name,
            "provenance": (
                self.provenance.to_dict() if self.provenance else None
            ),
            "n_faults": self.n_faults,
            "min_detection": self.min_detection,
            "median_detection": self.median_detection,
            "hardest_faults": [
                dict(_fault_to_dict(fault), p=p)
                for fault, p in self.hardest_faults
            ],
            "test_lengths": [
                {"fraction": d, "confidence": e, "n_patterns": n}
                for (d, e), n in sorted(self.test_lengths.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TestabilityReport":
        provenance = data.get("provenance")
        return cls(
            circuit_name=data["circuit"],
            n_faults=data["n_faults"],
            min_detection=data["min_detection"],
            median_detection=data["median_detection"],
            hardest_faults=[
                (_fault_from_dict(rec), rec["p"])
                for rec in data["hardest_faults"]
            ],
            test_lengths={
                (rec["fraction"], rec["confidence"]): rec["n_patterns"]
                for rec in data["test_lengths"]
            },
            provenance=(
                Provenance.from_dict(provenance) if provenance else None
            ),
        )
