"""Serializable result objects of the analysis engine.

Every stage of the pipeline returns a rich result carrying the numbers
*and* their provenance — circuit name, config hash and per-stage wall-clock
timings — so sweep outputs can be archived, diffed and recombined without
re-running the estimators.  All results round-trip through
``to_dict()`` / ``from_dict()`` and serialize with ``to_json()``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.faults.model import Fault
from repro.report.tables import ascii_table, format_count
from repro.sampling.intervals import IntervalEstimate

__all__ = [
    "Provenance",
    "SignalProbResult",
    "DetectionResult",
    "TestLengthResult",
    "SimulationResult",
    "TestabilityReport",
    "IntervalEstimate",
    "SampledReport",
    "CrossValidationResult",
    "canonical_payload",
]

#: Wall-clock / cache bookkeeping keys dropped by :func:`canonical_payload`.
_VOLATILE_KEYS = frozenset({"timings", "elapsed", "cached"})


def canonical_payload(payload: Any) -> Any:
    """A copy of a ``to_dict`` payload with volatile bookkeeping removed.

    Strips wall-clock timings and cache annotations (which legitimately
    differ between two otherwise identical runs) so that two results
    computed from the same inputs — possibly under different executors —
    serialize byte-identically.
    """
    if isinstance(payload, Mapping):
        return {
            key: canonical_payload(value)
            for key, value in payload.items()
            if key not in _VOLATILE_KEYS
        }
    if isinstance(payload, (list, tuple)):
        return [canonical_payload(item) for item in payload]
    return payload


@dataclasses.dataclass(frozen=True)
class Provenance:
    """Where a result came from and what it cost.

    ``timings`` maps stage names (``"signal"``, ``"observability"``,
    ``"detection"``, ...) to seconds; a stage served from the engine cache
    records ``0.0`` and shows up in ``cached`` instead.  ``backend``
    records which evaluation engine (:mod:`repro.backends`) actually ran
    — the *resolved* name, never ``"auto"`` — so sweep cells computed on
    different workers remain attributable.  Analytic stages always run
    on the python kernel (``"legacy"`` off-kernel) regardless of the
    configured backend; only packed-pattern stages (fault simulation,
    Monte-Carlo grading) record the configured engine.
    """

    circuit: str
    config_hash: str
    config_name: str = "custom"
    timings: Dict[str, float] = dataclasses.field(default_factory=dict)
    cached: Tuple[str, ...] = ()
    backend: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "circuit": self.circuit,
            "config_hash": self.config_hash,
            "config_name": self.config_name,
            "timings": dict(self.timings),
            "cached": list(self.cached),
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Provenance":
        return cls(
            circuit=data["circuit"],
            config_hash=data["config_hash"],
            config_name=data.get("config_name", "custom"),
            timings=dict(data.get("timings", {})),
            cached=tuple(data.get("cached", ())),
            backend=data.get("backend", ""),
        )


class _Serializable:
    """``to_json`` / ``from_json`` on top of the per-class dict codecs."""

    def to_dict(self) -> Dict[str, Any]:  # pragma: no cover - overridden
        raise NotImplementedError

    def to_json(self, indent: "int | None" = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_canonical_json(self, indent: "int | None" = None) -> str:
        """Deterministic serialization: volatile bookkeeping stripped."""
        return json.dumps(
            canonical_payload(self.to_dict()), indent=indent, sort_keys=True
        )

    @classmethod
    def from_json(cls, payload: str):
        return cls.from_dict(json.loads(payload))


def _fault_to_dict(fault: Fault) -> Dict[str, Any]:
    return {"node": fault.node, "pin": fault.pin, "value": fault.value}


def _fault_from_dict(data: Mapping[str, Any]) -> Fault:
    return Fault(data["node"], data["pin"], data["value"])


@dataclasses.dataclass
class SignalProbResult(_Serializable):
    """Estimated 1-probability of every node (stage 1)."""

    provenance: Provenance
    input_probs: Dict[str, float]
    probabilities: Dict[str, float]
    conditioned_gates: int = 0

    def __getitem__(self, node: str) -> float:
        return self.probabilities[node]

    def __contains__(self, node: str) -> bool:
        return node in self.probabilities

    def __len__(self) -> int:
        return len(self.probabilities)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "signal_probabilities",
            "provenance": self.provenance.to_dict(),
            "input_probs": dict(self.input_probs),
            "probabilities": dict(self.probabilities),
            "conditioned_gates": self.conditioned_gates,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SignalProbResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            input_probs=dict(data["input_probs"]),
            probabilities=dict(data["probabilities"]),
            conditioned_gates=data.get("conditioned_gates", 0),
        )


@dataclasses.dataclass
class DetectionResult(_Serializable):
    """Estimated detection probability of every fault (stage 2)."""

    provenance: Provenance
    input_probs: Dict[str, float]
    probabilities: Dict[Fault, float]

    def __getitem__(self, fault: Fault) -> float:
        return self.probabilities[fault]

    def __len__(self) -> int:
        return len(self.probabilities)

    def values(self) -> List[float]:
        return list(self.probabilities.values())

    def hardest(self, n: int = 5) -> List[Tuple[Fault, float]]:
        """The ``n`` faults with the lowest detection probability."""
        ranked = sorted(self.probabilities.items(), key=lambda item: item[1])
        return ranked[:n]

    def min_detection(self) -> float:
        values = sorted(self.probabilities.values())
        return values[0] if values else 0.0

    def median_detection(self) -> float:
        values = sorted(self.probabilities.values())
        return values[len(values) // 2] if values else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "detection_probabilities",
            "provenance": self.provenance.to_dict(),
            "input_probs": dict(self.input_probs),
            "faults": [
                dict(_fault_to_dict(fault), p=p)
                for fault, p in self.probabilities.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DetectionResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            input_probs=dict(data["input_probs"]),
            probabilities={
                _fault_from_dict(rec): rec["p"] for rec in data["faults"]
            },
        )


@dataclasses.dataclass
class TestLengthResult(_Serializable):
    """Required random test length for one (d, e) requirement (stage 3).

    ``n_patterns is None`` means no finite test reaches the confidence —
    the fault set contains an undetectable fault (P_f = 0).
    """

    __test__ = False  # "Test" prefix: keep pytest from collecting this

    provenance: Provenance
    confidence: float
    fraction: float
    n_patterns: Optional[int]
    n_faults: int

    @property
    def reachable(self) -> bool:
        return self.n_patterns is not None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "test_length",
            "provenance": self.provenance.to_dict(),
            "confidence": self.confidence,
            "fraction": self.fraction,
            "n_patterns": self.n_patterns,
            "n_faults": self.n_faults,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TestLengthResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            confidence=data["confidence"],
            fraction=data["fraction"],
            n_patterns=data["n_patterns"],
            n_faults=data["n_faults"],
        )


@dataclasses.dataclass
class SimulationResult(_Serializable):
    """Fault-simulation outcome of one pattern set (stage 5).

    ``raw`` keeps the full :class:`~repro.faults.simulator.FaultSimResult`
    for in-process callers; it is not serialized.
    """

    provenance: Provenance
    n_patterns: int
    n_faults: int
    n_detected: int
    coverage: float
    curve: Dict[int, float] = dataclasses.field(default_factory=dict)
    raw: Any = dataclasses.field(default=None, repr=False, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "fault_simulation",
            "provenance": self.provenance.to_dict(),
            "n_patterns": self.n_patterns,
            "n_faults": self.n_faults,
            "n_detected": self.n_detected,
            "coverage": self.coverage,
            "curve": {str(n): c for n, c in self.curve.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SimulationResult":
        return cls(
            provenance=Provenance.from_dict(data["provenance"]),
            n_patterns=data["n_patterns"],
            n_faults=data["n_faults"],
            n_detected=data["n_detected"],
            coverage=data["coverage"],
            curve={int(n): c for n, c in data.get("curve", {}).items()},
        )


@dataclasses.dataclass
class TestabilityReport(_Serializable):
    """Summary of one full analysis run (printable and serializable).

    ``test_lengths`` maps ``(fraction, confidence)`` to the required
    pattern count, or ``None`` when the kept fault set contains an
    undetectable fault (rendered as ``"inf"`` by :meth:`to_text`).
    """

    __test__ = False  # "Test" prefix: keep pytest from collecting this

    circuit_name: str
    n_faults: int
    min_detection: float
    median_detection: float
    hardest_faults: List[Tuple[Fault, float]]
    test_lengths: Dict[Tuple[float, float], Optional[int]]
    provenance: Optional[Provenance] = None

    def to_text(self) -> str:
        lines = [
            f"PROTEST analysis of {self.circuit_name}",
            f"  faults analysed: {self.n_faults}",
            f"  min / median estimated P_f: "
            f"{self.min_detection:.3e} / {self.median_detection:.3e}",
            "  hardest faults:",
        ]
        for fault, p in self.hardest_faults:
            lines.append(f"    {str(fault):30s} P_f = {p:.3e}")
        rows = [
            [f"{d:.2f}", f"{e:.3f}",
             format_count(n) if n is not None else "inf"]
            for (d, e), n in sorted(self.test_lengths.items())
        ]
        lines.append(
            ascii_table(["d", "e", "N"], rows, title="  required test lengths")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "testability_report",
            "circuit": self.circuit_name,
            "provenance": (
                self.provenance.to_dict() if self.provenance else None
            ),
            "n_faults": self.n_faults,
            "min_detection": self.min_detection,
            "median_detection": self.median_detection,
            "hardest_faults": [
                dict(_fault_to_dict(fault), p=p)
                for fault, p in self.hardest_faults
            ],
            "test_lengths": [
                {"fraction": d, "confidence": e, "n_patterns": n}
                for (d, e), n in sorted(self.test_lengths.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TestabilityReport":
        provenance = data.get("provenance")
        return cls(
            circuit_name=data["circuit"],
            n_faults=data["n_faults"],
            min_detection=data["min_detection"],
            median_detection=data["median_detection"],
            hardest_faults=[
                (_fault_from_dict(rec), rec["p"])
                for rec in data["hardest_faults"]
            ],
            test_lengths={
                (rec["fraction"], rec["confidence"]): rec["n_patterns"]
                for rec in data["test_lengths"]
            },
            provenance=(
                Provenance.from_dict(provenance) if provenance else None
            ),
        )


@dataclasses.dataclass
class SampledReport(_Serializable):
    """Monte-Carlo grading of one circuit (the sampled ``analyze``).

    Every detection probability is an :class:`IntervalEstimate` whose
    bounds hold at ``confidence_level``; ``coverage`` is the proportion
    of graded faults detected at least once by the sampled patterns.
    ``converged`` records whether the sequential stopping rule reached
    ``target_halfwidth`` before ``n_patterns`` hit the configured cap,
    and ``convergence`` keeps the per-block ``(n_patterns,
    max_halfwidth)`` trajectory.  ``test_lengths`` (filled by
    ``sampled_analyze``) maps ``(fraction, confidence)`` requirements to
    pattern counts derived from the sampled point estimates, ``None``
    when a kept fault was never detected.
    """

    circuit_name: str
    n_patterns: int
    n_faults: int
    n_universe: int
    converged: bool
    max_halfwidth: float
    target_halfwidth: float
    confidence_level: float
    interval_method: str
    seed: int
    detection: Dict[Fault, IntervalEstimate]
    coverage: IntervalEstimate
    test_lengths: Dict[Tuple[float, float], Optional[int]] = (
        dataclasses.field(default_factory=dict)
    )
    convergence: List[Tuple[int, float]] = dataclasses.field(
        default_factory=list
    )
    provenance: Optional[Provenance] = None

    def hardest(self, n: int = 5) -> List[Tuple[Fault, IntervalEstimate]]:
        """The ``n`` faults with the lowest sampled detection estimate."""
        ranked = sorted(
            self.detection.items(), key=lambda item: item[1].estimate
        )
        return ranked[:n]

    # Properties, mirroring the TestabilityReport fields, so sweep
    # consumers can read both report kinds uniformly.
    @property
    def min_detection(self) -> float:
        values = [iv.estimate for iv in self.detection.values()]
        return min(values) if values else 0.0

    @property
    def median_detection(self) -> float:
        values = sorted(iv.estimate for iv in self.detection.values())
        return values[len(values) // 2] if values else 0.0

    def to_text(self) -> str:
        lines = [
            f"Monte-Carlo grading of {self.circuit_name}",
            f"  faults graded: {self.n_faults}"
            + (
                f" (stratified sample of {self.n_universe})"
                if self.n_faults < self.n_universe
                else ""
            ),
            f"  patterns simulated: {self.n_patterns}"
            + ("" if self.converged else " (halfwidth target NOT reached)"),
            f"  interval: {self.interval_method} at "
            f"{100.0 * self.confidence_level:.1f}% confidence, "
            f"max halfwidth {self.max_halfwidth:.4f}",
            f"  fault coverage: {self.coverage.estimate:.3f}"
            + (
                ""
                if self.coverage.method == "exact"
                else f" [{self.coverage.low:.3f}, {self.coverage.high:.3f}]"
            ),
            "  hardest faults:",
        ]
        for fault, iv in self.hardest():
            lines.append(
                f"    {str(fault):30s} P_f = {iv.estimate:.4f} "
                f"[{iv.low:.4f}, {iv.high:.4f}]"
            )
        if self.test_lengths:
            rows = [
                [f"{d:.2f}", f"{e:.3f}",
                 format_count(n) if n is not None else "inf"]
                for (d, e), n in sorted(self.test_lengths.items())
            ]
            lines.append(
                ascii_table(
                    ["d", "e", "N"], rows,
                    title="  required test lengths (sampled estimates)",
                )
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "sampled_report",
            "circuit": self.circuit_name,
            "provenance": (
                self.provenance.to_dict() if self.provenance else None
            ),
            "n_patterns": self.n_patterns,
            "n_faults": self.n_faults,
            "n_universe": self.n_universe,
            "converged": self.converged,
            "max_halfwidth": self.max_halfwidth,
            "target_halfwidth": self.target_halfwidth,
            "confidence_level": self.confidence_level,
            "interval_method": self.interval_method,
            "seed": self.seed,
            "coverage": self.coverage.to_dict(),
            "faults": [
                dict(_fault_to_dict(fault), **iv.to_dict())
                for fault, iv in self.detection.items()
            ],
            "test_lengths": [
                {"fraction": d, "confidence": e, "n_patterns": n}
                for (d, e), n in sorted(self.test_lengths.items())
            ],
            "convergence": [
                {"n_patterns": n, "max_halfwidth": h}
                for n, h in self.convergence
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SampledReport":
        provenance = data.get("provenance")
        return cls(
            circuit_name=data["circuit"],
            n_patterns=data["n_patterns"],
            n_faults=data["n_faults"],
            n_universe=data["n_universe"],
            converged=data["converged"],
            max_halfwidth=data["max_halfwidth"],
            target_halfwidth=data["target_halfwidth"],
            confidence_level=data["confidence_level"],
            interval_method=data["interval_method"],
            seed=data["seed"],
            detection={
                _fault_from_dict(rec): IntervalEstimate.from_dict(rec)
                for rec in data["faults"]
            },
            coverage=IntervalEstimate.from_dict(data["coverage"]),
            test_lengths={
                (rec["fraction"], rec["confidence"]): rec["n_patterns"]
                for rec in data.get("test_lengths", [])
            },
            convergence=[
                (rec["n_patterns"], rec["max_halfwidth"])
                for rec in data.get("convergence", [])
            ],
            provenance=(
                Provenance.from_dict(provenance) if provenance else None
            ),
        )


@dataclasses.dataclass
class CrossValidationResult(_Serializable):
    """Analytic estimates checked against the sampled intervals.

    One entry of ``flagged`` per fault whose analytic detection
    probability falls outside its sampled interval widened by
    ``tolerance`` on each side.  ``strict_agreement`` is the fraction of
    faults whose analytic estimate lies inside the *raw* interval — with
    the paper's estimator this is well below 1 (its documented error
    envelope reaches 0.15-0.48, Table 1), which is exactly what the
    sampler makes visible.  Because a per-fault excess over [0, 1] can
    never exceed ``max(low, 1 - high)``, the tolerance-widened flag
    only fires on extreme-probability faults; ``mean_excess`` is the
    distribution-level companion metric that moves when a backend is
    broken wholesale even on mid-range faults — the bench oracle gates
    on both.
    """

    circuit_name: str
    n_checked: int
    tolerance: float
    confidence_level: float
    n_patterns: int
    strict_agreement: float
    max_excess: float
    mean_excess: float = 0.0
    flagged: List[Tuple[Fault, float, IntervalEstimate]] = (
        dataclasses.field(default_factory=list)
    )
    provenance: Optional[Provenance] = None

    @property
    def ok(self) -> bool:
        """No analytic estimate outside its tolerance-widened interval."""
        return not self.flagged

    def to_text(self) -> str:
        lines = [
            f"cross-validation of {self.circuit_name}: "
            f"{self.n_checked} faults, {self.n_patterns} patterns",
            f"  strictly inside the {100.0 * self.confidence_level:.1f}% "
            f"interval: {100.0 * self.strict_agreement:.1f}%",
            f"  excess over interval: max {self.max_excess:.4f}, "
            f"mean {self.mean_excess:.4f}",
            f"  flagged at tolerance {self.tolerance}: {len(self.flagged)}",
        ]
        for fault, analytic, iv in self.flagged[:10]:
            lines.append(
                f"    {str(fault):30s} analytic {analytic:.4f} vs "
                f"[{iv.low:.4f}, {iv.high:.4f}]"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "cross_validation",
            "circuit": self.circuit_name,
            "provenance": (
                self.provenance.to_dict() if self.provenance else None
            ),
            "n_checked": self.n_checked,
            "tolerance": self.tolerance,
            "confidence_level": self.confidence_level,
            "n_patterns": self.n_patterns,
            "strict_agreement": self.strict_agreement,
            "max_excess": self.max_excess,
            "mean_excess": self.mean_excess,
            "ok": self.ok,
            "flagged": [
                dict(
                    _fault_to_dict(fault),
                    analytic=analytic,
                    interval=iv.to_dict(),
                )
                for fault, analytic, iv in self.flagged
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CrossValidationResult":
        provenance = data.get("provenance")
        return cls(
            circuit_name=data["circuit"],
            n_checked=data["n_checked"],
            tolerance=data["tolerance"],
            confidence_level=data["confidence_level"],
            n_patterns=data["n_patterns"],
            strict_agreement=data["strict_agreement"],
            max_excess=data["max_excess"],
            mean_excess=data.get("mean_excess", 0.0),
            flagged=[
                (
                    _fault_from_dict(rec),
                    rec["analytic"],
                    IntervalEstimate.from_dict(rec["interval"]),
                )
                for rec in data.get("flagged", [])
            ],
            provenance=(
                Provenance.from_dict(provenance) if provenance else None
            ),
        )
