"""The evaluation-backend protocol and registry.

An :class:`EvalBackend` is one implementation of the three word-level
evaluation primitives every packed-pattern workload in the library is
built from:

* :meth:`~EvalBackend.simulate_words` — true-value simulation of a
  whole pattern block (``logicsim.simulate``);
* :meth:`~EvalBackend.fault_sim_words` — per-fault detection words for
  one pattern block (the ``FaultSimulator`` inner loop);
* :meth:`~EvalBackend.sample_block` — per-node one-counts of a pattern
  block (the Monte-Carlo signal-probability primitive).

All backends operate on the *same* compiled artifact
(:class:`~repro.kernel.compiled.CompiledCircuit` — the flat
opcode/CSR-operand arrays are the interchange format) and must be
**bit-identical**: for any circuit and pattern block every backend
returns the same simulation words, the same detection words and the
same sampled counts.  ``tests/test_kernel_parity.py`` enforces this
exhaustively and ``AnalysisEngine.cross_validate()`` is the permanent
statistical oracle on top.

**Registry.**  Backends register under a short name (``"python"``,
``"numpy"``, ...) via :func:`register_backend`; third-party engines (C
extensions, bitarray, GPU) plug in the same way.  Every registration
bumps a *generation* counter, and ``backend.identity`` (``"name#gen"``)
keys every derived compile artifact — see
:func:`repro.kernel.compile_circuit` — so replacing a backend can never
serve plans compiled for its predecessor.

**Selection.**  :func:`resolve_backend` accepts an instance, a name,
``"auto"`` or ``None``.  ``"auto"`` picks the numpy word engine for
large circuits when numpy is importable and degrades silently to the
pure-python engine otherwise; asking for an unavailable backend *by
name* raises :class:`~repro.errors.BackendError`.
"""

from __future__ import annotations

import abc
from typing import Dict, FrozenSet, Iterable, List, Mapping

from repro.errors import BackendError

__all__ = [
    "EvalBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "registered_backends",
    "resolve_backend",
    "backend_identity",
    "AUTO_BACKEND",
    "DEFAULT_BACKEND",
    "NUMPY_AUTO_MIN_BLOCK_BITS",
    "NUMPY_AUTO_MIN_GATES",
]

#: The config/CLI spelling of automatic selection.
AUTO_BACKEND = "auto"

#: The backend ``resolve_backend(None)`` falls back to.
DEFAULT_BACKEND = "python"

#: ``"auto"`` only picks the numpy engine for circuits at least this
#: large: below it the pure-python packed-int kernel wins (per-ufunc
#: call overhead dominates the vectorization gain on small cones).
NUMPY_AUTO_MIN_GATES = 1024

#: ``"auto"`` only picks the numpy engine when the caller's pattern
#: blocks are at least this many patterns wide.  The word-matrix engine
#: amortizes its per-ufunc call overhead along the pattern axis; at the
#: Monte-Carlo default of 1024-pattern blocks the python backend's
#: big-int lanes are at parity or better, and the numpy backend would
#: additionally pay its one-time cone-program build.  Callers that know
#: their block shape pass it as ``block_bits``; ``None`` (unknown)
#: gates on circuit size alone.
NUMPY_AUTO_MIN_BLOCK_BITS = 4096


class EvalBackend(abc.ABC):
    """One evaluation engine behind the compiled circuit kernel.

    Subclasses set :attr:`name` and implement the three word
    primitives.  Backends are stateless across circuits; all per-run
    mutable state (overlay arrays, plan caches, matrix buffers) lives
    in the opaque object returned by :meth:`make_scratch`, which each
    ``FaultSimulator`` owns — one compiled circuit can therefore be
    shared by concurrent simulators, exactly like the kernel itself.
    """

    #: Registry name; set by subclasses.
    name: str = "?"

    def __init__(self) -> None:
        # Assigned by register_backend(); "name#0" for unregistered
        # instances so derived caches still have a stable key.
        self._identity = f"{self.name}#0"

    @property
    def identity(self) -> str:
        """Registration identity (``"name#generation"``).

        Keys every compile-time artifact derived for this backend; a
        re-registered backend gets a new generation and therefore can
        never be served plans compiled for the object it replaced.
        """
        return self._identity

    @abc.abstractmethod
    def capabilities(self) -> FrozenSet[str]:
        """The feature set of this backend.

        Standard flags: ``"simulate"``, ``"fault_sim"``, ``"sample"``,
        ``"overrides"`` (native forced-node simulation) and
        ``"vectorized"`` (word-matrix evaluation).
        """

    @abc.abstractmethod
    def is_available(self) -> bool:
        """Whether the backend can run in this process (deps present)."""

    @abc.abstractmethod
    def simulate_words(
        self,
        compiled,
        words: Mapping[str, int],
        mask: int,
        overrides: "Mapping[str, int] | None" = None,
    ) -> List[int]:
        """Packed value of every node over one pattern block.

        Same contract as
        :meth:`repro.kernel.compiled.CompiledCircuit.eval_packed_words`:
        the result is the flat value array indexed by compiled node
        index, every word masked to the pattern width.
        """

    @abc.abstractmethod
    def fault_sim_words(
        self,
        compiled,
        scratch,
        faults: Iterable,
        words: Mapping[str, int],
        mask: int,
        n_patterns: int,
    ) -> Dict[object, int]:
        """Detection word of every fault over one pattern block.

        ``scratch`` is this backend's :meth:`make_scratch` object.  Bit
        *j* of a fault's word is set iff pattern *j* detects it at some
        primary output — bit-identical across backends.
        """

    @abc.abstractmethod
    def sample_block(self, compiled, patterns) -> List[int]:
        """Per-node one-counts of one pattern block (compiled order).

        The Monte-Carlo signal primitive: equals
        ``[word.bit_count() for word in simulate_words(...)]`` without
        materializing python integers on vectorized backends.
        """

    def make_scratch(self, compiled, faults: "Iterable | None" = None):
        """Per-simulator mutable state for :meth:`fault_sim_words`."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.identity}>"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, EvalBackend] = {}
_GENERATIONS: Dict[str, int] = {}


def register_backend(backend: EvalBackend, replace: bool = False) -> EvalBackend:
    """Register ``backend`` under ``backend.name``.

    Re-registering an existing name requires ``replace=True`` and bumps
    the name's generation counter, which invalidates every compiled
    artifact keyed to the previous registration (see
    :func:`repro.kernel.compile_circuit`).
    """
    name = backend.name
    if not name or name == "?":
        raise BackendError(f"backend {backend!r} has no usable name")
    if name == AUTO_BACKEND:
        raise BackendError(f"{AUTO_BACKEND!r} is reserved for auto-selection")
    if name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {name!r} is already registered; pass replace=True "
            f"to supersede it"
        )
    generation = _GENERATIONS.get(name, -1) + 1
    _GENERATIONS[name] = generation
    backend._identity = f"{name}#{generation}"
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> EvalBackend:
    """The registered backend called ``name`` (available or not)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; registered: {registered_backends()}"
        ) from None


def registered_backends() -> List[str]:
    """All registered backend names, sorted."""
    return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Registered backends whose dependencies are importable, sorted."""
    return sorted(
        name for name, backend in _REGISTRY.items() if backend.is_available()
    )


def backend_identity(backend: "EvalBackend | str | None") -> str:
    """The compile-cache identity of a backend specification.

    ``None`` maps to the *current* registration of the default backend,
    so replacing the default also invalidates artifacts compiled
    through the plain ``compile_circuit(circuit)`` path.
    """
    if backend is None:
        backend = _REGISTRY.get(DEFAULT_BACKEND)
        if backend is None:  # pragma: no cover - bootstrap corner
            return f"{DEFAULT_BACKEND}#0"
        return backend.identity
    if isinstance(backend, str):
        return get_backend(backend).identity
    return backend.identity


def resolve_backend(
    spec: "EvalBackend | str | None",
    circuit=None,
    block_bits: "int | None" = None,
) -> EvalBackend:
    """Resolve a backend specification to a usable instance.

    ``None`` selects the default (``"python"``); ``"auto"`` selects the
    numpy word engine when it is available, ``circuit`` has at least
    :data:`NUMPY_AUTO_MIN_GATES` gates *and* the workload's pattern
    blocks (``block_bits``, when the caller knows them) are at least
    :data:`NUMPY_AUTO_MIN_BLOCK_BITS` patterns wide — degrading
    silently to the default otherwise (numpy stays an optional
    dependency, and narrow blocks are python's home turf).  A backend
    requested *by name* must be available — a missing dependency raises
    :class:`~repro.errors.BackendError` with an install hint.
    """
    if spec is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(spec, EvalBackend):
        return spec
    if spec == AUTO_BACKEND:
        numpy_backend = _REGISTRY.get("numpy")
        if (
            numpy_backend is not None
            and numpy_backend.is_available()
            and circuit is not None
            and getattr(circuit, "n_gates", 0) >= NUMPY_AUTO_MIN_GATES
            and (block_bits is None or block_bits >= NUMPY_AUTO_MIN_BLOCK_BITS)
        ):
            return numpy_backend
        return get_backend(DEFAULT_BACKEND)
    backend = get_backend(spec)
    if not backend.is_available():
        raise BackendError(
            f"backend {spec!r} is registered but not available in this "
            f"environment (for the numpy engine: pip install "
            f"'repro-protest[numpy]'); use backend='auto' to degrade "
            f"gracefully"
        )
    return backend
