"""The numpy bit-parallel word engine.

Evaluates the :class:`~repro.kernel.compiled.CompiledCircuit`'s flat
opcode/CSR-operand arrays over ``uint64`` **word matrices**: a node's
value is a ``(lanes, words)`` matrix whose *columns* pack 64 patterns
per word and whose *rows* are fault lanes — fault lanes along one axis,
pattern words along the other.  Every gate lowers at plan-build time to
a short chain of binary ufunc steps (``AND``/``OR``/``XOR`` against
operand rows and a mask row), so the inner loop is nothing but
pre-bound ``ufunc(a, b, out=o)`` calls over contiguous buffers — no
per-gate python arithmetic at all.

Fault simulation groups the universe **by fault site**: all faults at
one site (both stuck-at stems plus every input-pin branch) share the
site's exact fan-out cone, so one register-allocated *cone program*
serves the whole group with one lane per fault.  Register allocation
(a row is recycled once its last in-cone consumer is evaluated) keeps
the live matrix a few dozen rows — cache-resident even for thousands
of patterns per block — which is where the throughput over the
packed-int python backend comes from: the per-call ufunc overhead is
amortized over wide rows while the working set stays in L2.  Fault
injection is mask-native (stem lanes are filled from the mask row,
branch lanes re-evaluate the site gate with one operand forced) and
dropped faults compact naturally: lanes of dropped faults are neither
seeded nor extracted, and fully-dropped sites skip their cone program
entirely.

Everything is **bit-identical** to the python backend: gate steps
reproduce :mod:`repro.kernel.ops` within the pattern mask (bits above
it may differ and are stripped at every boundary), which
``tests/test_kernel_parity.py`` checks gate-for-gate and end-to-end.

numpy is an optional dependency: the module imports it lazily, reports
``is_available()`` accordingly, and never raises at import time.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.backends.base import EvalBackend
from repro.circuit.types import GateType
from repro.errors import BackendError
from repro.telemetry.metrics import REGISTRY

__all__ = ["NumpyBackend"]

_UNSET = object()

# Word-matrix footprint accounting: every uint64 matrix this backend
# allocates is counted by kind — "good" (the full-circuit value matrix
# + mask/scratch rows), "cone" (shared fault register files), "det"
# (detection accumulators) — so /metrics shows where the resident
# memory of a numpy run comes from.
_MATRIX_BYTES = REGISTRY.counter(
    "protest_numpy_matrix_bytes_total",
    "Bytes of uint64 word matrices allocated by the numpy backend",
    ("kind",),
)
_MATRIX_ALLOCS = REGISTRY.counter(
    "protest_numpy_matrix_allocs_total",
    "Word-matrix allocations by the numpy backend",
    ("kind",),
)


def _account_matrices(kind: str, *arrays) -> None:
    _MATRIX_BYTES.labels(kind=kind).inc(sum(a.nbytes for a in arrays))
    _MATRIX_ALLOCS.labels(kind=kind).inc()

# Symbolic operand references used by the per-node step programs.
_OUT = ("o",)        # the entry's output row
_MASK = ("m",)       # the pattern-mask row
_T0 = ("t", 0)       # scratch rows (LUT minterm accumulation)
_T1 = ("t", 1)

# Step opcodes, bound to np.bitwise_{and,or,xor} at plan build.
_AND, _OR, _XOR = 0, 1, 2

#: Gate families that lower to one associative chain (+ optional final
#: inversion against the mask row).
_CHAIN_OPS = {
    GateType.AND: (_AND, False),
    GateType.OR: (_OR, False),
    GateType.XOR: (_XOR, False),
    GateType.NAND: (_AND, True),
    GateType.NOR: (_OR, True),
    GateType.XNOR: (_XOR, True),
}


def _node_steps(gtype: GateType, args: Tuple[int, ...], table: int):
    """Lower one gate to binary ufunc steps ``(op, dst, a, b)``.

    Bit-identical to the :mod:`repro.kernel.ops` packed family within
    the pattern mask; bits above the mask are unspecified (they are
    stripped whenever words leave the matrix domain).
    """

    def n(i):
        return ("n", args[i])

    if gtype is GateType.CONST0:
        return ((_XOR, _OUT, _MASK, _MASK),)
    if gtype is GateType.CONST1:
        return ((_OR, _OUT, _MASK, _MASK),)
    if gtype is GateType.BUF:
        return ((_OR, _OUT, n(0), n(0)),)
    if gtype is GateType.NOT:
        return ((_XOR, _OUT, n(0), _MASK),)
    chain = _CHAIN_OPS.get(gtype)
    if chain is not None:
        op, invert = chain
        if len(args) == 1:
            # One-operand chains reduce to the masked value.
            steps = [(_AND, _OUT, n(0), _MASK)]
        else:
            steps = [(op, _OUT, n(0), n(1))]
            steps.extend((op, _OUT, _OUT, n(k)) for k in range(2, len(args)))
        if invert:
            steps.append((_XOR, _OUT, _OUT, _MASK))
        return tuple(steps)
    if gtype is GateType.LUT:
        steps = [(_XOR, _OUT, _MASK, _MASK)]  # out = 0
        for minterm in range(1 << len(args)):
            if not (table >> minterm) & 1:
                continue
            for k in range(len(args)):
                positive = (minterm >> k) & 1
                if k == 0:
                    steps.append(
                        (_AND if positive else _XOR, _T0, n(0), _MASK)
                    )
                elif positive:
                    steps.append((_AND, _T0, _T0, n(k)))
                else:
                    steps.append((_XOR, _T1, n(k), _MASK))
                    steps.append((_AND, _T0, _T0, _T1))
            steps.append((_OR, _OUT, _OUT, _T0))
        return tuple(steps)
    raise BackendError(f"numpy backend cannot lower gate type {gtype!r}")


class _CircuitProgram:
    """Backend-independent lowering of one compiled circuit.

    One symbolic step tuple per node (gates only), shared by every
    session/thread that evaluates this compiled artifact.
    """

    def __init__(self, compiled) -> None:
        gates = compiled.circuit.gates
        names = compiled.names
        steps: List[Optional[tuple]] = [None] * compiled.n_nodes
        reads: List[Tuple[int, ...]] = [()] * compiled.n_nodes
        for i, _fn, args, table in compiled.plan:
            gate = gates[names[i]]
            steps[i] = _node_steps(gate.gtype, args, table)
            reads[i] = args
        self.steps = steps
        self.reads = reads


_PROGRAMS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _program_for(compiled) -> _CircuitProgram:
    program = _PROGRAMS.get(compiled)
    if program is None:
        program = _CircuitProgram(compiled)
        _PROGRAMS[compiled] = program
    return program


class _BlockState:
    """Matrix buffers bound to one (compiled, word-width) pair.

    Holds the good-value matrix ``(n_nodes, Wn)``, its pre-bound
    full-circuit evaluation program, the pattern-mask row, and — for
    fault sessions — the per-site cone programs with their shared
    register files.
    """

    def __init__(self, np, compiled, Wn: int) -> None:
        self.np = np
        self.compiled = compiled
        self.Wn = Wn
        self.n_patterns = 0
        self.mask = 0
        n = compiled.n_nodes
        self.good = np.zeros((max(n, 1), max(Wn, 1)), dtype=np.uint64)
        self.good_rows = list(self.good)
        self.mask_row = np.zeros(max(Wn, 1), dtype=np.uint64)
        self._tmp_rows = np.zeros((2, max(Wn, 1)), dtype=np.uint64)
        self._ufuncs = (np.bitwise_and, np.bitwise_or, np.bitwise_xor)
        _account_matrices("good", self.good, self.mask_row, self._tmp_rows)
        self.good_prog = self._bind_good(compiled)
        # Fault-path state, built lazily per site.
        self.site_plans: Dict[int, tuple] = {}
        self._buffers: Dict[Tuple[int, int], tuple] = {}
        self._det: Dict[int, tuple] = {}

    # -- binding ---------------------------------------------------------------

    def _resolve(self, ref, out_row, row_of):
        """A symbolic step operand -> concrete matrix row."""
        kind = ref[0]
        if kind == "n":
            node = ref[1]
            if row_of is not None:
                row = row_of.get(node)
                if row is not None:
                    return row
            return self.good_rows[node]
        if kind == "o":
            return out_row
        if kind == "m":
            return self.mask_row
        return self._tmp_rows[ref[1]] if row_of is None else row_of[ref]

    def _bind_good(self, compiled):
        """The full-circuit program bound onto the good matrix."""
        program = _program_for(compiled)
        fns: List[object] = []
        outs: List[object] = []
        lhs: List[object] = []
        rhs: List[object] = []
        ufuncs = self._ufuncs
        for i, _fn, args, _table in compiled.plan:
            out_row = self.good_rows[i]
            for op, dst, a, b in program.steps[i]:
                fns.append(ufuncs[op])
                outs.append(self._resolve(dst, out_row, None))
                lhs.append(self._resolve(a, out_row, None))
                rhs.append(self._resolve(b, out_row, None))
        return fns, outs, lhs, rhs

    # -- per-block loading -----------------------------------------------------

    def load_block(self, words: Mapping[str, int], mask: int,
                   n_patterns: int) -> None:
        """Load input words + pattern mask and evaluate the good matrix."""
        np = self.np
        Wn = self.Wn
        self.n_patterns = n_patterns
        self.mask = mask
        row = self.mask_row
        row[:] = 0
        full, rem = divmod(n_patterns, 64)
        row[:full] = ~np.uint64(0)
        if rem:
            row[full] = np.uint64((1 << rem) - 1)
        names = self.compiled.names
        nbytes = Wn * 8
        for i in self.compiled.input_index:
            word = words[names[i]] & mask
            self.good[i] = np.frombuffer(
                word.to_bytes(nbytes, "little"), dtype="<u8"
            )
        for fn, o, a, b in zip(*self.good_prog):
            fn(a, b, out=o)

    def word_of(self, row) -> int:
        """One matrix row -> masked python integer."""
        return int.from_bytes(row.tobytes(), "little") & self.mask

    def words_to_row(self, word: int, out) -> None:
        out[:] = self.np.frombuffer(
            word.to_bytes(self.Wn * 8, "little"), dtype="<u8"
        )

    # -- fault cone programs ---------------------------------------------------

    def _buffer(self, width: int, lanes: int):
        """A shared register file of at least ``width`` + 2 scratch rows.

        Bucketed to powers of two so sites of similar cone width share
        one buffer; the top two rows are the LUT scratch registers.
        """
        bucket = 1
        while bucket < width + 2:
            bucket <<= 1
        key = (bucket, lanes)
        cached = self._buffers.get(key)
        if cached is None:
            matrix = self.np.empty(
                (bucket, lanes, max(self.Wn, 1)), dtype=self.np.uint64
            )
            _account_matrices("cone", matrix)
            cached = (matrix, list(matrix))
            self._buffers[key] = cached
        return cached

    def det_buffers(self, lanes: int):
        cached = self._det.get(lanes)
        if cached is None:
            np = self.np
            shape = (lanes, max(self.Wn, 1))
            cached = (np.zeros(shape, dtype=np.uint64),
                      np.empty(shape, dtype=np.uint64))
            _account_matrices("det", *cached)
            self._det[lanes] = cached
        return cached

    def site_plan(self, site: int, lanes: int):
        """The register-allocated cone program of one fault site.

        Returns ``(site_row, fns, outs, lhs, rhs, out_pairs)`` where
        ``out_pairs`` are ``(faulty_row, good_row)`` views of every
        primary output reachable from the site (the site included).
        Cached per site; every plan with a similar cone width shares
        one register-file buffer, so the cache holds index lists and
        row *views*, never per-site matrices.
        """
        cached = self.site_plans.get(site)
        if cached is not None and cached[6] == lanes:
            return cached
        compiled = self.compiled
        program = _program_for(compiled)
        cone = compiled.cone(site)
        is_output = compiled.is_output
        reads = program.reads
        # Last in-cone consumer of every produced value.
        lastuse: Dict[int, int] = {site: -2}
        for k, i in enumerate(cone):
            for a in reads[i]:
                if a in lastuse:
                    lastuse[a] = k
            lastuse[i] = -2
        # Register allocation over the cone, recycling dead rows.  The
        # output row of entry ``k`` is allocated *before* the rows dying
        # at ``k`` are released, so multi-step programs never read an
        # operand through their own freshly written output row.
        free: List[int] = []
        width = 0
        row_idx: Dict[int, int] = {}
        expire: Dict[int, List[int]] = {}

        def alloc(node: int, k: int) -> int:
            nonlocal width
            if free:
                r = free.pop()
            else:
                r = width
                width += 1
            row_idx[node] = r
            last = lastuse[node]
            if is_output[node]:
                pass  # pinned: read again at detection extraction
            elif last == -2 or last <= k:
                free.append(r)  # dead on arrival (unconsumed in cone)
            else:
                expire.setdefault(last, []).append(r)
            return r

        entries: List[Tuple[int, int]] = []  # (node, out row)
        site_row_idx = alloc(site, -1)
        out_list: List[Tuple[int, int]] = (
            [(site_row_idx, site)] if is_output[site] else []
        )
        for k, i in enumerate(cone):
            row = alloc(i, k)
            entries.append((i, row))
            for r in expire.pop(k, ()):
                free.append(r)
            if is_output[i]:
                out_list.append((row, i))
        _matrix, rows = self._buffer(width, lanes)
        tmp_of = {_T0: rows[-1], _T1: rows[-2]}
        fns: List[object] = []
        outs: List[object] = []
        lhs: List[object] = []
        rhs: List[object] = []
        ufuncs = self._ufuncs
        # Bind in topo order.  A node's final row assignment is valid at
        # every read site because a row is never recycled before its
        # last in-cone reader has been evaluated.
        node_rows = {site: rows[site_row_idx]}
        for i, row in entries:
            node_rows[i] = rows[row]
        for i, row in entries:
            out_row = rows[row]
            for op, dst, a, b in program.steps[i]:
                fns.append(ufuncs[op])
                outs.append(self._bind_ref(dst, out_row, node_rows, tmp_of))
                lhs.append(self._bind_ref(a, out_row, node_rows, tmp_of))
                rhs.append(self._bind_ref(b, out_row, node_rows, tmp_of))
        out_pairs = tuple(
            (rows[r], self.good_rows[i]) for r, i in out_list
        )
        plan = (rows[site_row_idx], fns, outs, lhs, rhs, out_pairs, lanes)
        self.site_plans[site] = plan
        return plan

    def _bind_ref(self, ref, out_row, node_rows, tmp_of):
        kind = ref[0]
        if kind == "n":
            node = ref[1]
            row = node_rows.get(node)
            return row if row is not None else self.good_rows[node]
        if kind == "o":
            return out_row
        if kind == "m":
            return self.mask_row
        return tmp_of[ref]


class _NumpySession:
    """Per-simulator fault-sim state (the backend's ``scratch``)."""

    def __init__(self, backend: "NumpyBackend", compiled,
                 faults: "Iterable | None") -> None:
        self.backend = backend
        self.compiled = compiled
        self.state: "Optional[_BlockState]" = None
        self.site_of: Dict[object, Tuple[int, int]] = {}
        self.site_faults: Dict[int, List[object]] = {}
        if faults is not None:
            for fault in faults:
                self._admit(fault)

    def _admit(self, fault) -> None:
        site = self.compiled.index[fault.node]
        group = self.site_faults.setdefault(site, [])
        self.site_of[fault] = (site, len(group))
        group.append(fault)

    def ensure(self, n_patterns: int) -> _BlockState:
        Wn = (n_patterns + 63) // 64
        state = self.state
        if state is None or Wn > state.Wn:
            # Wider blocks rebuild the bound state; narrower blocks are
            # padded into the existing one (the mask row strips the tail).
            state = _BlockState(self.backend._numpy(), self.compiled, Wn)
            self.state = state
        return state


class NumpyBackend(EvalBackend):
    """Vectorized word-matrix evaluation (optional numpy dependency)."""

    name = "numpy"

    def __init__(self) -> None:
        super().__init__()
        self._numpy_module = _UNSET
        self._local = threading.local()
        self._pop8 = None

    # -- availability ----------------------------------------------------------

    def _numpy_or_none(self):
        if self._numpy_module is _UNSET:
            try:
                import numpy
            except ImportError:
                numpy = None
            self._numpy_module = numpy
        return self._numpy_module

    def _numpy(self):
        numpy = self._numpy_or_none()
        if numpy is None:
            raise BackendError(
                "the numpy backend needs numpy (pip install "
                "'repro-protest[numpy]')"
            )
        return numpy

    def is_available(self) -> bool:
        return self._numpy_or_none() is not None

    def capabilities(self) -> FrozenSet[str]:
        return frozenset({"simulate", "fault_sim", "sample", "vectorized"})

    # -- true-value simulation -------------------------------------------------

    def _thread_state(self, compiled, mask: int, n_patterns: int) -> _BlockState:
        """Per-thread block state for the stateless entry points.

        ``simulate_words`` / ``sample_block`` take no scratch object,
        so their buffers are cached per thread — concurrent sweeps
        never share a matrix.
        """
        cache = getattr(self._local, "states", None)
        if cache is None:
            cache = self._local.states = weakref.WeakKeyDictionary()
        per = cache.get(compiled)
        if per is None:
            per = cache[compiled] = {}
        Wn = (n_patterns + 63) // 64
        state = per.get(Wn)
        if state is None:
            state = per[Wn] = _BlockState(self._numpy(), compiled, Wn)
        return state

    def simulate_words(
        self,
        compiled,
        words: Mapping[str, int],
        mask: int,
        overrides: "Mapping[str, int] | None" = None,
    ) -> List[int]:
        if overrides:
            # Forced-node simulation is rare and branchy; the packed
            # python interpreter is the reference implementation.
            return compiled.eval_packed_words(words, mask, overrides)
        n_patterns = mask.bit_length()
        if n_patterns == 0:
            return [0] * compiled.n_nodes
        state = self._thread_state(compiled, mask, n_patterns)
        state.load_block(words, mask, n_patterns)
        word_of = state.word_of
        return [word_of(row) for row in state.good_rows]

    def sample_block(self, compiled, patterns) -> List[int]:
        n_patterns = patterns.n_patterns
        if n_patterns == 0:
            return [0] * compiled.n_nodes
        state = self._thread_state(compiled, patterns.mask, n_patterns)
        state.load_block(patterns.words, patterns.mask, n_patterns)
        np = state.np
        masked = np.bitwise_and(state.good, state.mask_row)
        return [int(c) for c in self._popcount_rows(np, masked)]

    def _popcount_rows(self, np, matrix):
        """Per-row set-bit counts of a uint64 matrix."""
        if hasattr(np, "bitwise_count"):
            return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
        # numpy < 2.0: byte-table popcount over the raw view.
        if self._pop8 is None:
            self._pop8 = np.array(
                [bin(v).count("1") for v in range(256)], dtype=np.uint8
            )
        return self._pop8[matrix.view(np.uint8)].sum(axis=1, dtype=np.int64)

    # -- fault simulation ------------------------------------------------------

    def make_scratch(self, compiled, faults: "Iterable | None" = None):
        self._numpy()  # fail fast when the dependency is missing
        return _NumpySession(self, compiled, faults)

    def fault_sim_words(
        self,
        compiled,
        scratch: _NumpySession,
        faults: Iterable,
        words: Mapping[str, int],
        mask: int,
        n_patterns: int,
    ) -> Dict[object, int]:
        session = scratch
        state = session.ensure(n_patterns)
        state.load_block(words, mask, n_patterns)
        # Alive lanes per site (dropped-fault compaction: lanes of
        # dropped faults are neither seeded nor extracted; sites with
        # no alive fault skip their cone program entirely).
        alive_lanes: Dict[int, List[Tuple[int, object]]] = {}
        for fault in faults:
            lane = session.site_of.get(fault)
            if lane is None:
                session._admit(fault)
                lane = session.site_of[fault]
                # New lanes can outgrow a cached plan; rebuilding is
                # handled below via the plan's lane-count check.
                state.site_plans.pop(lane[0], None)
            site, j = lane
            alive_lanes.setdefault(site, []).append((j, fault))
        np = state.np
        mask_row = state.mask_row
        detect_words: Dict[object, int] = {}
        compiled_tables = compiled.tables
        direct_fn = compiled.direct_fn
        args_of = compiled.args_of
        for site in sorted(alive_lanes):
            lanes = len(session.site_faults[site])
            site_row, fns, outs, lhs, rhs, out_pairs, _l = state.site_plan(
                site, lanes
            )
            # Mask-native fault injection, one lane per fault.
            for j, fault in alive_lanes[site]:
                if fault.pin is None:
                    if fault.value:
                        site_row[j] = mask_row
                    else:
                        site_row[j] = np.uint64(0)
                else:
                    operands = [
                        state.word_of(state.good_rows[a])
                        for a in args_of[site]
                    ]
                    operands[fault.pin] = mask if fault.value else 0
                    word = direct_fn[site](
                        operands, mask, compiled_tables[site]
                    )
                    state.words_to_row(word & mask, site_row[j])
            for fn, o, a, b in zip(fns, outs, lhs, rhs):
                fn(a, b, out=o)
            det, tmp = state.det_buffers(lanes)
            det[:] = 0
            for faulty_row, good_row in out_pairs:
                np.bitwise_xor(faulty_row, good_row, out=tmp)
                np.bitwise_or(det, tmp, out=det)
            np.bitwise_and(det, mask_row, out=det)
            for j, fault in alive_lanes[site]:
                detect_words[fault] = int.from_bytes(
                    det[j].tobytes(), "little"
                ) & mask
        return detect_words
