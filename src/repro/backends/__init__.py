"""Pluggable evaluation backends behind the compiled circuit kernel.

The kernel (:mod:`repro.kernel`) lowers a circuit once into flat
opcode/CSR-operand arrays; a *backend* is one engine that evaluates
those arrays over packed pattern words.  Two ship with the library:

* ``"python"`` — the pure-python packed big-int engine with
  fault-parallel lane packing (PR 2's kernel strategy; always
  available, the parity reference);
* ``"numpy"`` — a vectorized engine evaluating ``uint64`` word
  matrices (fault lanes × pattern words) with register-allocated
  fan-out-cone programs (optional numpy dependency).

Backends are **bit-identical** by contract and selected per analysis
via ``ProtestConfig(backend=...)`` / the CLI ``--backend`` flag;
``"auto"`` picks the numpy engine for large circuits when numpy is
importable.  Third-party engines (C, bitarray, GPU) implement
:class:`EvalBackend` and call :func:`register_backend`::

    from repro.backends import EvalBackend, register_backend

    class MyBackend(EvalBackend):
        name = "my-engine"
        ...

    register_backend(MyBackend())
    engine = AnalysisEngine("mul24", ProtestConfig(backend="my-engine"))
"""

from repro.backends.base import (
    AUTO_BACKEND,
    DEFAULT_BACKEND,
    NUMPY_AUTO_MIN_BLOCK_BITS,
    NUMPY_AUTO_MIN_GATES,
    EvalBackend,
    available_backends,
    backend_identity,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.backends.numpy_backend import NumpyBackend
from repro.backends.python_backend import PythonBackend

__all__ = [
    "AUTO_BACKEND",
    "DEFAULT_BACKEND",
    "EvalBackend",
    "NUMPY_AUTO_MIN_BLOCK_BITS",
    "NUMPY_AUTO_MIN_GATES",
    "NumpyBackend",
    "PythonBackend",
    "available_backends",
    "backend_identity",
    "get_backend",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]

# The built-in engines register at import time; replacing one later
# (register_backend(..., replace=True)) bumps its generation and
# invalidates every compiled artifact keyed to the old registration.
register_backend(PythonBackend())
register_backend(NumpyBackend())
