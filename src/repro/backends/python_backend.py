"""The pure-python packed-integer backend.

This is the PR 2 compiled kernel's evaluation strategy, refactored to
sit behind the :class:`~repro.backends.base.EvalBackend` protocol:
arbitrary-precision python integers as pattern words, per-gate dispatch
functions selected at compile time, and fault-parallel *lane packing*
for fault simulation — ``group_size`` faults share one big integer,
one lane of ``n_patterns`` bits each, and the merged difference region
is propagated once per group over version-stamped overlay arrays.

It has no dependencies beyond the standard library, runs everywhere,
and is the parity reference every other backend is measured against.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Tuple

from repro.backends.base import EvalBackend

__all__ = ["PythonBackend"]


class _OverlayScratch:
    """Version-stamped overlay arrays owned by one fault simulator."""

    def __init__(self, n_nodes: int) -> None:
        self.faulty = [0] * n_nodes
        self.stamp = [0] * n_nodes
        self.version = 0


class PythonBackend(EvalBackend):
    """Packed big-int evaluation over the compiled flat arrays."""

    name = "python"

    #: Target width of one fault-parallel word: lanes per group shrink
    #: as the pattern block grows, keeping big-int operands around this
    #: size (CPython big-int ops degrade beyond a few thousand digits).
    GROUP_BITS = 4096

    def capabilities(self) -> FrozenSet[str]:
        return frozenset({"simulate", "fault_sim", "sample", "overrides"})

    def is_available(self) -> bool:
        return True

    # -- true-value simulation --------------------------------------------------

    def simulate_words(
        self,
        compiled,
        words: Mapping[str, int],
        mask: int,
        overrides: "Mapping[str, int] | None" = None,
    ) -> List[int]:
        return compiled.eval_packed_words(words, mask, overrides)

    def sample_block(self, compiled, patterns) -> List[int]:
        values = compiled.eval_packed_words(patterns.words, patterns.mask)
        return [word.bit_count() for word in values]

    # -- fault simulation -------------------------------------------------------

    def make_scratch(self, compiled, faults: "Iterable | None" = None):
        return _OverlayScratch(compiled.n_nodes)

    def fault_sim_words(
        self,
        compiled,
        scratch: _OverlayScratch,
        faults: Iterable,
        words: Mapping[str, int],
        mask: int,
        n_patterns: int,
    ) -> Dict[object, int]:
        """Fault-parallel pattern-parallel detection words for one block.

        Faults are packed ``group_size`` per big-int word, one *lane*
        of ``n_patterns`` bits each; lane ``j`` simulates fault ``j``'s
        faulty machine.  Good values are lane-replicated with one
        multiply (``word * K`` with ``K = Σ 2^(j·P)``), the merged
        difference region is propagated once per group over the
        compiled arrays, and per-fault detection words are sliced back
        out of the lanes.  Bitwise gate ops never mix lanes, so every
        fault's detection word is bit-identical to a single-fault run.
        """
        good = compiled.eval_packed_words(words, mask)
        alive = list(faults)
        detect_words: Dict[object, int] = {}
        if not alive:
            return detect_words
        # Group topological neighbours: overlapping fan-out cones make
        # the merged difference region barely larger than one fault's.
        index = compiled.index
        alive.sort(key=lambda fault: index[fault.node])
        group_size = max(1, self.GROUP_BITS // max(n_patterns, 1))
        rep_good: "List[int] | None" = None
        for start in range(0, len(alive), group_size):
            group = alive[start : start + group_size]
            if len(group) == group_size and rep_good is not None:
                group_rep = rep_good
            else:
                repl = sum(1 << (j * n_patterns) for j in range(len(group)))
                group_rep = [w * repl for w in good]
                if len(group) == group_size:
                    rep_good = group_rep
            detect_rep = self._propagate_group(
                compiled, scratch, group, group_rep, mask, n_patterns
            )
            for j, fault in enumerate(group):
                detect_words[fault] = (detect_rep >> (j * n_patterns)) & mask
        return detect_words

    def _propagate_group(
        self,
        compiled,
        scratch: _OverlayScratch,
        group,
        rep_good: List[int],
        mask: int,
        n_patterns: int,
    ) -> int:
        """Propagate one fault group; returns the lane-packed detect word."""
        index = compiled.index
        repl = sum(1 << (j * n_patterns) for j in range(len(group)))
        full_mask = mask * repl
        is_output = compiled.is_output
        consumer_bits = compiled.consumer_bits
        node_bit = compiled.node_bit
        entries = compiled.overlay_entry
        faulty = scratch.faulty
        stamp = scratch.stamp
        scratch.version = version = scratch.version + 1
        # Compose per-site output forcings (stem faults) and per-gate
        # pin forcings (branch faults) across the group's lanes.
        out_clear: Dict[int, int] = {}
        out_set: Dict[int, int] = {}
        pin_over: Dict[int, List[Tuple[int, int, int]]] = {}
        pending = 0
        detect_rep = 0
        for j, fault in enumerate(group):
            shift = j * n_patterns
            lane_mask = mask << shift
            lane_forced = lane_mask if fault.value else 0
            site = index[fault.node]
            if fault.pin is None:
                out_clear[site] = out_clear.get(site, 0) | lane_mask
                out_set[site] = out_set.get(site, 0) | lane_forced
            else:
                pin_over.setdefault(site, []).append(
                    (fault.pin, lane_mask, lane_forced)
                )
                pending |= node_bit[site]
        for site, clear in out_clear.items():
            word = (rep_good[site] & ~clear) | out_set[site]
            if word == rep_good[site]:
                continue
            faulty[site] = word
            stamp[site] = version
            if is_output[site]:
                detect_rep |= word ^ rep_good[site]
            pending |= consumer_bits[site]
        direct_fn = compiled.direct_fn
        tables = compiled.tables
        args_of = compiled.args_of
        while pending:
            low = pending & -pending
            pending ^= low
            i = low.bit_length() - 1
            entry = entries[i]
            over = pin_over.get(i)
            if over is None:
                word = entry[1](
                    faulty, stamp, version, rep_good, entry[2],
                    full_mask, entry[3],
                )
            else:
                vals = [
                    faulty[a] if stamp[a] == version else rep_good[a]
                    for a in args_of[i]
                ]
                for pin, lane_mask, lane_forced in over:
                    vals[pin] = (vals[pin] & ~lane_mask) | lane_forced
                word = direct_fn[i](vals, full_mask, tables[i])
            clear = out_clear.get(i)
            if clear is not None:
                word = (word & ~clear) | out_set[i]
            if word == rep_good[i]:
                continue
            faulty[i] = word
            stamp[i] = version
            if is_output[i]:
                detect_rep |= word ^ rep_good[i]
            pending |= consumer_bits[i]
        return detect_rep
