"""ASCII correlation diagrams (the paper's Figs 5 and 6)."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["scatter_plot"]


def scatter_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 61,
    height: int = 21,
    xlabel: str = "P_PROT",
    ylabel: str = "P_SIM",
    title: "str | None" = None,
) -> str:
    """Plot unit-square points as a character grid.

    Cells holding one point print ``+``, several points ``*`` — mirroring
    the paper's correlation diagrams where dense diagonals darken.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys differ in length")
    if width < 10 or height < 5:
        raise ValueError("plot area too small")
    grid = [[0] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        cx = min(max(x, 0.0), 1.0)
        cy = min(max(y, 0.0), 1.0)
        col = min(int(cx * (width - 1) + 0.5), width - 1)
        row = min(int(cy * (height - 1) + 0.5), height - 1)
        grid[row][col] += 1

    lines: List[str] = []
    if title:
        lines.append(title)
    for r in range(height - 1, -1, -1):
        label = ""
        frac = r / (height - 1)
        if r == height - 1:
            label = "1.0"
        elif r == 0:
            label = "0.0"
        elif abs(frac - 0.5) < 0.5 / (height - 1):
            label = "0.5"
        body = "".join(
            "*" if c > 1 else ("+" if c == 1 else " ") for c in grid[r]
        )
        lines.append(f"{label:>4} |{body}|")
    lines.append("     +" + "-" * width + "+")
    lines.append(
        "      0.0" + " " * (width - 12) + "1.0"
    )
    lines.append(f"      {ylabel} (vertical) vs {xlabel} (horizontal)")
    return "\n".join(lines)
