"""Plain-text reporting: tables, scatter diagrams, accuracy statistics."""

from repro.report.scatter import scatter_plot
from repro.report.stats import AccuracyStats, accuracy_stats, pearson
from repro.report.tables import ascii_table, format_count, format_prob

__all__ = [
    "AccuracyStats",
    "accuracy_stats",
    "ascii_table",
    "format_count",
    "format_prob",
    "pearson",
    "scatter_plot",
]
