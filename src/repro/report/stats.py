"""Error and correlation statistics (the paper's Table 1 metrics).

* ``Merr`` — maximal absolute difference between estimate and simulation;
* ``delta`` — the average difference
  ``sum |P_PROT - P_SIM| / (number of faults)``;
* ``Co`` — the (Pearson) correlation coefficient of the two series.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

__all__ = ["AccuracyStats", "accuracy_stats", "pearson"]


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient; 0.0 for degenerate series."""
    if len(xs) != len(ys):
        raise ValueError("series differ in length")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x <= 0.0 or var_y <= 0.0:
        return 0.0
    cov = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
    )
    return cov / math.sqrt(var_x * var_y)


@dataclasses.dataclass(frozen=True)
class AccuracyStats:
    """Table 1 row: estimation accuracy against a simulation reference."""

    max_error: float  #: Merr
    mean_error: float  #: Δ (average |estimate - reference|)
    correlation: float  #: Co
    under_estimated: float  #: fraction of faults with reference > estimate
    n: int

    def row(self, label: str) -> "list[str]":
        return [
            label,
            f"{self.max_error:.2f}",
            f"{self.mean_error:.2f}",
            f"{self.correlation:.2f}",
        ]


def accuracy_stats(
    estimates: Sequence[float], references: Sequence[float]
) -> AccuracyStats:
    """Compute the Table 1 metrics for parallel series."""
    if len(estimates) != len(references):
        raise ValueError("series differ in length")
    if not estimates:
        raise ValueError("empty series")
    diffs = [abs(e - r) for e, r in zip(estimates, references)]
    under = sum(1 for e, r in zip(estimates, references) if r > e)
    return AccuracyStats(
        max_error=max(diffs),
        mean_error=sum(diffs) / len(diffs),
        correlation=pearson(estimates, references),
        under_estimated=under / len(estimates),
        n=len(estimates),
    )
