"""Plain-text tables in the style of the paper's Tables 1-8."""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["ascii_table", "format_count", "format_prob"]


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: "str | None" = None,
) -> str:
    """Render a boxed fixed-width table."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    n_cols = max(len(row) for row in cells)
    widths = [0] * n_cols
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(row: Sequence[str]) -> str:
        padded = [
            (row[i] if i < len(row) else "").rjust(widths[i])
            for i in range(n_cols)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out: List[str] = []
    if title:
        out.append(title)
    out.append(separator)
    out.append(line(cells[0]))
    out.append(separator)
    for row in cells[1:]:
        out.append(line(row))
    out.append(separator)
    return "\n".join(out)


def format_count(n: "int | float") -> str:
    """Readable large pattern counts (Table 3/5 style)."""
    if n == float("inf"):
        return "inf"
    n = int(n)
    return f"{n:,}".replace(",", " ")


def format_prob(p: float, digits: int = 2) -> str:
    """Compact probability formatting (Table 4 style)."""
    return f"{p:.{digits}f}"
