"""Optimization of primary-input signal probabilities (paper §6)."""

from repro.optimize.hillclimb import (
    OptimizationResult,
    optimize_input_probabilities,
)
from repro.optimize.objective import TestQualityObjective

__all__ = [
    "OptimizationResult",
    "TestQualityObjective",
    "optimize_input_probabilities",
]
