"""The optimization objective ``J_N(X)`` (paper §6).

For an input-probability tuple ``X`` and a numerical parameter ``N``,

    J_N(X) = prod over f of (1 - (1 - P_f(X))^N)

estimates the probability that ``N`` patterns drawn with weights ``X``
detect the whole fault set.  The optimizer maximizes ``log J_N``; the
incremental signal-probability update keeps single-input moves cheap.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.circuit.netlist import Circuit
from repro.errors import OptimizationError
from repro.faults.model import Fault, fault_universe
from repro.detection.estimator import DetectionProbabilityEstimator
from repro.probability.estimator import EstimatorParams, SignalProbabilities

__all__ = ["TestQualityObjective"]

#: Faults with estimated P_f == 0 contribute this log term instead of -inf,
#: keeping the search surface finite while still penalizing them heavily.
_ZERO_FAULT_PENALTY = -80.0


class TestQualityObjective:
    """``log J_N`` evaluator with incremental re-estimation."""

    __test__ = False  # not a pytest class, despite the Test* name

    def __init__(
        self,
        circuit: Circuit,
        n_ref: int = 4096,
        params: "EstimatorParams | None" = None,
        stem_model: str = "chain",
        pin_model: str = "boolean_difference",
        faults: "Iterable[Fault] | None" = None,
    ) -> None:
        if n_ref < 1:
            raise OptimizationError("n_ref must be >= 1")
        self.circuit = circuit
        self.n_ref = n_ref
        self.detector = DetectionProbabilityEstimator(
            circuit, params, stem_model, pin_model
        )
        self.faults: List[Fault] = (
            list(faults) if faults is not None else fault_universe(circuit)
        )
        self.evaluations = 0

    # -- scoring --------------------------------------------------------------------

    def _score(self, detection_probs: Mapping[Fault, float]) -> float:
        total = 0.0
        n = self.n_ref
        for p in detection_probs.values():
            if p >= 1.0:
                continue
            if p <= 0.0:
                total += _ZERO_FAULT_PENALTY
                continue
            log_miss = n * math.log1p(-p)
            miss = -math.expm1(log_miss)
            if miss <= 0.0:
                total += _ZERO_FAULT_PENALTY
            else:
                total += math.log(miss)
        return total

    def evaluate(
        self,
        input_probs: "float | Mapping[str, float] | None",
    ) -> Tuple[float, SignalProbabilities]:
        """Full evaluation; returns ``(log J_N, signal probabilities)``."""
        signal_probs = self.detector.signal_estimator.run(input_probs)
        detection = self.detector.run(
            faults=self.faults, signal_probs=signal_probs
        )
        self.evaluations += 1
        return self._score(detection), signal_probs

    def evaluate_update(
        self,
        previous: SignalProbabilities,
        input_probs: Mapping[str, float],
    ) -> Tuple[float, SignalProbabilities]:
        """Evaluation after a small change, reusing the previous estimate."""
        signal_probs = self.detector.signal_estimator.update(
            previous, input_probs
        )
        detection = self.detector.run(
            faults=self.faults, signal_probs=signal_probs
        )
        self.evaluations += 1
        return self._score(detection), signal_probs

    def detection_probabilities(
        self, signal_probs: SignalProbabilities
    ) -> Dict[Fault, float]:
        """Detection map for a finished tuple (for test-length reporting)."""
        return self.detector.run(faults=self.faults, signal_probs=signal_probs)
