"""Hill-climbing optimization of the input signal probabilities (paper §6).

"PROTEST includes an optimizing procedure, which finds a local maximum of
J_N.  The procedure works according to the hill climbing principle" — we
use coordinate ascent on a probability grid: every optimized probability is
a multiple of ``1/grid`` (the paper's Table 4 values are all multiples of
1/16), moves of one grid step per input are accepted greedily, and rounds
repeat until no move improves ``log J_N`` or the round budget is spent.
"""

from __future__ import annotations

import dataclasses
import random as _random
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.circuit.netlist import Circuit
from repro.errors import OptimizationError
from repro.faults.model import Fault
from repro.optimize.objective import TestQualityObjective
from repro.probability.estimator import EstimatorParams

__all__ = ["OptimizationResult", "optimize_input_probabilities"]


@dataclasses.dataclass
class OptimizationResult:
    """Outcome of an input-probability optimization."""

    probabilities: Dict[str, float]
    score: float
    initial_score: float
    rounds: int
    evaluations: int
    history: List[float]

    @property
    def improved(self) -> bool:
        return self.score > self.initial_score


def optimize_input_probabilities(
    circuit: Circuit,
    n_ref: int = 4096,
    grid: int = 16,
    max_rounds: int = 10,
    start: "float | Mapping[str, float] | None" = None,
    params: "EstimatorParams | None" = None,
    stem_model: str = "chain",
    pin_model: str = "boolean_difference",
    faults: "Iterable[Fault] | None" = None,
    inputs: "Sequence[str] | None" = None,
    jitter: int = 2,
    seed: int = 0,
    step_sizes: Sequence[int] = (1,),
) -> OptimizationResult:
    """Maximize ``J_N`` over the tuple of input probabilities.

    Parameters
    ----------
    n_ref:
        The numerical parameter ``N`` of ``J_N`` (paper §6).
    grid:
        Probability resolution; candidates are ``k/grid`` with
        ``1 <= k <= grid - 1``.  16 matches the paper's Table 4.
    max_rounds:
        Full passes over the inputs; each round tries one step up and one
        step down per input and greedily accepts improvements.
    start:
        Initial tuple.  When omitted, the climb starts from 0.5 perturbed
        by up to ``jitter`` grid steps per input (seeded, deterministic).
        The uniform point 0.5 is a *saddle* for symmetric structures — on
        a comparator, ``dP(A_i = B_i)/dp_{A_i} = 2 p_{B_i} - 1 = 0`` —
        where pure coordinate ascent would see zero improvement in every
        direction; randomized starting points are the textbook hill-
        climbing remedy ([Nils80], which the paper cites) and explain
        Table 4's jointly-high / jointly-low input pairs.
    inputs:
        Restrict the optimization to a subset of the primary inputs.
    jitter / seed:
        Magnitude (grid steps) and seed of the start perturbation; only
        used when ``start`` is omitted.
    step_sizes:
        Move magnitudes (in grid steps) tried per input and direction.
        ``(4, 1)`` escapes shallow plateaus that defeat pure unit steps
        (useful on DIV, where quotient and remainder faults pull the
        divisor weights in opposite directions).

    The returned probabilities keep non-optimized inputs at their start
    value.
    """
    if grid < 2:
        raise OptimizationError("grid must be >= 2")
    if max_rounds < 1:
        raise OptimizationError("max_rounds must be >= 1")
    if jitter < 0:
        raise OptimizationError("jitter must be >= 0")
    objective = TestQualityObjective(
        circuit, n_ref, params, stem_model, pin_model, faults
    )
    from repro.logicsim.patterns import resolve_input_probs

    explicit_start = start is not None
    current = resolve_input_probs(circuit.inputs, start if explicit_start else 0.5)
    # Snap the starting point onto the grid.
    step = 1.0 / grid
    for name, value in current.items():
        k = min(max(round(value * grid), 1), grid - 1)
        current[name] = k / grid
    optimized = list(inputs) if inputs is not None else list(circuit.inputs)
    unknown = [name for name in optimized if name not in current]
    if unknown:
        raise OptimizationError(f"unknown inputs {unknown[:5]!r}")
    if not explicit_start and jitter > 0:
        rng = _random.Random(seed)
        for name in optimized:
            k = round(current[name] * grid) + rng.randint(-jitter, jitter)
            current[name] = min(max(k, 1), grid - 1) / grid

    score, signal_probs = objective.evaluate(current)
    initial_score = score
    history = [score]
    rounds_done = 0
    for _round in range(max_rounds):
        rounds_done += 1
        round_improved = False
        for name in optimized:
            base = current[name]
            best_value, best_score, best_signal = base, score, signal_probs
            for magnitude in step_sizes:
                for direction in (1, -1):
                    candidate = base + direction * magnitude * step
                    if not (step - 1e-12 <= candidate <= 1.0 - step + 1e-12):
                        continue
                    trial = dict(current)
                    trial[name] = candidate
                    trial_score, trial_signal = objective.evaluate_update(
                        signal_probs, trial
                    )
                    if trial_score > best_score + 1e-12:
                        best_value, best_score, best_signal = (
                            candidate,
                            trial_score,
                            trial_signal,
                        )
            if best_value != base:
                current[name] = best_value
                score, signal_probs = best_score, best_signal
                round_improved = True
        history.append(score)
        if not round_improved:
            break
    return OptimizationResult(
        probabilities=current,
        score=score,
        initial_score=initial_score,
        rounds=rounds_done,
        evaluations=objective.evaluations,
        history=history,
    )
