"""A small ROBDD package with exact probability evaluation.

Used as the second exact reference: BDD-based probabilities remain feasible
on circuits whose enumeration space is too large but whose function is
structured (the comparator COMP being the canonical example — its BDDs are
linear in the word width).  Probability of a BDD node is computed by the
standard linear-time dynamic program

    P(f) = (1 - p_v) * P(f.low) + p_v * P(f.high)

which is exact for independent inputs regardless of variable order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.types import GateType
from repro.errors import EstimationError

__all__ = ["BDD", "circuit_bdds", "bdd_signal_probabilities"]

FALSE = 0
TRUE = 1


class BDD:
    """Reduced ordered BDD manager over a fixed variable order."""

    def __init__(
        self,
        variables: Sequence[str],
        node_limit: int = 2_000_000,
    ) -> None:
        if len(set(variables)) != len(variables):
            raise EstimationError("duplicate BDD variables")
        self.variables: Tuple[str, ...] = tuple(variables)
        self.level: Dict[str, int] = {v: i for i, v in enumerate(variables)}
        self.node_limit = node_limit
        # id -> (level, low, high); ids 0/1 are the terminals.
        self._nodes: List[Optional[Tuple[int, int, int]]] = [None, None]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._not_cache: Dict[int, int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}

    # -- construction -----------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            if node > self.node_limit:
                raise EstimationError(
                    f"BDD node limit {self.node_limit} exceeded"
                )
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single variable."""
        try:
            level = self.level[name]
        except KeyError:
            raise EstimationError(f"unknown BDD variable {name!r}") from None
        return self._mk(level, FALSE, TRUE)

    def const(self, value: int) -> int:
        return TRUE if value else FALSE

    # -- operations --------------------------------------------------------------

    def negate(self, f: int) -> int:
        if f <= TRUE:
            return TRUE - f
        cached = self._not_cache.get(f)
        if cached is None:
            level, low, high = self._nodes[f]  # type: ignore[misc]
            cached = self._mk(level, self.negate(low), self.negate(high))
            self._not_cache[f] = cached
        return cached

    def apply(self, op: str, f: int, g: int) -> int:
        """Binary apply for ``op`` in {"and", "or", "xor"}."""
        terminal = _TERMINAL_RULES[op](f, g)
        if terminal is not None:
            return terminal
        key = (op, f, g) if f <= g else (op, g, f)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        f_level = self._nodes[f][0] if f > TRUE else _MAX_LEVEL
        g_level = self._nodes[g][0] if g > TRUE else _MAX_LEVEL
        level = min(f_level, g_level)
        f_low, f_high = self._cofactors(f, level)
        g_low, g_high = self._cofactors(g, level)
        result = self._mk(
            level,
            self.apply(op, f_low, g_low),
            self.apply(op, f_high, g_high),
        )
        self._apply_cache[key] = result
        return result

    def apply_many(self, op: str, operands: Sequence[int]) -> int:
        if not operands:
            raise EstimationError("apply_many needs at least one operand")
        acc = operands[0]
        for other in operands[1:]:
            acc = self.apply(op, acc, other)
        return acc

    def ite(self, f: int, g: int, h: int) -> int:
        """if-then-else: (f AND g) OR (NOT f AND h)."""
        return self.apply(
            "or",
            self.apply("and", f, g),
            self.apply("and", self.negate(f), h),
        )

    def _cofactors(self, f: int, level: int) -> Tuple[int, int]:
        if f <= TRUE:
            return f, f
        node_level, low, high = self._nodes[f]  # type: ignore[misc]
        if node_level == level:
            return low, high
        return f, f

    # -- queries ------------------------------------------------------------------

    def probability(self, f: int, probs: Mapping[str, float]) -> float:
        """Exact ``P(f = 1)`` for independent variables."""
        memo: Dict[int, float] = {FALSE: 0.0, TRUE: 1.0}

        def walk(node: int) -> float:
            cached = memo.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]  # type: ignore[misc]
            p = probs[self.variables[level]]
            value = (1.0 - p) * walk(low) + p * walk(high)
            memo[node] = value
            return value

        return walk(f)

    def size(self, f: int) -> int:
        """Number of internal nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node <= TRUE or node in seen:
                continue
            seen.add(node)
            _level, low, high = self._nodes[node]  # type: ignore[misc]
            stack.extend((low, high))
        return len(seen)

    @property
    def n_nodes(self) -> int:
        return len(self._nodes) - 2


_MAX_LEVEL = 1 << 60


def _and_terminal(f: int, g: int) -> Optional[int]:
    if f == FALSE or g == FALSE:
        return FALSE
    if f == TRUE:
        return g
    if g == TRUE:
        return f
    if f == g:
        return f
    return None


def _or_terminal(f: int, g: int) -> Optional[int]:
    if f == TRUE or g == TRUE:
        return TRUE
    if f == FALSE:
        return g
    if g == FALSE:
        return f
    if f == g:
        return f
    return None


def _xor_terminal(f: int, g: int) -> Optional[int]:
    if f == g:
        return FALSE
    if f == FALSE:
        return g
    if g == FALSE:
        return f
    return None


_TERMINAL_RULES = {
    "and": _and_terminal,
    "or": _or_terminal,
    "xor": _xor_terminal,
}


def circuit_bdds(
    circuit: Circuit,
    manager: "BDD | None" = None,
    nodes: "Iterable[str] | None" = None,
) -> Tuple[BDD, Dict[str, int]]:
    """Build the BDD of every circuit node (or of a requested subset).

    Returns the manager and a node-name → BDD-id map.  The variable order
    is the circuit's input declaration order.
    """
    bdd = manager or BDD(circuit.inputs)
    wanted = set(nodes) if nodes is not None else None
    refs: Dict[str, int] = {}
    for name in circuit.inputs:
        refs[name] = bdd.var(name)
    for node in circuit.nodes:
        if node in refs:
            continue
        gate = circuit.gates[node]
        operands = [refs[src] for src in gate.inputs]
        refs[node] = _gate_bdd(bdd, gate.gtype, operands, gate.table)
    if wanted is not None:
        refs = {name: refs[name] for name in wanted}
    return bdd, refs


def _gate_bdd(
    bdd: BDD, gtype: GateType, operands: Sequence[int], table: int
) -> int:
    if gtype is GateType.AND:
        return bdd.apply_many("and", operands)
    if gtype is GateType.OR:
        return bdd.apply_many("or", operands)
    if gtype is GateType.NAND:
        return bdd.negate(bdd.apply_many("and", operands))
    if gtype is GateType.NOR:
        return bdd.negate(bdd.apply_many("or", operands))
    if gtype is GateType.XOR:
        return bdd.apply_many("xor", operands)
    if gtype is GateType.XNOR:
        return bdd.negate(bdd.apply_many("xor", operands))
    if gtype is GateType.NOT:
        return bdd.negate(operands[0])
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.CONST0:
        return FALSE
    if gtype is GateType.CONST1:
        return TRUE
    if gtype is GateType.LUT:
        result = FALSE
        for minterm in range(1 << len(operands)):
            if not (table >> minterm) & 1:
                continue
            term = TRUE
            for i, operand in enumerate(operands):
                literal = (
                    operand if (minterm >> i) & 1 else bdd.negate(operand)
                )
                term = bdd.apply("and", term, literal)
            result = bdd.apply("or", result, term)
        return result
    raise EstimationError(f"unknown gate type {gtype!r}")


def bdd_signal_probabilities(
    circuit: Circuit,
    input_probs: "float | Mapping[str, float] | None" = None,
    nodes: "Iterable[str] | None" = None,
) -> Dict[str, float]:
    """Exact signal probabilities through BDDs (order = input order)."""
    from repro.logicsim.patterns import resolve_input_probs

    resolved = resolve_input_probs(circuit.inputs, input_probs)
    bdd, refs = circuit_bdds(circuit, nodes=nodes)
    return {
        name: bdd.probability(ref, resolved) for name, ref in refs.items()
    }
