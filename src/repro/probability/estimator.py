"""The PROTEST signal-probability estimator (paper §2).

For every gate the estimator distinguishes the paper's four cases:

1. primary inputs carry their given probability;
2. single-input gates (inverters) follow the exact rule;
3. gates whose inputs share no joining points use the tree rule of
   [AgAg75] (exact under independence);
4. gates with reconvergent fan-out are conditioned on a bounded subset
   ``W`` of their joining points ``V`` (formula (2))::

       p_k  =  sum over assignments A_v of W:
                  P(A_v) * P_gate( P(input_i | A_v) ... )

The subset is chosen by the paper's covariance heuristic: maximize the
captured ``|Cov(a, x) * Cov(b, x)| / S(x)^2`` mass.  ``MAXVERS`` bounds
``|W|`` and ``MAXLIST`` bounds the path length searched for joining points;
``MAXVERS = 0`` degenerates to the pure tree rule, and letting ``W`` cover
all of ``V`` recovers the exact probability on textbook reconvergence
examples (see the tests).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.circuit.netlist import Circuit, Gate
from repro.circuit.topology import Topology
from repro.circuit.types import gate_probability
from repro.errors import EstimationError
from repro.kernel import compile_circuit
from repro.logicsim.patterns import resolve_input_probs
from repro.probability.conditional import ConditionalEvaluator

__all__ = [
    "EstimatorParams",
    "SignalProbabilities",
    "SignalProbabilityEstimator",
    "input_probs_key",
]


def input_probs_key(
    inputs: Sequence[str],
    probs: "float | Mapping[str, float] | None",
) -> Tuple[float, ...]:
    """Hashable cache key for an input-probability specification.

    Scalar, mapping and ``None`` specifications that resolve to the same
    per-input tuple produce the same key, so callers can memoize whole
    estimation runs by it (the :class:`repro.api.AnalysisEngine` does).
    """
    resolved = resolve_input_probs(inputs, probs)
    return tuple(resolved[name] for name in inputs)


@dataclasses.dataclass(frozen=True)
class EstimatorParams:
    """Tuning knobs of the estimator (paper §2, last paragraph).

    Attributes
    ----------
    maxvers:
        Maximal cardinality of the conditioning set ``W`` (the paper's
        MAXVERS).  Cost per reconvergent gate grows as ``2^maxvers``.
    maxlist:
        Maximal path length searched for joining points (MAXLIST), also
        the radius of the conditional re-evaluation region.
    candidate_cap:
        Upper bound on how many joining-point candidates are scored; the
        topologically closest candidates are kept.  Purely a guard against
        pathological fan-in regions.
    """

    maxvers: int = 3
    maxlist: int = 8
    candidate_cap: int = 10

    def __post_init__(self) -> None:
        if self.maxvers < 0:
            raise EstimationError("maxvers must be >= 0")
        if self.maxlist < 1:
            raise EstimationError("maxlist must be >= 1")
        if self.candidate_cap < 1:
            raise EstimationError("candidate_cap must be >= 1")


class SignalProbabilities(Mapping[str, float]):
    """Estimated signal probability of every node (read-only mapping)."""

    def __init__(
        self,
        probs: Dict[str, float],
        input_probs: Dict[str, float],
        conditioned_gates: int,
    ) -> None:
        self._probs = probs
        self.input_probs = input_probs
        #: Number of gates that required joining-point conditioning.
        self.conditioned_gates = conditioned_gates

    def __getitem__(self, node: str) -> float:
        return self._probs[node]

    def __iter__(self):
        return iter(self._probs)

    def __len__(self) -> int:
        return len(self._probs)

    def as_dict(self) -> Dict[str, float]:
        return dict(self._probs)


class SignalProbabilityEstimator:
    """Near-linear signal-probability estimation with bounded conditioning."""

    def __init__(
        self,
        circuit: Circuit,
        params: "EstimatorParams | None" = None,
        topology: "Topology | None" = None,
        use_kernel: bool = True,
    ) -> None:
        self.circuit = circuit
        self.params = params or EstimatorParams()
        self.topology = topology or Topology(circuit, cache=use_kernel)
        self._conditional = ConditionalEvaluator(
            self.topology,
            self.params.maxlist,
            compiled=compile_circuit(circuit) if use_kernel else None,
        )
        # Joining points per gate are purely structural: cache them.
        self._joining_cache: Dict[str, List[str]] = {}

    # -- public API ----------------------------------------------------------------

    def run(
        self,
        input_probs: "float | Mapping[str, float] | None" = None,
    ) -> SignalProbabilities:
        """Estimate all node probabilities for the given input tuple."""
        resolved = resolve_input_probs(self.circuit.inputs, input_probs)
        self._conditional.begin_pass()
        probs: Dict[str, float] = dict(resolved)
        conditioned = 0
        for node in self.circuit.nodes:
            if node in probs:
                continue
            value, used_conditioning = self._gate_probability(
                self.circuit.gates[node], probs
            )
            probs[node] = value
            conditioned += int(used_conditioning)
        return SignalProbabilities(probs, resolved, conditioned)

    def update(
        self,
        previous: SignalProbabilities,
        input_probs: "float | Mapping[str, float] | None",
    ) -> SignalProbabilities:
        """Re-estimate after an input-probability change.

        Only gates in the transitive fan-out of the changed inputs are
        recomputed — the key speed-up for the §6 hill climber, whose moves
        touch one input at a time.
        """
        resolved = resolve_input_probs(self.circuit.inputs, input_probs)
        changed = [
            name
            for name in self.circuit.inputs
            if resolved[name] != previous.input_probs.get(name)
        ]
        if not changed:
            return previous
        self._conditional.begin_pass()
        dirty = set(changed)
        for node in changed:
            dirty.update(self.topology.tfo(node))
        probs = previous.as_dict()
        for node in changed:
            probs[node] = resolved[node]
        conditioned = previous.conditioned_gates
        for node in self.circuit.nodes:
            if node not in dirty or node in resolved:
                continue
            value, _used = self._gate_probability(
                self.circuit.gates[node], probs
            )
            probs[node] = value
        return SignalProbabilities(probs, resolved, conditioned)

    def joining_points_of(self, gate_name: str) -> List[str]:
        """The (depth-bounded) joining points of a gate's input tuple."""
        cached = self._joining_cache.get(gate_name)
        if cached is None:
            gate = self.circuit.gates[gate_name]
            cached = self.topology.joining_points(
                gate.inputs, self.params.maxlist
            )
            self._joining_cache[gate_name] = cached
        return cached

    # -- core ------------------------------------------------------------------------

    def _gate_probability(
        self, gate: Gate, probs: Dict[str, float]
    ) -> Tuple[float, bool]:
        """Estimate one gate's output probability (cases 2-4)."""
        operand_probs = [probs[src] for src in gate.inputs]
        if gate.arity < 2 or self.params.maxvers == 0:
            return gate_probability(gate.gtype, operand_probs, gate.table), False
        joining = self.joining_points_of(gate.name)
        if not joining:
            return gate_probability(gate.gtype, operand_probs, gate.table), False
        selected = self._select_conditioning_set(gate, joining, probs)
        if not selected:
            return gate_probability(gate.gtype, operand_probs, gate.table), False
        value = self._conditioned_probability(gate, selected, probs)
        return value, True

    def _select_conditioning_set(
        self,
        gate: Gate,
        joining: List[str],
        probs: Mapping[str, float],
    ) -> List[str]:
        """Rank joining points by the paper's covariance score, keep MAXVERS.

        score(x) = sum over input pairs (i, j) of
                   |Cov(a_i, x) * Cov(a_j, x)| / S(x)^2
                 = Var(x) * sum |influence_i(x) * influence_j(x)|
        """
        candidates = joining
        if len(candidates) > self.params.candidate_cap:
            # Keep the topologically closest joining points.
            candidates = candidates[-self.params.candidate_cap :]
        distinct_inputs = list(dict.fromkeys(gate.inputs))
        scored: List[Tuple[float, str]] = []
        for x in candidates:
            variance = probs[x] * (1.0 - probs[x])
            if variance <= 0.0:
                continue  # a constant node cannot carry correlation
            influences = [
                self._conditional.influence(a, x, probs)
                for a in distinct_inputs
            ]
            if len(distinct_inputs) == 1:
                # Gate fed twice from one signal: full self-correlation.
                score = variance * abs(influences[0])
            else:
                score = 0.0
                for i in range(len(influences)):
                    for j in range(i + 1, len(influences)):
                        score += abs(influences[i] * influences[j])
                score *= variance
            scored.append((score, x))
        scored.sort(key=lambda item: (-item[0], item[1]))
        selected = [x for score, x in scored if score > 0.0]
        if len(selected) < self.params.maxvers:
            # Zero first-order covariance does not imply independence (an
            # XOR pair is the classic counterexample), so fill the unused
            # slots with the topologically closest remaining candidates:
            # conditioning on a truly independent node is harmless, while
            # joint (higher-order) correlation gets captured.
            chosen = set(selected)
            for x in reversed(candidates):
                if x not in chosen and probs[x] * (1.0 - probs[x]) > 0.0:
                    selected.append(x)
                    chosen.add(x)
                if len(selected) >= self.params.maxvers:
                    break
        return selected[: self.params.maxvers]

    def _conditioned_probability(
        self,
        gate: Gate,
        selected: Sequence[str],
        probs: Dict[str, float],
    ) -> float:
        """Formula (2): sum over assignments of the conditioning set.

        The assignment probabilities ``P(A_v)`` are expanded with the Bayes
        chain over the topologically ordered conditioning nodes; shared
        prefixes are evaluated once by the depth-first recursion.
        """
        order = sorted(selected, key=self.topology.topo_index.__getitem__)
        conditional = self._conditional
        total = 0.0
        conditions: Dict[str, int] = {}

        def descend(index: int, weight: float) -> float:
            if weight <= 0.0:
                return 0.0
            if index == len(order):
                cond_inputs = [
                    conditional.probability(src, conditions, probs)
                    for src in gate.inputs
                ]
                return weight * gate_probability(
                    gate.gtype, cond_inputs, gate.table
                )
            node = order[index]
            p_one = conditional.probability(node, conditions, probs)
            p_one = min(max(p_one, 0.0), 1.0)
            acc = 0.0
            for value, branch_weight in ((1, p_one), (0, 1.0 - p_one)):
                if branch_weight <= 0.0:
                    continue
                conditions[node] = value
                acc += descend(index + 1, weight * branch_weight)
                del conditions[node]
            return acc

        total = descend(0, 1.0)
        # Guard against accumulated float error.
        return min(max(total, 0.0), 1.0)
