"""Exact signal probabilities by weighted exhaustive enumeration.

Exact computation is NP-hard in general [Wu84], but for circuits with a
couple of dozen inputs full enumeration is perfectly feasible and serves as
the ground truth for the estimator's accuracy tests and the MAXVERS
ablation bench.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.circuit.netlist import Circuit
from repro.errors import EstimationError
from repro.logicsim.patterns import PatternSet, resolve_input_probs
from repro.logicsim.simulator import simulate

__all__ = ["exact_signal_probabilities", "pattern_weights"]


def pattern_weights(
    n_inputs: int, probs_in_order: List[float]
) -> List[float]:
    """Weight of every exhaustive pattern (input *i* toggles with period 2^i).

    ``weight[j] = prod_i p_i^{bit_i(j)} (1-p_i)^{1-bit_i(j)}`` — built
    incrementally by doubling, so the cost is ``O(2^n)`` not ``O(n 2^n)``.
    """
    weights = [1.0]
    for i in range(n_inputs):
        p = probs_in_order[i]
        q = 1.0 - p
        weights = [w * q for w in weights] + [w * p for w in weights]
    return weights


def exact_signal_probabilities(
    circuit: Circuit,
    input_probs: "float | Mapping[str, float] | None" = None,
    nodes: "Iterable[str] | None" = None,
    max_inputs: int = 18,
) -> Dict[str, float]:
    """Exact node probabilities over the full ``2^n`` input space."""
    n = len(circuit.inputs)
    if n > max_inputs:
        raise EstimationError(
            f"{circuit.name!r} has {n} inputs; exact enumeration capped at "
            f"{max_inputs} (raise max_inputs explicitly if you mean it)"
        )
    resolved = resolve_input_probs(circuit.inputs, input_probs)
    patterns = PatternSet.exhaustive(circuit.inputs)
    values = simulate(circuit, patterns)
    selected = list(nodes) if nodes is not None else list(circuit.nodes)
    uniform = all(abs(p - 0.5) < 1e-15 for p in resolved.values())
    total = patterns.n_patterns
    if uniform:
        return {
            node: values[node].bit_count() / total for node in selected
        }
    weights = pattern_weights(n, [resolved[i] for i in circuit.inputs])
    result: Dict[str, float] = {}
    for node in selected:
        word = values[node]
        acc = 0.0
        while word:
            low = word & -word
            acc += weights[low.bit_length() - 1]
            word ^= low
        result[node] = acc
    return result
