"""One-level conditional probability evaluation.

The PROTEST estimator (paper §2, formula (2)) needs two kinds of
conditional quantities:

* ``P(a | A_v)`` — the probability of a gate input given an assignment of
  values to the selected joining points ``W``;
* the Bayes-chain factors ``P(x_j = v_j | x_1..x_{j-1})`` that expand
  ``P(A_v)``.

Both are produced here by *one-level* conditioning: the cone between the
conditioning nodes and the target is re-evaluated with the tree rule,
treating every node outside the cone as carrying its unconditional
estimate.  This bounded recursion is what keeps the tool's effort "nearly
linear" (paper §1); deeper nesting would re-introduce the exponential
blow-up the estimator is designed to avoid.

The re-evaluation runs on the compiled kernel (:mod:`repro.kernel`) when
one is supplied: cone schedules are resolved once per ``(target,
conditioning set)`` into slices of the compiled float plan and replayed
over version-stamped scratch arrays — the same gates, in the same order,
with the same arithmetic as the legacy dict-walking path (``compiled=
None``), which is kept as the parity reference and perf baseline.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Mapping

from repro.circuit.topology import Topology
from repro.circuit.types import gate_probability
from repro.kernel import CompiledCircuit
from repro.telemetry.profiling import active_profiler

__all__ = ["ConditionalEvaluator"]


class ConditionalEvaluator:
    """Evaluates conditional node probabilities over a base estimate."""

    def __init__(
        self,
        topology: Topology,
        depth: "int | None",
        compiled: "CompiledCircuit | None" = None,
    ) -> None:
        self.topology = topology
        self.circuit = topology.circuit
        #: Path-length bound for the re-evaluated region (MAXLIST).
        self.depth = depth
        self.compiled = compiled
        # The active phase profiler, cached once per estimation pass
        # (see begin_pass): the influence/cone hot paths then pay one
        # attribute load + None check when not profiling.
        self._prof = None
        # Influence values memoized within one estimation pass (see
        # begin_pass).  The selection heuristic re-scores the same
        # (input, joining-point) pairs for every gate that shares them,
        # which made influence() the dominant cost at 10k+ gates.
        self._influence_cache: Dict[tuple, float] = {}
        if compiled is not None:
            n = compiled.n_nodes
            self._scratch = [0.0] * n
            self._stamp = [0] * n
            self._version = 0
            # Cone schedules keyed by (target, frozenset of relevant
            # conditioning nodes) — the estimator replays the same few
            # shapes for every assignment of a conditioning set.
            self._cone_cache: Dict[tuple, tuple] = {}

    def probability(
        self,
        target: str,
        conditions: Mapping[str, int],
        base: Mapping[str, float],
    ) -> float:
        """``P(target = 1 | conditions)`` under the one-level model.

        ``base`` carries the unconditional estimates of every node computed
        so far (the estimator guarantees all of the target's transitive
        fan-in is present).
        """
        if target in conditions:
            return float(conditions[target])
        if self.compiled is None:
            return self._probability_legacy(target, conditions, base)
        allowed = self.topology.bounded_tfi(target, self.depth)
        relevant = [node for node in conditions if node in allowed]
        if not relevant:
            return base[target]
        compiled = self.compiled
        key = (target, frozenset(relevant))
        entries = self._cone_cache.get(key)
        if entries is None:
            t0 = perf_counter()
            cone = self.topology.forward_cone_within(relevant, allowed)
            pinned = set(relevant)
            index = compiled.index
            float_entry = compiled.float_entry
            # Conditioned nodes stay pinned: they can only reappear in the
            # cone via the relevant set (cone ⊆ allowed and conditions ∩
            # allowed = relevant), so excluding them here is exact.
            entries = tuple(
                float_entry[index[name]] for name in cone if name not in pinned
            )
            self._cone_cache[key] = entries
            profiler = self._prof
            if profiler is not None:
                profiler.add("estimator.cone_schedule", perf_counter() - t0)
        scratch = self._scratch
        stamp = self._stamp
        self._version = version = self._version + 1
        index = compiled.index
        names = compiled.names
        for node, value in conditions.items():
            i = index[node]
            scratch[i] = float(value)
            stamp[i] = version
        for i, fn, args, table in entries:
            scratch[i] = fn(scratch, stamp, version, base, names, args, table)
            stamp[i] = version
        t = index[target]
        return scratch[t] if stamp[t] == version else base[target]

    def _probability_legacy(
        self,
        target: str,
        conditions: Mapping[str, int],
        base: Mapping[str, float],
    ) -> float:
        """The dict-walking cone re-evaluation (pre-kernel behaviour)."""
        allowed = self.topology.bounded_tfi(target, self.depth)
        relevant = [node for node in conditions if node in allowed]
        if not relevant:
            return base[target]
        cone = self.topology.forward_cone_within(relevant, allowed)
        values: Dict[str, float] = {
            node: float(value) for node, value in conditions.items()
        }
        gates = self.circuit.gates
        for name in cone:
            if name in conditions:
                continue  # conditioned nodes stay pinned
            gate = gates[name]
            operand_probs = [
                values.get(src, base[src]) for src in gate.inputs
            ]
            values[name] = gate_probability(
                gate.gtype, operand_probs, gate.table
            )
        return values.get(target, base[target])

    def begin_pass(self) -> None:
        """Invalidate per-pass memos before a new estimation pass.

        :meth:`influence` values depend on the base estimates of the cone
        between ``node`` and ``target``; within one estimator pass those
        are final before any consumer asks (the cone lies in the target's
        transitive fan-in, which topological order has already fixed), so
        memoizing by ``(target, node)`` is exact.  A new ``run``/``update``
        changes the base estimates, so the estimator calls this first.
        """
        self._influence_cache.clear()
        self._prof = active_profiler()

    def influence(
        self,
        target: str,
        node: str,
        base: Mapping[str, float],
    ) -> float:
        """``P(target | node=1) - P(target | node=0)``.

        The covariance of two signals factorizes over this difference:
        ``Cov(target, node) = p_x (1-p_x) * influence`` under the one-level
        model, which is exactly the quantity the paper's selection
        heuristic needs (§2).
        """
        key = (target, node)
        cached = self._influence_cache.get(key)
        if cached is not None:
            return cached
        profiler = self._prof
        started = profiler.push("estimator.influence") if profiler else 0.0
        try:
            value = self._influence_uncached(target, node, base)
        finally:
            if profiler is not None:
                profiler.pop(started)
        self._influence_cache[key] = value
        return value

    def _influence_uncached(
        self,
        target: str,
        node: str,
        base: Mapping[str, float],
    ) -> float:
        allowed = self.topology.bounded_tfi(target, self.depth)
        if node not in allowed:
            # Outside the re-evaluation region both conditionals collapse
            # to the base estimate; skip the two cone replays entirely.
            value = 0.0
        elif self.compiled is None:
            high = self.probability(target, {node: 1}, base)
            low = self.probability(target, {node: 0}, base)
            value = high - low
        else:
            # Kernel fast path: resolve the singleton cone schedule once
            # and replay it for node=1 and node=0 back to back, without
            # the per-call conditions/relevant bookkeeping of
            # :meth:`probability` (this pair of replays dominates the
            # selection heuristic on 10k+-gate netlists).
            compiled = self.compiled
            index = compiled.index
            ckey = (target, frozenset((node,)))
            entries = self._cone_cache.get(ckey)
            if entries is None:
                t0 = perf_counter()
                cone = self.topology.forward_cone_within([node], allowed)
                float_entry = compiled.float_entry
                entries = tuple(
                    float_entry[index[name]] for name in cone if name != node
                )
                self._cone_cache[ckey] = entries
                profiler = self._prof
                if profiler is not None:
                    profiler.add(
                        "estimator.cone_schedule", perf_counter() - t0
                    )
            names = compiled.names
            scratch = self._scratch
            stamp = self._stamp
            t = index[target]
            ni = index[node]
            high = low = base[target]
            for pin, out in ((1.0, "high"), (0.0, "low")):
                self._version = version = self._version + 1
                scratch[ni] = pin
                stamp[ni] = version
                for i, fn, args, table in entries:
                    scratch[i] = fn(
                        scratch, stamp, version, base, names, args, table
                    )
                    stamp[i] = version
                if stamp[t] == version:
                    if out == "high":
                        high = scratch[t]
                    else:
                        low = scratch[t]
            value = high - low
        return value
