"""The cutting algorithm of Savir, Ditlow and Bardell [BDS84].

The contemporaneous alternative PROTEST is compared against in §1: instead
of a point estimate, compute a *guaranteed interval* for every signal
probability by cutting reconvergent fan-out and propagating intervals
through the remaining tree.

We cut **every** branch of every multi-fan-out stem to the vacuous
``[0, 1]``.  This is more conservative than the textbook "keep one branch"
variant, and deliberately so: keeping a branch is unsound in the presence
of XOR-shaped reconvergence (property-based testing found the
counterexample ``XNOR(i1, i0, i1, i0)``, whose exact probability 1 escapes
the kept-branch interval).  With all occurrences cut, soundness has a
short proof: conditioned on an assignment of *all* multi-fan-out stems,
any two distinct gate operands share no free variables (a shared ancestor
would itself be a stem), hence are conditionally independent; by induction
every operand's interval contains its conditional probability, the
endpoint-corner evaluation of the multilinear gate function then contains
the gate's conditional probability, and the unconditional probability is
a convex combination of conditional ones.

The bench ``bench_cutting`` contrasts interval width with PROTEST's point
estimate error, reproducing the paper's motivation for computing "a real
number as estimation" instead of bounds.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.circuit.netlist import Circuit
from repro.circuit.topology import Topology
from repro.circuit.types import GateType, gate_probability
from repro.errors import EstimationError
from repro.logicsim.patterns import resolve_input_probs

__all__ = ["probability_bounds", "interval_gate"]

Interval = Tuple[float, float]

_MONOTONE_UP = {GateType.AND, GateType.OR}
_MONOTONE_DOWN = {GateType.NAND, GateType.NOR}


def interval_gate(
    gtype: GateType, operands: List[Interval], table: int = 0
) -> Interval:
    """Tight output interval of a gate whose inputs are independent intervals.

    Gate probability functions are multilinear, so extrema are attained at
    interval endpoints; monotone gates need only two evaluations, the rest
    enumerate the ``2^arity`` endpoint corners (arity capped at 12).
    """
    los = [lo for lo, _hi in operands]
    his = [hi for _lo, hi in operands]
    if gtype in _MONOTONE_UP:
        return (
            gate_probability(gtype, los),
            gate_probability(gtype, his),
        )
    if gtype in _MONOTONE_DOWN:
        return (
            gate_probability(gtype, his),
            gate_probability(gtype, los),
        )
    if gtype is GateType.NOT:
        return (1.0 - his[0], 1.0 - los[0])
    if gtype is GateType.BUF:
        return operands[0]
    if gtype is GateType.CONST0:
        return (0.0, 0.0)
    if gtype is GateType.CONST1:
        return (1.0, 1.0)
    n = len(operands)
    if n > 12:
        raise EstimationError(
            f"interval propagation through a {n}-input {gtype} is too wide"
        )
    lo_best, hi_best = 1.0, 0.0
    for corner in range(1 << n):
        point = [
            his[i] if (corner >> i) & 1 else los[i] for i in range(n)
        ]
        value = gate_probability(gtype, point, table)
        lo_best = min(lo_best, value)
        hi_best = max(hi_best, value)
    return (lo_best, hi_best)


def probability_bounds(
    circuit: Circuit,
    input_probs: "float | Mapping[str, float] | None" = None,
) -> Dict[str, Interval]:
    """Sound ``[low, high]`` bounds for every node's signal probability."""
    resolved = resolve_input_probs(circuit.inputs, input_probs)
    topology = Topology(circuit)
    intervals: Dict[str, Interval] = {
        name: (p, p) for name, p in resolved.items()
    }
    # A stem is cut when more than one gate pin consumes it (a primary
    # output does not duplicate the signal into further logic).
    cut = {
        node
        for node in circuit.nodes
        if len(topology.branches[node]) > 1
    }
    for node in circuit.nodes:
        if node in intervals:
            continue
        gate = circuit.gates[node]
        operand_intervals: List[Interval] = [
            (0.0, 1.0) if src in cut else intervals[src]
            for src in gate.inputs
        ]
        intervals[node] = interval_gate(
            gate.gtype, operand_intervals, gate.table
        )
    # The stems themselves still report their (sound) computed interval;
    # only their *uses* are freed.
    return intervals
