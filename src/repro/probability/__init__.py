"""Signal-probability engines: the PROTEST estimator and exact references."""

from repro.probability.bdd import (
    BDD,
    bdd_signal_probabilities,
    circuit_bdds,
)
from repro.probability.conditional import ConditionalEvaluator
from repro.probability.cutting import interval_gate, probability_bounds
from repro.probability.estimator import (
    EstimatorParams,
    SignalProbabilities,
    SignalProbabilityEstimator,
)
from repro.probability.exact import exact_signal_probabilities, pattern_weights

__all__ = [
    "BDD",
    "ConditionalEvaluator",
    "EstimatorParams",
    "SignalProbabilities",
    "SignalProbabilityEstimator",
    "bdd_signal_probabilities",
    "circuit_bdds",
    "exact_signal_probabilities",
    "interval_gate",
    "pattern_weights",
    "probability_bounds",
]
