"""SN7485 4-bit magnitude comparator (datasheet gate structure).

The building block of the paper's COMP circuit: "COMP is the connection of
16 slightly modified SN7485 comparators to a cascaded 24 bit word
comparator" (paper §5, Fig. 7).

The device compares two 4-bit words and three cascade inputs; its truth
table (TI datasheet) is reproduced by :func:`sn7485_reference` and verified
exhaustively in the tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Circuit

__all__ = ["comparator_cell", "sn7485", "sn7485_reference"]


def comparator_cell(
    b: CircuitBuilder,
    a_bus: Sequence[str],
    b_bus: Sequence[str],
    ialb: str,
    iaeb: str,
    iagb: str,
    prefix: str,
) -> Tuple[str, str, str]:
    """Emit one SN7485 into ``b``; returns ``(OALB, OAEB, OAGB)``.

    ``a_bus`` / ``b_bus`` are the 4-bit operands (LSB first) and the three
    ``i*`` nodes are the cascade inputs (A<B, A=B, A>B).
    """
    if len(a_bus) != 4 or len(b_bus) != 4:
        raise ValueError("SN7485 compares 4-bit words")
    eq: List[str] = []
    gt: List[str] = []
    lt: List[str] = []
    for i in range(4):
        na = b.not_(f"{prefix}_na{i}", a_bus[i])
        nb = b.not_(f"{prefix}_nb{i}", b_bus[i])
        eq.append(b.xnor(f"{prefix}_e{i}", a_bus[i], b_bus[i]))
        gt.append(b.and_(f"{prefix}_g{i}", a_bus[i], nb))
        lt.append(b.and_(f"{prefix}_l{i}", na, b_bus[i]))
    # Word-level (bit 3 most significant): strictly greater / less / equal.
    gt_terms = [
        gt[3],
        b.and_(f"{prefix}_gt2", eq[3], gt[2]),
        b.and_(f"{prefix}_gt1", eq[3], eq[2], gt[1]),
        b.and_(f"{prefix}_gt0", eq[3], eq[2], eq[1], gt[0]),
    ]
    lt_terms = [
        lt[3],
        b.and_(f"{prefix}_lt2", eq[3], lt[2]),
        b.and_(f"{prefix}_lt1", eq[3], eq[2], lt[1]),
        b.and_(f"{prefix}_lt0", eq[3], eq[2], eq[1], lt[0]),
    ]
    word_gt = b.or_(f"{prefix}_wgt", *gt_terms)
    word_lt = b.or_(f"{prefix}_wlt", *lt_terms)
    word_eq = b.and_(f"{prefix}_weq", *eq)
    # Cascade combination per the datasheet truth table: on word equality
    # the outputs follow the cascade inputs, with I(A=B) dominating.
    nialb = b.not_(f"{prefix}_nialb", ialb)
    niaeb = b.not_(f"{prefix}_niaeb", iaeb)
    niagb = b.not_(f"{prefix}_niagb", iagb)
    oagb = b.or_(
        f"{prefix}_OAGB",
        word_gt,
        b.and_(f"{prefix}_cg", word_eq, nialb, niaeb),
    )
    oalb = b.or_(
        f"{prefix}_OALB",
        word_lt,
        b.and_(f"{prefix}_cl", word_eq, niagb, niaeb),
    )
    oaeb = b.and_(f"{prefix}_OAEB", word_eq, iaeb)
    return oalb, oaeb, oagb


def sn7485(name: str = "SN7485") -> Circuit:
    """Standalone SN7485 circuit (A0-3, B0-3, IALB, IAEB, IAGB)."""
    b = CircuitBuilder(name)
    a_bus = b.bus("A", 4)
    b_bus = b.bus("B", 4)
    ialb = b.input("IALB")
    iaeb = b.input("IAEB")
    iagb = b.input("IAGB")
    oalb, oaeb, oagb = comparator_cell(b, a_bus, b_bus, ialb, iaeb, iagb, "u0")
    b.output(oalb, alias="OALB")
    b.output(oaeb, alias="OAEB")
    b.output(oagb, alias="OAGB")
    return b.build()


def sn7485_reference(
    a: int, bb: int, ialb: int, iaeb: int, iagb: int
) -> Dict[str, int]:
    """Datasheet truth table of the SN7485 (4-bit operands)."""
    if a > bb:
        return {"OALB": 0, "OAEB": 0, "OAGB": 1}
    if a < bb:
        return {"OALB": 1, "OAEB": 0, "OAGB": 0}
    if iaeb:
        return {"OALB": 0, "OAEB": 1, "OAGB": 0}
    if iagb and not ialb:
        return {"OALB": 0, "OAEB": 0, "OAGB": 1}
    if ialb and not iagb:
        return {"OALB": 1, "OAEB": 0, "OAGB": 0}
    if not ialb and not iagb:
        return {"OALB": 1, "OAEB": 0, "OAGB": 1}
    return {"OALB": 0, "OAEB": 0, "OAGB": 0}
